//! Left-recursion elimination: the §4.1 grammar rewriting, validated.
//!
//! The paper: "ANTLR is able to avoid most instances of this problem by
//! rewriting the grammar to eliminate common forms of left recursion.
//! We leave the task of verifying such grammar-rewriting steps for
//! future work." Here the rewrite is implemented
//! (`costar_grammar::transform`) and validated the way this repository
//! validates everything: language preservation is property-tested
//! against the Earley oracle (which handles left-recursive grammars
//! natively), and the rewritten grammar is fed to CoStar — turning
//! previously unusable grammars into ones the theorems cover.

use costar::{ParseOutcome, Parser};
use costar_baselines::earley_recognize;
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::sampler::{DerivationSampler, SplitMix64};
use costar_grammar::transform::eliminate_left_recursion;
use costar_grammar::{Grammar, GrammarBuilder, Symbol, Token};
use proptest::prelude::*;

/// Classic left-recursive arithmetic, end to end through the rewrite.
#[test]
fn left_recursive_expression_grammar_becomes_parseable() {
    let mut gb = GrammarBuilder::new();
    gb.rule("e", &["e", "Plus", "t"]);
    gb.rule("e", &["t"]);
    gb.rule("t", &["t", "Star", "f"]);
    gb.rule("t", &["f"]);
    gb.rule("f", &["LParen", "e", "RParen"]);
    gb.rule("f", &["Int"]);
    let g = gb.start("e").build().unwrap();

    // CoStar on the original: left recursion is detected, not looped on.
    let mut original = Parser::new(g.clone());
    assert!(!original.grammar_is_safe());
    let int = g.symbols().lookup_terminal("Int").unwrap();
    let word = vec![Token::new(int, "1")];
    assert!(matches!(
        original.parse(&word),
        ParseOutcome::Error(costar::ParseError::LeftRecursive(_))
    ));

    // After elimination: safe, and parses arithmetic.
    let rewritten = eliminate_left_recursion(&g).unwrap();
    let mut parser = Parser::new(rewritten.clone());
    assert!(parser.grammar_is_safe());
    let t = |n: &str| Token::new(rewritten.symbols().lookup_terminal(n).unwrap(), n);
    let word = vec![
        t("Int"),
        t("Plus"),
        t("Int"),
        t("Star"),
        t("LParen"),
        t("Int"),
        t("Plus"),
        t("Int"),
        t("RParen"),
    ];
    assert!(matches!(parser.parse(&word), ParseOutcome::Unique(_)));
    assert!(!parser.parse(&word[..2]).is_accept());
}

#[derive(Debug, Clone)]
enum SymSpec {
    T(usize),
    Nt(usize),
}

#[derive(Debug, Clone)]
struct GrammarSpec {
    num_terminals: usize,
    rules: Vec<Vec<Vec<SymSpec>>>,
}

impl GrammarSpec {
    fn build(&self) -> Grammar {
        let mut gb = GrammarBuilder::new();
        let nts: Vec<_> = (0..self.rules.len())
            .map(|i| gb.nonterminal(&format!("n{i}")))
            .collect();
        let ts: Vec<_> = (0..self.num_terminals)
            .map(|i| gb.terminal(&format!("T{i}")))
            .collect();
        for (i, alts) in self.rules.iter().enumerate() {
            for alt in alts {
                let rhs: Vec<Symbol> = alt
                    .iter()
                    .map(|s| match s {
                        SymSpec::T(k) => Symbol::T(ts[k % ts.len()]),
                        SymSpec::Nt(k) => Symbol::Nt(nts[k % nts.len()]),
                    })
                    .collect();
                gb.rule_syms(nts[i], rhs);
            }
        }
        gb.start_sym(nts[0]);
        gb.build().expect("well-formed")
    }
}

fn sym_spec() -> impl Strategy<Value = SymSpec> {
    prop_oneof![
        2 => (0usize..5).prop_map(SymSpec::T),
        3 => (0usize..5).prop_map(SymSpec::Nt),
    ]
}

/// Left-recursion-biased random grammars (nonterminal-heavy right-hand
/// sides make cycles likely).
fn grammar_spec() -> impl Strategy<Value = GrammarSpec> {
    (
        1usize..4,
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(sym_spec(), 0..3), 1..4),
            1..4,
        ),
    )
        .prop_map(|(num_terminals, rules)| GrammarSpec {
            num_terminals,
            rules,
        })
}

fn random_word(g: &Grammar, picks: &[usize]) -> Vec<Token> {
    let terms: Vec<_> = g.symbols().terminals().collect();
    picks
        .iter()
        .map(|&k| {
            let t = terms[k % terms.len()];
            Token::new(t, g.symbols().terminal_name(t))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rewrite always yields a non-left-recursive grammar (or a
    /// well-defined error), and preserves the language: membership
    /// verdicts agree with Earley-on-the-original for random words, and
    /// words sampled from the rewritten grammar are recognized by the
    /// original.
    #[test]
    fn elimination_preserves_language(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..5, 0..8),
        seed in any::<u64>(),
    ) {
        let g = spec.build();
        let Ok(rewritten) = eliminate_left_recursion(&g) else {
            // Degenerate grammars (unproductive start etc.) are allowed
            // to be rejected by the transform.
            return Ok(());
        };
        let analysis = GrammarAnalysis::compute(&rewritten);
        prop_assert!(analysis.left_recursion.is_grammar_safe());

        // Direction 1: random words — CoStar on the rewritten grammar vs
        // Earley on the original.
        let word = random_word(&g, &picks);
        let mut parser = Parser::new(rewritten.clone());
        let rewritten_accepts = parser.parse(&word).is_accept();
        let original_accepts = earley_recognize(&g, &word);
        prop_assert_eq!(
            rewritten_accepts,
            original_accepts,
            "membership change on random word (len {})",
            word.len()
        );

        // Direction 2: sampled words from the rewritten grammar are in
        // the original language.
        let sampler = DerivationSampler::new(&rewritten);
        let mut rng = SplitMix64::new(seed);
        if let Some((w, _)) = sampler.sample_word(&mut rng, 7) {
            // Rewritten-grammar tokens live in a different symbol table;
            // map by terminal name.
            let mapped: Vec<Token> = w
                .iter()
                .map(|t| {
                    let name = rewritten.symbols().terminal_name(t.terminal());
                    Token::new(
                        g.symbols().lookup_terminal(name).expect("terminals preserved"),
                        name,
                    )
                })
                .collect();
            prop_assert!(
                earley_recognize(&g, &mapped),
                "rewritten grammar derives a word the original does not"
            );
        }
    }
}
