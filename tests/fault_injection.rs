//! Deterministic fault injection against the resource-governed parser.
//!
//! The `faults` feature (enabled for this package's test targets through
//! the dev-dependency in the root `Cargo.toml`) compiles hooks into the
//! SLL cache that let a [`FaultPlan`] force evictions, poison entries,
//! and schedule panics at exact machine steps. These tests drive those
//! hooks against the robustness invariants this PR claims:
//!
//! 1. cache eviction — even a storm evicting on every intern — only ever
//!    costs re-prediction, never correctness (outcomes keep agreeing with
//!    the Earley oracle);
//! 2. poisoned cache entries are dropped at lookup and never served;
//! 3. a panic below [`Parser::parse`] is caught and surfaced as a typed
//!    [`ParseError::InvalidState`], and the parser stays usable;
//! 4. fuel exhaustion at any chosen step yields a clean
//!    [`ParseOutcome::Aborted`] with all instrumentation invariants
//!    intact up to the abort point;
//! 5. with the SLL cache capped at 64 entries, every non-aborted outcome
//!    still agrees with the oracle — including on truncated and
//!    oversized mutations of valid inputs.

use costar::instrument::{run_instrumented, run_instrumented_with};
use costar::{AbortReason, Budget, FaultPlan, ParseError, ParseOutcome, Parser};
use costar_baselines::earley_recognize;
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::sampler::{DerivationSampler, SplitMix64};
use costar_grammar::{tokens, Grammar, GrammarBuilder, Token};

/// Paper Fig. 2: two-alternative decisions with unbounded lookahead.
fn fig2() -> Grammar {
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["A", "c"]);
    gb.rule("S", &["A", "d"]);
    gb.rule("A", &["a", "A"]);
    gb.rule("A", &["b"]);
    gb.start("S").build().unwrap()
}

/// The SLL-conflict grammar: deciding `X` under lost context forces an
/// SLL→LL failover, the most cache-hungry code path.
fn conflict() -> Grammar {
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["p", "C1"]);
    gb.rule("S", &["q", "C2"]);
    gb.rule("C1", &["X", "b"]);
    gb.rule("C2", &["X", "a", "b"]);
    gb.rule("X", &["a", "a"]);
    gb.rule("X", &["a"]);
    gb.start("S").build().unwrap()
}

fn word(g: &Grammar, names: &[&str]) -> Vec<Token> {
    let mut tab = g.symbols().clone();
    let pairs: Vec<(&str, &str)> = names.iter().map(|n| (*n, *n)).collect();
    tokens(&mut tab, &pairs)
}

/// A mixed corpus for a grammar: sampled valid words plus truncations and
/// junk-extended (oversized) mutations of each.
fn corpus(g: &Grammar) -> Vec<Vec<Token>> {
    let sampler = DerivationSampler::new(g);
    let mut rng = SplitMix64::new(0xC057A2);
    let mut words = Vec::new();
    for budget in 2..10 {
        if let Some((w, _)) = sampler.sample_word(&mut rng, budget) {
            // Truncated inputs: every proper prefix.
            for cut in 0..w.len() {
                words.push(w[..cut].to_vec());
            }
            // Oversized inputs: the word with trailing junk.
            let terms: Vec<_> = g.symbols().terminals().collect();
            let mut extended = w.clone();
            for i in 0..4 {
                let t = terms[i % terms.len()];
                extended.push(Token::new(t, g.symbols().terminal_name(t)));
            }
            words.push(extended);
            words.push(w);
        }
    }
    words
}

/// Asserts that `outcome` agrees with the Earley oracle for `w`, under a
/// description of the fault scenario for diagnostics.
fn assert_oracle_agreement(g: &Grammar, w: &[Token], outcome: &ParseOutcome, scenario: &str) {
    let in_language = earley_recognize(g, w);
    match outcome {
        ParseOutcome::Unique(_) | ParseOutcome::Ambig(_) => assert!(
            in_language,
            "{scenario}: parser accepted a word the oracle rejects (len {})",
            w.len()
        ),
        ParseOutcome::Reject(_) => assert!(
            !in_language,
            "{scenario}: parser rejected a word the oracle accepts (len {})",
            w.len()
        ),
        ParseOutcome::Error(e) => {
            panic!("{scenario}: unexpected parser error on injected faults: {e}")
        }
        ParseOutcome::Aborted(_) => {
            // Aborts carry no language verdict; nothing to check.
        }
    }
}

#[test]
fn eviction_storm_never_changes_outcomes() {
    for g in [fig2(), conflict()] {
        let mut parser = Parser::new(g.clone());
        parser.install_fault_plan(FaultPlan::none().evict_every(1));
        let mut stormed = 0u64;
        for w in corpus(&g) {
            let outcome = parser.parse(&w);
            assert_oracle_agreement(&g, &w, &outcome, "eviction storm");
            stormed += parser.cache_stats().evictions;
        }
        assert!(stormed > 0, "the storm plan must actually evict");
    }
}

#[test]
fn poisoned_entries_are_dropped_never_served() {
    for period in 1..=3u64 {
        for g in [fig2(), conflict()] {
            // Cache reuse keeps poisoned states resident across inputs, so
            // later parses actually look them up (a per-input cache would
            // discard them before any lookup could serve them).
            let mut parser = Parser::with_cache_reuse(g.clone());
            parser.install_fault_plan(FaultPlan::none().poison_every(period));
            for w in corpus(&g) {
                let outcome = parser.parse(&w);
                assert_oracle_agreement(&g, &w, &outcome, "poisoned cache");
            }
            if period == 1 {
                assert!(
                    parser.cache_stats().poison_drops > 0,
                    "poisoning every intern must drop entries"
                );
            }
        }
    }
}

#[test]
fn combined_eviction_and_poison_storm_under_tiny_cache() {
    let g = conflict();
    let mut parser = Parser::with_budget(g.clone(), Budget::unlimited().with_max_cache_entries(2));
    parser.install_fault_plan(FaultPlan::none().evict_every(2).poison_every(3));
    for w in corpus(&g) {
        let outcome = parser.parse(&w);
        assert_oracle_agreement(&g, &w, &outcome, "combined storm, 2-entry cache");
    }
}

#[test]
fn injected_panic_is_caught_as_typed_error() {
    let g = fig2();
    let w = word(&g, &["a", "a", "b", "d"]);
    for step in 0..8u64 {
        let mut parser = Parser::new(g.clone());
        parser.install_fault_plan(FaultPlan::none().panic_at_step(step));
        let ParseOutcome::Error(ParseError::InvalidState { reason }) = parser.parse(&w) else {
            panic!("step {step}: injected panic must surface as InvalidState");
        };
        assert!(
            reason.contains("injected fault"),
            "step {step}: panic message must be preserved, got {reason:?}"
        );
        // The boundary leaves the parser usable: disarm the plan and the
        // same input parses normally.
        parser.install_fault_plan(FaultPlan::none());
        assert!(parser.parse(&w).is_accept());
    }
}

#[test]
fn injected_panic_below_recovering_parse_is_caught() {
    // The recovering entry point shares the panic-safe boundary: a panic
    // scheduled at any machine step — including during a resynchronized
    // continuation on corrupt input — surfaces as a typed error with no
    // tree and no diagnostics, and the parser stays usable.
    let g = fig2();
    let valid = word(&g, &["a", "a", "b", "d"]);
    let corrupt = word(&g, &["a", "a", "d", "d"]);
    for w in [&valid, &corrupt] {
        for step in 0..8u64 {
            let mut parser = Parser::new(g.clone());
            parser.install_fault_plan(FaultPlan::none().panic_at_step(step));
            let recovered = parser.parse_recovering(w);
            let ParseOutcome::Error(ParseError::InvalidState { reason }) = &recovered.outcome
            else {
                panic!("step {step}: injected panic must surface as InvalidState");
            };
            assert!(
                reason.contains("injected fault"),
                "step {step}: panic message must be preserved, got {reason:?}"
            );
            assert!(recovered.tree().is_none(), "no partial tree after a panic");
            assert!(
                recovered.diagnostics.is_empty(),
                "no half-collected diagnostics after a panic"
            );
            parser.install_fault_plan(FaultPlan::none());
            assert!(parser.parse_recovering(&valid).is_clean());
        }
    }
}

#[test]
fn fuel_exhaustion_sweep_aborts_cleanly_at_every_step() {
    let g = fig2();
    let accepted = word(&g, &["a", "a", "b", "d"]);
    let rejected = word(&g, &["a", "a", "b", "b"]);
    for w in [accepted, rejected] {
        let (unlimited_outcome, report) = run_instrumented(&g, &GrammarAnalysis::compute(&g), &w)
            .expect("instrumentation invariants hold");
        // Sweep the fuel from 1 to well past what the parse needs. Every
        // run must keep the instrumented invariants (the Ok) and either
        // abort or reproduce the unlimited outcome — never error.
        let full = Budget::derived(&g, w.len())
            .max_steps()
            .expect("derived budgets always bound steps");
        for fuel in 1..=full.min(report.machine_steps * 4 + 8) {
            let budget = Budget::unlimited().with_max_steps(fuel);
            let (outcome, _) =
                run_instrumented_with(&g, &GrammarAnalysis::compute(&g), &w, &budget)
                    .expect("invariants must hold on every pre-abort step");
            match &outcome {
                ParseOutcome::Aborted(AbortReason::StepLimit { limit }) => {
                    assert_eq!(*limit, fuel);
                }
                ParseOutcome::Aborted(other) => {
                    panic!("fuel {fuel}: wrong abort reason {other}")
                }
                ParseOutcome::Error(e) => panic!("fuel {fuel}: unexpected error {e}"),
                resolved => assert_eq!(
                    resolved, &unlimited_outcome,
                    "fuel {fuel}: resolved outcome must match the unlimited run"
                ),
            }
        }
        // The derived budget is sufficient by construction.
        let budget = Budget::derived(&g, w.len());
        let (outcome, _) = run_instrumented_with(&g, &GrammarAnalysis::compute(&g), &w, &budget)
            .expect("invariants hold");
        assert_eq!(outcome, unlimited_outcome);
    }
}

#[test]
fn capped_cache_64_keeps_oracle_agreement() {
    // The acceptance-criterion configuration: SLL cache capped at 64
    // entries, fault hooks stirring the cache, oracle agreement required
    // on every non-aborted run.
    let budget = Budget::unlimited().with_max_cache_entries(64);
    for g in [fig2(), conflict()] {
        let an = GrammarAnalysis::compute(&g);
        for w in corpus(&g) {
            let (outcome, _) = run_instrumented_with(&g, &an, &w, &budget)
                .expect("instrumented invariants hold under the 64-entry cap");
            assert_oracle_agreement(&g, &w, &outcome, "64-entry cache cap");
        }
        // The same configuration through the public panic-safe API, with
        // faults active on top.
        let mut parser = Parser::with_budget(g.clone(), budget);
        parser.install_fault_plan(FaultPlan::none().evict_every(5).poison_every(7));
        for w in corpus(&g) {
            let outcome = parser.parse(&w);
            assert_oracle_agreement(&g, &w, &outcome, "64-entry cap + fault plan");
            assert!(parser.cache_stats().states <= 64);
        }
    }
}
