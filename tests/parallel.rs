//! Threaded stress tests for batch parsing: the four benchmark languages
//! run concurrently, each through one shared `Arc<GrammarAnalysis>` (and
//! therefore one shared `DecisionTable`), and every per-input outcome must
//! be identical to a sequential run at any worker count.
//!
//! This is the integration-level determinism contract of
//! [`costar::BatchParser`]: workers share only immutable context; all
//! mutable state (SLL caches, budget meters, metrics) is per-parse, so
//! scheduling can never leak into results.

use std::sync::Arc;
use std::thread;

use costar::BatchParser;
use costar_grammar::analysis::GrammarAnalysis;
use costar_langs::{all_languages, corpus};

const WORKER_COUNTS: [usize; 2] = [2, 8];

#[test]
fn four_languages_batch_concurrently_and_match_sequential() {
    let mut handles = Vec::new();
    for (lang, generate) in all_languages() {
        handles.push(thread::spawn(move || {
            let sources = corpus(generate, 0xC057A6 + lang.name.len() as u64, 10, 150);
            let words: Vec<Vec<costar_grammar::Token>> = sources
                .iter()
                .map(|s| {
                    lang.tokenize(s)
                        .unwrap_or_else(|e| panic!("{}: generated source must lex: {e}", lang.name))
                })
                .collect();
            let grammar = Arc::new(lang.grammar().clone());
            let analysis = Arc::new(GrammarAnalysis::compute(&grammar));

            let sequential = BatchParser::with_shared(Arc::clone(&grammar), Arc::clone(&analysis))
                .with_jobs(1)
                .parse_many(&words);
            for jobs in WORKER_COUNTS {
                let parallel =
                    BatchParser::with_shared(Arc::clone(&grammar), Arc::clone(&analysis))
                        .with_jobs(jobs)
                        .parse_many(&words);
                assert_eq!(parallel.items.len(), sequential.items.len());
                for (i, (p, s)) in parallel.items.iter().zip(&sequential.items).enumerate() {
                    assert_eq!(
                        p.outcome(),
                        s.outcome(),
                        "{}: input {i} diverged at jobs={jobs}",
                        lang.name
                    );
                    assert_eq!(
                        p.metrics.deterministic(),
                        s.metrics.deterministic(),
                        "{}: input {i} metrics diverged at jobs={jobs}",
                        lang.name
                    );
                }
                assert_eq!(parallel.exit_code(), sequential.exit_code());
                assert_eq!(
                    parallel.metrics.deterministic(),
                    sequential.metrics.deterministic(),
                    "{}: roll-up metrics diverged at jobs={jobs}",
                    lang.name
                );
            }
            lang.name
        }));
    }
    for h in handles {
        h.join().expect("language stress thread panicked");
    }
}

#[test]
fn recovering_batches_stay_deterministic_under_concurrency() {
    // Corrupt every word (drop a token mid-stream) so the recovery path —
    // diagnostics, skip counts, exit folding — is exercised across worker
    // counts, concurrently for all four languages.
    let mut handles = Vec::new();
    for (lang, generate) in all_languages() {
        handles.push(thread::spawn(move || {
            let sources = corpus(generate, 0xBAD5EED + lang.name.len() as u64, 8, 120);
            let words: Vec<Vec<costar_grammar::Token>> = sources
                .iter()
                .map(|s| {
                    let mut w = lang.tokenize(s).unwrap_or_else(|e| {
                        panic!("{}: generated source must lex: {e}", lang.name)
                    });
                    if w.len() > 2 {
                        w.remove(w.len() / 2);
                    }
                    w
                })
                .collect();
            let grammar = Arc::new(lang.grammar().clone());
            let analysis = Arc::new(GrammarAnalysis::compute(&grammar));

            let sequential = BatchParser::with_shared(Arc::clone(&grammar), Arc::clone(&analysis))
                .with_jobs(1)
                .parse_many_recovering(&words);
            for jobs in WORKER_COUNTS {
                let parallel =
                    BatchParser::with_shared(Arc::clone(&grammar), Arc::clone(&analysis))
                        .with_jobs(jobs)
                        .parse_many_recovering(&words);
                for (i, (p, s)) in parallel.items.iter().zip(&sequential.items).enumerate() {
                    assert_eq!(
                        p.outcome(),
                        s.outcome(),
                        "{}: recovered input {i} diverged at jobs={jobs}",
                        lang.name
                    );
                    assert_eq!(
                        p.exit_code(),
                        s.exit_code(),
                        "{}: input {i} exit diverged at jobs={jobs}",
                        lang.name
                    );
                    assert_eq!(
                        p.metrics.deterministic(),
                        s.metrics.deterministic(),
                        "{}: recovered input {i} metrics diverged at jobs={jobs}",
                        lang.name
                    );
                }
                assert_eq!(parallel.exit_code(), sequential.exit_code());
            }
            lang.name
        }));
    }
    for h in handles {
        h.join().expect("language stress thread panicked");
    }
}

#[test]
fn warm_cache_batches_match_cold_under_concurrency() {
    // Warm-cache mode snapshots the cache after a warm-up parse and hands
    // every worker a private clone; outcomes must still match the cold
    // sequential oracle at every worker count.
    let (lang, generate) = all_languages().remove(0);
    let sources = corpus(generate, 0x5EED, 12, 200);
    let words: Vec<Vec<costar_grammar::Token>> = sources
        .iter()
        .map(|s| lang.tokenize(s).expect("generated source must lex"))
        .collect();
    let grammar = Arc::new(lang.grammar().clone());
    let analysis = Arc::new(GrammarAnalysis::compute(&grammar));

    let cold = BatchParser::with_shared(Arc::clone(&grammar), Arc::clone(&analysis))
        .with_jobs(1)
        .parse_many(&words);
    for jobs in [1, 2, 8] {
        let warm = BatchParser::with_shared(Arc::clone(&grammar), Arc::clone(&analysis))
            .with_jobs(jobs)
            .with_warm_cache(true)
            .parse_many(&words);
        for (i, (w, c)) in warm.items.iter().zip(&cold.items).enumerate() {
            assert_eq!(
                w.outcome(),
                c.outcome(),
                "input {i} diverged at jobs={jobs}"
            );
        }
        assert_eq!(warm.exit_code(), cold.exit_code());
    }
}
