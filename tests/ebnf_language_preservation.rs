//! EBNF desugaring preserves the language — the fact the paper's
//! conversion tool assumes but does not prove (§6.1): "These
//! transformations produce a grammar that accepts the same language as
//! the original one, but we do not prove this fact."
//!
//! We test it from both directions:
//!
//! * words sampled *from* the desugared BNF grammar must be matched by
//!   the direct EBNF interpreter;
//! * random words judged by the EBNF interpreter must be judged the same
//!   way by CoStar running the desugared grammar.

use costar::Parser;
use costar_ebnf::{interp_recognize, parse_ebnf, to_bnf, InterpResult};
use costar_grammar::sampler::{DerivationSampler, SplitMix64};
use costar_grammar::Token;
use proptest::prelude::*;

/// A corpus of small EBNF grammars exercising every operator.
const GRAMMARS: &[&str] = &[
    "s : A* B ;",
    "s : (A | B C)+ ;",
    "s : A? B? C? ;",
    "s : x (',' x)* ; x : A | B ;",
    "s : (A (B | C)*)? D ;",
    "s : a a ; a : A+ | B ;",
    "s : ('(' s ')')? A ;",
    "list : item (';' item)* ';'? ; item : K V? ;",
];

/// Reconstructs the terminal-name word the interpreter consumes.
fn word_names(g: &costar_grammar::Grammar, word: &[Token]) -> Vec<String> {
    word.iter()
        .map(|t| g.symbols().terminal_name(t.terminal()).to_owned())
        .collect()
}

#[test]
fn sampled_bnf_words_match_the_ebnf() {
    for src in GRAMMARS {
        let ebnf = parse_ebnf(src).expect("grammar corpus parses");
        let (g, _) = to_bnf(&ebnf).expect("desugars");
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(0xEB4F);
        for round in 0..60 {
            let Some((word, _)) = sampler.sample_word(&mut rng, 9) else {
                break;
            };
            let names = word_names(&g, &word);
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let verdict = interp_recognize(&ebnf, &name_refs, 200_000);
            assert_eq!(
                verdict,
                InterpResult::Match,
                "{src}: round {round}: BNF derives {names:?} but EBNF rejects"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random words over the grammar's terminals: the desugared grammar
    /// (via CoStar) and the EBNF interpreter agree on membership.
    #[test]
    fn random_words_agree(
        grammar_idx in 0usize..GRAMMARS.len(),
        picks in proptest::collection::vec(0usize..8, 0..8),
    ) {
        let src = GRAMMARS[grammar_idx];
        let ebnf = parse_ebnf(src).expect("grammar corpus parses");
        let (g, _) = to_bnf(&ebnf).expect("desugars");
        let terms: Vec<_> = g.symbols().terminals().collect();
        let word: Vec<Token> = picks
            .iter()
            .map(|&k| {
                let t = terms[k % terms.len()];
                Token::new(t, g.symbols().terminal_name(t))
            })
            .collect();
        let names = word_names(&g, &word);
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ebnf_verdict = interp_recognize(&ebnf, &name_refs, 500_000);
        if ebnf_verdict == InterpResult::OutOfFuel {
            return Ok(());
        }
        let mut parser = Parser::new(g);
        let bnf_accepts = parser.parse(&word).is_accept();
        prop_assert_eq!(
            bnf_accepts,
            ebnf_verdict == InterpResult::Match,
            "{} on {:?}: BNF {} vs EBNF {:?}",
            src,
            names,
            bnf_accepts,
            ebnf_verdict
        );
    }
}
