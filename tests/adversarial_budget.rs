//! Adversarial grammars under tight budgets: abort-or-accept, never error.
//!
//! Each scenario here is built to stress one resource axis — deep right
//! nesting (stack depth and returns), wide alternations (prediction
//! fan-out), and SLL-conflict failover storms (cache churn plus double
//! simulation). Every run goes through the instrumented runner with a
//! deliberately tight budget, and the invariant under test is uniform:
//! the outcome is a *resolved* verdict (accept/reject, matching the
//! unlimited run) or a clean [`ParseOutcome::Aborted`] — never a
//! [`ParseOutcome::Error`], never a panic, and never a measure or
//! machine-invariant violation on the steps taken before an abort.

use costar::instrument::{run_instrumented, run_instrumented_with};
use costar::{AbortReason, Budget, ParseOutcome, Parser};
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{tokens, Grammar, GrammarBuilder, Token};
use std::time::Duration;

fn word_of(g: &Grammar, names: &[&str]) -> Vec<Token> {
    let mut tab = g.symbols().clone();
    let pairs: Vec<(&str, &str)> = names.iter().map(|n| (*n, *n)).collect();
    tokens(&mut tab, &pairs)
}

/// Runs one word under a sweep of step budgets and asserts the
/// abort-or-resolve invariant against the unlimited outcome.
fn assert_abort_or_resolve(g: &Grammar, w: &[Token], fuel_sweep: impl Iterator<Item = u64>) {
    let an = GrammarAnalysis::compute(g);
    let (unlimited, _) = run_instrumented(g, &an, w).expect("instrumented invariants hold");
    assert!(
        !matches!(unlimited, ParseOutcome::Error(_)),
        "adversarial grammars here are still non-left-recursive"
    );
    for fuel in fuel_sweep {
        let budget = Budget::unlimited().with_max_steps(fuel);
        let (outcome, report) = run_instrumented_with(g, &an, w, &budget)
            .expect("invariants hold on every pre-abort step");
        match &outcome {
            ParseOutcome::Aborted(AbortReason::StepLimit { .. }) => {
                assert!(
                    report.machine_steps <= fuel,
                    "fuel {fuel}: machine overran its budget ({} steps)",
                    report.machine_steps
                );
            }
            ParseOutcome::Aborted(other) => panic!("fuel {fuel}: unexpected abort {other}"),
            ParseOutcome::Error(e) => panic!("fuel {fuel}: budget produced an error: {e}"),
            resolved => assert_eq!(resolved, &unlimited, "fuel {fuel}: outcome changed"),
        }
    }
}

#[test]
fn deep_right_nesting_aborts_or_accepts() {
    // S -> a S | b : parsing a^N b builds an N-deep suffix stack.
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["a", "S"]);
    gb.rule("S", &["b"]);
    let g = gb.start("S").build().unwrap();
    for n in [8usize, 64, 256] {
        let mut names = vec!["a"; n];
        names.push("b");
        let w = word_of(&g, &names);
        // Sparse sweep over the interesting range: starving, partial, and
        // nearly-enough budgets.
        let sweep = (0..12).map(|i| 1 + (i * (3 * n as u64 + 8)) / 11);
        assert_abort_or_resolve(&g, &w, sweep);
    }
}

#[test]
fn deep_nesting_respects_stack_depth_limit() {
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["a", "S"]);
    gb.rule("S", &["b"]);
    let g = gb.start("S").build().unwrap();
    let an = GrammarAnalysis::compute(&g);
    let mut names = vec!["a"; 128];
    names.push("b");
    let w = word_of(&g, &names);
    for limit in [2usize, 8, 32] {
        let budget = Budget::unlimited().with_max_stack_depth(limit);
        let (outcome, report) =
            run_instrumented_with(&g, &an, &w, &budget).expect("invariants hold");
        let ParseOutcome::Aborted(AbortReason::StackDepth { depth, limit: l }) = outcome else {
            panic!("depth limit {limit}: expected a stack-depth abort, got {outcome:?}");
        };
        assert_eq!(l, limit);
        assert!(depth > limit);
        assert!(
            report.max_stack_height <= limit,
            "depth limit {limit}: stack grew to {} before the abort",
            report.max_stack_height
        );
    }
}

#[test]
fn wide_alternation_fanout_aborts_or_accepts() {
    // One decision with 16 alternatives, each needing full lookahead to
    // the end of the word to discriminate: prediction fan-out is wide and
    // lookahead-hungry at once.
    let mut gb = GrammarBuilder::new();
    for i in 0..16 {
        let tail = format!("t{i}");
        gb.rule("S", &["x", "M", tail.as_str()]);
    }
    gb.rule("M", &["m", "M"]);
    gb.rule("M", &[]);
    let g = gb.start("S").build().unwrap();

    let mut names = vec!["x"];
    names.extend(std::iter::repeat_n("m", 24));
    names.push("t7");
    let w = word_of(&g, &names);
    assert_abort_or_resolve(&g, &w, (0..16).map(|i| 1 + i * 40));

    // And an invalid word (wrong tail) under the same sweeps.
    let mut names = vec!["x"];
    names.extend(std::iter::repeat_n("m", 24));
    let w = word_of(&g, &names);
    assert_abort_or_resolve(&g, &w, (0..16).map(|i| 1 + i * 40));
}

#[test]
fn failover_storm_under_tiny_cache_aborts_or_accepts() {
    // Every `X` decision SLL-conflicts and fails over to LL; chaining
    // many of them in one input makes prediction re-run constantly while
    // a 2-entry cache cap forces perpetual eviction.
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["U", "S"]);
    gb.rule("S", &["U"]);
    gb.rule("U", &["p", "C1"]);
    gb.rule("U", &["q", "C2"]);
    gb.rule("C1", &["X", "b"]);
    gb.rule("C2", &["X", "a", "b"]);
    gb.rule("X", &["a", "a"]);
    gb.rule("X", &["a"]);
    let g = gb.start("S").build().unwrap();
    let an = GrammarAnalysis::compute(&g);

    let unit = ["q", "a", "a", "b"];
    for repeats in [1usize, 4, 12] {
        let names: Vec<&str> = unit.iter().cycle().take(4 * repeats).copied().collect();
        let w = word_of(&g, &names);
        let (unlimited, report) = run_instrumented(&g, &an, &w).expect("invariants hold");
        assert!(unlimited.is_accept(), "storm word is in the language");

        let cap = Budget::unlimited().with_max_cache_entries(2);
        let (capped, _) = run_instrumented_with(&g, &an, &w, &cap).expect("invariants hold");
        assert_eq!(capped, unlimited, "cache cap must not change the verdict");

        let sweep = (0..10).map(|i| 1 + (i * 2 * report.machine_steps) / 9);
        assert_abort_or_resolve(&g, &w, sweep);
    }
}

#[test]
fn zero_deadline_aborts_immediately_and_consistently() {
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["a", "S"]);
    gb.rule("S", &["b"]);
    let g = gb.start("S").build().unwrap();
    let mut names = vec!["a"; 64];
    names.push("b");
    let mut parser =
        Parser::with_budget(g.clone(), Budget::unlimited().with_deadline(Duration::ZERO));
    let w = word_of(&g, &names);
    let ParseOutcome::Aborted(AbortReason::DeadlineExpired { budget_ms: 0 }) = parser.parse(&w)
    else {
        panic!("an already-expired deadline must abort on the first step");
    };
    // A generous deadline resolves the same input.
    parser.set_budget(Budget::unlimited().with_deadline(Duration::from_secs(600)));
    assert!(parser.parse(&w).is_accept());
}
