//! Cross-crate integration tests for syntax-error recovery
//! (`Parser::parse_recovering`) and the grammar-analysis cache, over the
//! four benchmark languages of the paper's evaluation (§6.1).
//!
//! The corruption scheme is deterministic — for every generated corpus
//! file, each of the three single-token mutations (delete, insert,
//! adjacent swap) is applied at positions derived from the file index —
//! so a failure here replays exactly. The obligations per corrupted
//! word:
//!
//! 1. recovery terminates (the `2·|input| + 2` bound of the resync loop),
//! 2. it never panics and never reports an internal error,
//! 3. whenever the plain parser rejects the word, recovery records at
//!    least one diagnostic and returns an error-annotated tree whose
//!    yield — counting tokens absorbed into error nodes — spells the
//!    entire input,
//! 4. whenever the plain parser accepts, recovery is the identity:
//!    byte-identical tree, zero diagnostics.
//!
//! A separate test pins the `max_recoveries` budget contract, and the
//! cache tests check that a `GrammarAnalysis` restored from its JSON
//! cache form drives parses identical to a freshly computed one.

use costar::{AbortReason, Budget, ParseOutcome, Parser, RecoveredParse};
use costar_grammar::analysis::{from_cache_json, to_cache_json, GrammarAnalysis};
use costar_grammar::{Terminal, Token};
use costar_langs::{all_languages, corpus};

/// Small per-language corpus: big enough to hit nesting, small enough to
/// keep the suite fast.
const NUM_FILES: usize = 3;
const MAX_SIZE: usize = 120;
const SEED: u64 = 0xC0_57A2;

fn terminals(word: &[Token]) -> Vec<Terminal> {
    word.iter().map(Token::terminal).collect()
}

/// The three deterministic single-token mutations of `word`, with the
/// mutation site derived from `salt` so different files corrupt at
/// different positions. Empty words only support insertion.
fn mutations(word: &[Token], salt: usize) -> Vec<(&'static str, Vec<Token>)> {
    let mut out = Vec::new();
    if !word.is_empty() {
        let mut deleted = word.to_vec();
        deleted.remove(salt % word.len());
        out.push(("delete", deleted));

        // Insert a duplicate of an existing token at a different spot:
        // stays within the grammar's alphabet without needing the symbol
        // table, yet lands somewhere it rarely belongs.
        let mut inserted = word.to_vec();
        let tok = word[salt % word.len()].clone();
        inserted.insert((salt / 2) % (word.len() + 1), tok);
        out.push(("insert", inserted));
    }
    if word.len() >= 2 {
        // Swap the first adjacent pair of *distinct* terminals at or
        // after the salt position (a same-terminal swap is a no-op).
        let start = salt % (word.len() - 1);
        if let Some(i) = (0..word.len() - 1)
            .map(|k| (start + k) % (word.len() - 1))
            .find(|&i| word[i].terminal() != word[i + 1].terminal())
        {
            let mut swapped = word.to_vec();
            swapped.swap(i, i + 1);
            out.push(("swap", swapped));
        }
    }
    out
}

/// The shared per-word obligation: recovery either reproduces a clean
/// parse exactly or degrades into diagnostics plus a full-yield tree.
fn check_recovered(ctx: &str, parser: &mut Parser, word: &[Token]) {
    let baseline = parser.parse(word);
    let recovered: RecoveredParse = parser.parse_recovering(word);
    match &baseline {
        ParseOutcome::Unique(tree) | ParseOutcome::Ambig(tree) => {
            assert!(
                recovered.diagnostics.is_empty(),
                "{ctx}: accepted word produced {} diagnostics",
                recovered.diagnostics.len()
            );
            assert_eq!(
                recovered.tree(),
                Some(tree),
                "{ctx}: recovered tree differs from the plain parse tree"
            );
        }
        ParseOutcome::Reject(reason) => {
            assert!(
                !recovered.diagnostics.is_empty(),
                "{ctx}: rejected word ({reason}) produced no diagnostics"
            );
            assert!(
                matches!(recovered.outcome, ParseOutcome::Reject(_)),
                "{ctx}: recovered outcome is {:?}, not Reject",
                recovered.outcome
            );
            let tree = recovered
                .tree()
                .unwrap_or_else(|| panic!("{ctx}: rejected word recovered with no tree"));
            assert!(tree.has_errors(), "{ctx}: recovered tree has no error node");
            assert_eq!(
                terminals(&tree.yield_tokens()),
                terminals(word),
                "{ctx}: recovered yield does not spell the input"
            );
        }
        other => panic!("{ctx}: plain parse returned {other:?} with an unlimited budget"),
    }
}

#[test]
fn corrupted_corpora_recover_across_all_languages() {
    for (lang, generate) in all_languages() {
        let mut parser = Parser::new(lang.grammar().clone());
        let mut corrupted_words = 0usize;
        let mut rejected_words = 0usize;
        for (i, file) in corpus(generate, SEED, NUM_FILES, MAX_SIZE)
            .iter()
            .enumerate()
        {
            let word = lang.tokenize(file).expect("generated files lex");

            // The untouched file parses cleanly, and recovery agrees.
            let ctx = format!("{} file {i} (valid)", lang.name);
            let clean = parser.parse_recovering(&word);
            assert!(clean.is_clean(), "{ctx}: {:?}", clean.outcome);
            check_recovered(&ctx, &mut parser, &word);

            for (kind, mutated) in mutations(&word, i * 7 + 3) {
                corrupted_words += 1;
                let ctx = format!("{} file {i} ({kind})", lang.name);
                if matches!(parser.parse(&mutated), ParseOutcome::Reject(_)) {
                    rejected_words += 1;
                }
                check_recovered(&ctx, &mut parser, &mutated);
            }
        }
        // The corruption scheme must actually produce invalid inputs, or
        // the recovery leg above is vacuous.
        assert!(
            rejected_words > 0,
            "{}: none of the {corrupted_words} mutations left the language",
            lang.name
        );
    }
}

#[test]
fn recovery_collects_multiple_diagnostics_per_file() {
    // JSON with two independent corruption sites: recovery should resync
    // past the first error and still report the second.
    let (lang, _) = all_languages().into_iter().next().expect("JSON first");
    let mut parser = Parser::new(lang.grammar().clone());
    let word = lang
        .tokenize(r#"{ "a": [1, 2 2], "b": { "c": : true } }"#)
        .expect("lexes");
    let recovered = parser.parse_recovering(&word);
    assert!(
        recovered.diagnostics.len() >= 2,
        "expected multiple diagnostics, got {:?}",
        recovered.diagnostics
    );
    let tree = recovered.into_tree().expect("recovered tree");
    assert_eq!(terminals(&tree.yield_tokens()), terminals(&word));
}

#[test]
fn max_recoveries_budget_aborts_cleanly() {
    let (lang, _) = all_languages().into_iter().next().expect("JSON first");
    // Same doubly corrupted input as above: needs at least two recoveries.
    let word = lang
        .tokenize(r#"{ "a": [1, 2 2], "b": { "c": : true } }"#)
        .expect("lexes");

    let mut capped = Parser::with_budget(
        lang.grammar().clone(),
        Budget::unlimited().with_max_recoveries(1),
    );
    let recovered = capped.parse_recovering(&word);
    assert_eq!(
        recovered.outcome,
        ParseOutcome::Aborted(AbortReason::RecoveryLimit { limit: 1 }),
        "diagnostics: {:?}",
        recovered.diagnostics
    );
    assert_eq!(
        recovered.diagnostics.len(),
        1,
        "cap of 1 means 1 diagnostic"
    );
    assert!(
        recovered.tree().is_none(),
        "an aborted recovery must not hand back a partial tree"
    );

    // A cap of zero disables recovery entirely: abort on first reject.
    let mut off = Parser::with_budget(
        lang.grammar().clone(),
        Budget::unlimited().with_max_recoveries(0),
    );
    let recovered = off.parse_recovering(&word);
    assert_eq!(
        recovered.outcome,
        ParseOutcome::Aborted(AbortReason::RecoveryLimit { limit: 0 })
    );
    assert!(recovered.diagnostics.is_empty());

    // A generous cap never triggers, and the parser stays usable after an
    // abort (panic-safe boundary contract).
    let mut roomy = Parser::with_budget(
        lang.grammar().clone(),
        Budget::unlimited().with_max_recoveries(64),
    );
    let recovered = roomy.parse_recovering(&word);
    assert!(matches!(recovered.outcome, ParseOutcome::Reject(_)));
    assert!(recovered.diagnostics.len() >= 2);
    let valid = lang
        .tokenize(r#"{ "a": [1, 2], "b": true }"#)
        .expect("lexes");
    assert!(roomy.parse_recovering(&valid).is_clean());
}

#[test]
fn cached_analysis_drives_identical_parses() {
    for (lang, generate) in all_languages() {
        let g = lang.grammar().clone();
        let fresh = GrammarAnalysis::compute(&g);
        let restored = from_cache_json(&g, &to_cache_json(&g, &fresh))
            .unwrap_or_else(|| panic!("{}: cache roundtrip failed validation", lang.name));

        let mut a = Parser::with_analysis(g.clone(), fresh);
        let mut b = Parser::with_analysis(g.clone(), restored);
        for (i, file) in corpus(generate, SEED, NUM_FILES, MAX_SIZE)
            .iter()
            .enumerate()
        {
            let word = lang.tokenize(file).expect("generated files lex");
            assert_eq!(
                a.parse(&word),
                b.parse(&word),
                "{} file {i}: cached analysis diverged on the valid word",
                lang.name
            );
            for (kind, mutated) in mutations(&word, i * 7 + 3) {
                let ra = a.parse_recovering(&mutated);
                let rb = b.parse_recovering(&mutated);
                assert_eq!(
                    ra, rb,
                    "{} file {i} ({kind}): cached analysis diverged under recovery",
                    lang.name
                );
            }
        }
    }
}

#[test]
fn corrupt_cache_text_is_rejected_not_trusted() {
    let (lang, _) = all_languages().into_iter().next().expect("JSON first");
    let g = lang.grammar().clone();
    let analysis = GrammarAnalysis::compute(&g);
    let good = to_cache_json(&g, &analysis);

    // Truncations, bit flips, and wholesale garbage must all be detected
    // by validation — `from_cache_json` returns None rather than a
    // half-reconstructed analysis.
    assert!(from_cache_json(&g, &good[..good.len() / 2]).is_none());
    assert!(from_cache_json(&g, "").is_none());
    assert!(from_cache_json(&g, "{}").is_none());
    assert!(from_cache_json(&g, "not json at all").is_none());
    let flipped = good.replace("costar-gcache", "costar-gcacheX");
    assert!(from_cache_json(&g, &flipped).is_none());
}
