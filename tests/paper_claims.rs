//! Integration tests for the specific claims of the paper's §6.1,
//! exercised across the whole pipeline (generators → lexers → parser →
//! baselines).

use costar::{ParseOutcome, Parser};
use costar_baselines::{AntlrSim, Ll1Parser};
use costar_grammar::check_tree;
use costar_langs::{all_languages, corpus};

/// §6.1: "the tool returns a parse tree labeled as Unique for all files
/// in the benchmark data sets" — for us, for every generated corpus file
/// of every language, cross-checked against the derivation relation and
/// the imperative baseline.
#[test]
fn all_corpora_unique() {
    for (lang, generate) in all_languages() {
        let mut parser = Parser::new(lang.grammar().clone());
        let mut sim = AntlrSim::new(lang.grammar().clone());
        for (i, src) in corpus(generate, 99, 6, 400).iter().enumerate() {
            let word = lang
                .tokenize(src)
                .unwrap_or_else(|e| panic!("{} file {i}: lex error {e}", lang.name));
            let outcome = parser.parse(&word);
            let ParseOutcome::Unique(tree) = &outcome else {
                panic!("{} file {i}: expected Unique, got {outcome:?}", lang.name);
            };
            check_tree(lang.grammar(), lang.grammar().start(), &word, tree)
                .unwrap_or_else(|e| panic!("{} file {i}: bad tree: {e}", lang.name));
            // The unverified imperative ALL(*) must produce the same tree.
            let sim_outcome = sim.parse(&word);
            assert_eq!(
                sim_outcome.tree(),
                Some(tree),
                "{} file {i}: baselines disagree",
                lang.name
            );
        }
    }
}

/// §6.1: "the grammar is not LL(k) for any k" (XML). We check the k = 1
/// case constructively: LL(1) table generation must fail for XML — and
/// also for DOT and Python, whose statement syntax needs lookahead —
/// while plain JSON is comfortably LL(1). This is the expressiveness gap
/// between CoStar and the verified LL(1) parsers of prior work.
#[test]
fn xml_not_ll1_but_json_is() {
    for (lang, _) in all_languages() {
        let result = Ll1Parser::generate(lang.grammar());
        match lang.name {
            "JSON" => assert!(result.is_ok(), "JSON should be LL(1): {:?}", result.err()),
            _ => assert!(result.is_err(), "{} should not be LL(1)", lang.name),
        }
    }
}

/// Where both are defined (JSON), the LL(1) parser and CoStar agree on
/// membership and trees.
#[test]
fn ll1_and_costar_agree_on_json() {
    let (lang, generate) = all_languages().remove(0);
    assert_eq!(lang.name, "JSON");
    let ll1 = Ll1Parser::generate(lang.grammar()).expect("JSON is LL(1)");
    let mut costar = Parser::new(lang.grammar().clone());
    for src in corpus(generate, 5, 5, 200) {
        let word = lang.tokenize(&src).expect("corpus lexes");
        let ll1_tree = ll1.parse(&word).expect("LL(1) accepts corpus");
        let ParseOutcome::Unique(costar_tree) = costar.parse(&word) else {
            panic!("CoStar must accept what LL(1) accepts");
        };
        assert_eq!(ll1_tree, costar_tree, "parsers must build the same tree");
    }
    // And both reject garbage.
    let garbage = lang.tokenize("{,}").expect("lexes");
    assert!(ll1.parse(&garbage).is_none());
    assert!(!costar.parse(&garbage).is_accept());
}

/// The non-LL(k) XML decision (paper §6.1's `elt` rule): unbounded
/// attribute lists before the `>` vs `/>` decision, at increasing sizes.
#[test]
fn xml_attribute_lookahead_scales() {
    let (lang, _) = all_languages().remove(1);
    assert_eq!(lang.name, "XML");
    let mut parser = Parser::new(lang.grammar().clone());
    for n in [0, 1, 8, 64, 256] {
        let attrs: String = (0..n).map(|i| format!(" a{i}=\"v\"")).collect();
        for (src, what) in [
            (format!("<e{attrs}>text</e>"), "open"),
            (format!("<e{attrs}/>"), "self-closing"),
        ] {
            let word = lang.tokenize(&src).expect("lexes");
            assert!(
                matches!(parser.parse(&word), ParseOutcome::Unique(_)),
                "{what} element with {n} attributes"
            );
        }
    }
}

/// Error-free termination (Theorem 5.8) at pipeline scale: corrupting
/// corpus token streams never produces an `Error`, only accept/reject.
#[test]
fn corrupted_corpora_never_error() {
    for (lang, generate) in all_languages() {
        let mut parser = Parser::new(lang.grammar().clone());
        let src = generate(3, 120);
        let word = lang.tokenize(&src).expect("corpus lexes");
        if word.is_empty() {
            continue;
        }
        // Deletions, truncations, duplications, and swaps.
        let mut variants: Vec<Vec<costar_grammar::Token>> = Vec::new();
        for i in (0..word.len()).step_by(7) {
            let mut v = word.clone();
            v.remove(i);
            variants.push(v);
        }
        variants.push(word[..word.len() / 2].to_vec());
        let mut dup = word.clone();
        dup.extend_from_slice(&word[..word.len().min(3)]);
        variants.push(dup);
        for i in (1..word.len()).step_by(11) {
            let mut v = word.clone();
            v.swap(i - 1, i);
            variants.push(v);
        }
        for (k, v) in variants.iter().enumerate() {
            let outcome = parser.parse(v);
            assert!(
                !matches!(outcome, ParseOutcome::Error(_)),
                "{} variant {k}: error outcome {outcome:?}",
                lang.name
            );
            // Accepted variants must still carry correct trees.
            if let Some(tree) = outcome.tree() {
                assert!(check_tree(lang.grammar(), lang.grammar().start(), v, tree).is_ok());
            }
        }
    }
}

/// The §6.1 profiling observation, reproduced structurally: the larger
/// the grammar, the lower the parser's token throughput. We check the
/// ordering between the smallest (JSON) and largest (Python) grammars.
#[test]
fn python_is_slowest_per_token() {
    let langs = all_languages();
    let mut rates = Vec::new();
    for (lang, generate) in langs {
        let src = generate(1, 1500);
        let word = lang.tokenize(&src).expect("lexes");
        let mut parser = Parser::new(lang.grammar().clone());
        assert!(parser.parse(&word).is_accept());
        let start = std::time::Instant::now();
        for _ in 0..3 {
            parser.parse(&word);
        }
        let secs = start.elapsed().as_secs_f64() / 3.0;
        rates.push((lang.name, word.len() as f64 / secs));
    }
    let json = rates.iter().find(|(n, _)| *n == "JSON").unwrap().1;
    let python = rates.iter().find(|(n, _)| *n == "Python").unwrap().1;
    assert!(
        python < json,
        "expected Python ({python:.0} tok/s) slower than JSON ({json:.0} tok/s)"
    );
}
