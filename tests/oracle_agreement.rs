//! Oracle agreement: CoStar versus independent implementations, over
//! random grammars and inputs.
//!
//! These are the strongest correctness tests in the repository. For a
//! random non-left-recursive grammar and a random word:
//!
//! * CoStar accepts iff the Earley recognizer accepts (soundness +
//!   completeness, paper Theorems 5.1/5.11 — membership form);
//! * CoStar's `Unique`/`Ambig` label matches the derivation-counting
//!   oracle (Theorems 5.6/5.12 — the ambiguity-correctness claim that is
//!   the paper's novel verification contribution);
//! * the imperative `AntlrSim` reaches the same outcome as the
//!   functional CoStar (two independent ALL(*) implementations).

use costar::{ParseOutcome, Parser};
use costar_baselines::{
    count_trees, cyk_recognize, earley_parse, earley_recognize, to_cnf, AntlrSim, SimOutcome,
    TreeCount,
};
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::sampler::{DerivationSampler, SplitMix64};
use costar_grammar::{check_tree, Grammar, GrammarBuilder, Symbol, Token};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum SymSpec {
    T(usize),
    Nt(usize),
}

#[derive(Debug, Clone)]
struct GrammarSpec {
    num_terminals: usize,
    rules: Vec<Vec<Vec<SymSpec>>>,
}

impl GrammarSpec {
    fn build(&self) -> Grammar {
        let mut gb = GrammarBuilder::new();
        let nts: Vec<_> = (0..self.rules.len())
            .map(|i| gb.nonterminal(&format!("N{i}")))
            .collect();
        let ts: Vec<_> = (0..self.num_terminals)
            .map(|i| gb.terminal(&format!("t{i}")))
            .collect();
        for (i, alts) in self.rules.iter().enumerate() {
            for alt in alts {
                let rhs: Vec<Symbol> = alt
                    .iter()
                    .map(|s| match s {
                        SymSpec::T(k) => Symbol::T(ts[k % ts.len()]),
                        SymSpec::Nt(k) => Symbol::Nt(nts[k % nts.len()]),
                    })
                    .collect();
                gb.rule_syms(nts[i], rhs);
            }
        }
        gb.start_sym(nts[0]);
        gb.build().expect("spec grammars are well-formed")
    }
}

fn sym_spec() -> impl Strategy<Value = SymSpec> {
    prop_oneof![
        3 => (0usize..6).prop_map(SymSpec::T),
        2 => (0usize..6).prop_map(SymSpec::Nt),
    ]
}

fn grammar_spec() -> impl Strategy<Value = GrammarSpec> {
    (
        1usize..4,
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(sym_spec(), 0..3), 1..4),
            1..5,
        ),
    )
        .prop_map(|(num_terminals, rules)| GrammarSpec {
            num_terminals,
            rules,
        })
}

fn random_word(g: &Grammar, picks: &[usize]) -> Vec<Token> {
    let terms: Vec<_> = g.symbols().terminals().collect();
    picks
        .iter()
        .map(|&k| {
            let t = terms[k % terms.len()];
            Token::new(t, g.symbols().terminal_name(t))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Membership agreement with Earley on arbitrary words (mostly
    /// invalid ones — the rejection side of the decision procedure).
    #[test]
    fn costar_matches_earley_membership(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..6, 0..10),
    ) {
        let g = spec.build();
        if !GrammarAnalysis::compute(&g).left_recursion.is_grammar_safe() {
            return Ok(());
        }
        let word = random_word(&g, &picks);
        let mut parser = Parser::new(g.clone());
        let costar_accepts = parser.parse(&word).is_accept();
        let earley_accepts = earley_recognize(&g, &word);
        prop_assert_eq!(
            costar_accepts,
            earley_accepts,
            "membership disagreement on word of length {}",
            word.len()
        );
    }

    /// Label agreement with the derivation-counting oracle on words known
    /// to be in the language (sampled from the grammar).
    #[test]
    fn ambiguity_labels_match_oracle(
        spec in grammar_spec(),
        seed in any::<u64>(),
        budget in 2usize..8,
    ) {
        let g = spec.build();
        if !GrammarAnalysis::compute(&g).left_recursion.is_grammar_safe() {
            return Ok(());
        }
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(seed);
        let Some((word, _)) = sampler.sample_word(&mut rng, budget) else {
            return Ok(());
        };
        if word.len() > 10 {
            return Ok(()); // keep the DP oracle cheap
        }
        let mut parser = Parser::new(g.clone());
        let outcome = parser.parse(&word);
        let oracle = count_trees(&g, &word);
        match (&outcome, oracle) {
            (ParseOutcome::Unique(tree), TreeCount::One) => {
                prop_assert!(check_tree(&g, g.start(), &word, tree).is_ok());
            }
            (ParseOutcome::Ambig(tree), TreeCount::Many) => {
                prop_assert!(check_tree(&g, g.start(), &word, tree).is_ok());
            }
            (got, expected) => {
                return Err(TestCaseError::fail(format!(
                    "label mismatch: parser {got:?}, oracle {expected:?}, word len {}",
                    word.len()
                )));
            }
        }
    }

    /// The functional CoStar and the imperative AntlrSim are two
    /// independent implementations of ALL(*); on non-left-recursive
    /// grammars they must agree exactly. (On left-recursive grammars the
    /// correctness theorems do not apply, and the two may legitimately
    /// diverge: AntlrSim's one-token quick decisions can sidestep a
    /// left-recursive alternative that full simulation must explore.)
    #[test]
    fn antlr_sim_agrees_with_costar(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..6, 0..10),
        seed in any::<u64>(),
    ) {
        let g = spec.build();
        if !GrammarAnalysis::compute(&g).left_recursion.is_grammar_safe() {
            return Ok(());
        }
        let mut parser = Parser::new(g.clone());
        let mut sim = AntlrSim::new(g.clone());
        let mut words = vec![random_word(&g, &picks)];
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(seed);
        if let Some((w, _)) = sampler.sample_word(&mut rng, 7) {
            words.push(w);
        }
        for word in &words {
            let a = parser.parse(word);
            let b = sim.parse(word);
            let agree = matches!(
                (&a, &b),
                (ParseOutcome::Unique(x), SimOutcome::Unique(y)) if x == y
            ) || matches!(
                (&a, &b),
                (ParseOutcome::Ambig(x), SimOutcome::Ambig(y)) if x == y
            ) || matches!((&a, &b), (ParseOutcome::Reject(_), SimOutcome::Reject))
                || matches!(
                    (&a, &b),
                    (
                        ParseOutcome::Error(costar::ParseError::LeftRecursive(_)),
                        SimOutcome::LeftRecursive(_)
                    )
                );
            prop_assert!(agree, "outcome mismatch: costar {a:?} vs sim {b:?}");
        }
    }

    /// Triple-oracle membership agreement: Earley and CYK (two general
    /// CFG algorithms with completely different structure) must agree on
    /// every grammar and word — left-recursive and ambiguous ones
    /// included. A disagreement would indict one of the oracles that the
    /// CoStar tests lean on.
    #[test]
    fn earley_and_cyk_agree(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..6, 0..9),
        seed in any::<u64>(),
    ) {
        let g = spec.build();
        let cnf = to_cnf(&g);
        let mut words = vec![random_word(&g, &picks)];
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(seed);
        if let Some((w, _)) = sampler.sample_word(&mut rng, 7) {
            words.push(w);
        }
        for word in &words {
            let terms: Vec<_> = word.iter().map(|t| t.terminal()).collect();
            prop_assert_eq!(
                earley_recognize(&g, word),
                cyk_recognize(&cnf, &terms),
                "oracle disagreement on word of length {}",
                word.len()
            );
        }
    }

    /// Earley's trees are valid derivations whenever it parses — and it
    /// parses exactly when CoStar does (on safe grammars).
    #[test]
    fn earley_trees_are_valid(
        spec in grammar_spec(),
        seed in any::<u64>(),
    ) {
        let g = spec.build();
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(seed);
        let Some((word, _)) = sampler.sample_word(&mut rng, 7) else {
            return Ok(());
        };
        let tree = earley_parse(&g, &word);
        let t = tree.expect("sampled words are in the language");
        prop_assert!(check_tree(&g, g.start(), &word, &t).is_ok());
    }
}
