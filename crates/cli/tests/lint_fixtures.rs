//! End-to-end tests of `costar lint` against fixture grammars with
//! seeded defects: exact diagnostic codes, concrete witnesses, both
//! output formats, and the exit-code contract (0 clean / 1 findings /
//! 2 load error).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(extra: &[&str], grammar: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_costar"))
        .arg("lint")
        .arg("--grammar")
        .arg(fixture(grammar))
        .args(extra)
        .output()
        .expect("spawn costar")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

#[test]
fn clean_fixture_exits_zero() {
    let out = lint(&[], "lint_clean.ebnf");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("no findings"), "{}", stdout(&out));
}

#[test]
fn unreachable_fixture_reports_l004() {
    let out = lint(&[], "lint_unreachable.ebnf");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("warning[L004]"), "{text}");
    assert!(text.contains("orphan"), "{text}");
    // The clean parts of the grammar must not be flagged.
    assert!(!text.contains("L001"), "{text}");
    assert!(!text.contains("L003"), "{text}");
}

#[test]
fn unproductive_fixture_reports_l003_with_witness() {
    let out = lint(&[], "lint_unproductive.ebnf");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("warning[L003]"), "{text}");
    assert!(text.contains("loop"), "{text}");
    assert!(!text.contains("L001"), "{text}");
    assert!(!text.contains("L004"), "{text}");
}

#[test]
fn hidden_left_recursion_reports_l001_with_cycle() {
    let out = lint(&[], "lint_hidden_lr.ebnf");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("error[L001]"), "{text}");
    // The cycle witness renders with the derivation arrow and returns to
    // its origin: `s ⇒ ... ⇒ s`.
    let witness = text
        .lines()
        .find(|l| l.contains("witness:") && l.contains('\u{21d2}'))
        .unwrap_or_else(|| panic!("no cycle witness line in:\n{text}"));
    assert!(witness.matches('s').count() >= 2, "{witness}");
}

#[test]
fn json_format_is_structured() {
    let out = lint(&["--format=json"], "lint_unreachable.ebnf");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    let line = text.lines().next().expect("one JSON line");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"findings\":1"), "{line}");
    assert!(line.contains("\"worst\":\"warning\""), "{line}");
    assert!(line.contains("\"code\":\"L004\""), "{line}");
    assert!(line.contains("\"nonterminal\":\"orphan\""), "{line}");
}

#[test]
fn json_format_clean_grammar() {
    let out = lint(&["--format=json"], "lint_clean.ebnf");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("\"findings\":0"), "{text}");
    assert!(text.contains("\"worst\":null"), "{text}");
    assert!(text.contains("\"diagnostics\":[]"), "{text}");
}

#[test]
fn missing_grammar_file_exits_two() {
    let out = lint(&[], "no_such_fixture.ebnf");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn builtin_language_grammars_lint() {
    // The shipped benchmark grammars are expected to be structurally
    // clean apart from (possibly) LL(1)-conflict notes, which ALL(*)
    // exists to handle — so the command may exit 0 or 1, but never 2,
    // and must never report an error-severity finding.
    for lang in ["json", "xml", "dot"] {
        let out = Command::new(env!("CARGO_BIN_EXE_costar"))
            .args(["lint", "--lang", lang])
            .output()
            .expect("spawn costar");
        let code = out.status.code();
        assert!(code == Some(0) || code == Some(1), "{lang}: {out:?}");
        let text = stdout(&out);
        assert!(!text.contains("error[L00"), "{lang}:\n{text}");
    }
}
