//! End-to-end tests of `costar analyze` against fixture grammars
//! covering all three decision classes: human output, exact golden JSON
//! (the `costar-analyze-v1` schema is a stability contract for CI
//! scripts), and the lint-style exit-code contract (0 clean / 1 findings
//! / 2 load error, where a "finding" is a proven-ambiguous pair).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(extra: &[&str], grammar: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_costar"))
        .arg("analyze")
        .arg("--grammar")
        .arg(fixture(grammar))
        .args(extra)
        .output()
        .expect("spawn costar")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8 stderr")
}

/// The JSON report must match its golden fixture byte-for-byte: any
/// schema change must be deliberate (regenerate the golden and bump the
/// `schema` tag if the shape changed incompatibly).
fn assert_matches_golden(grammar: &str, golden: &str) {
    let out = analyze(&["--format=json"], grammar);
    let expected = std::fs::read_to_string(fixture(golden)).expect("read golden");
    assert_eq!(stdout(&out).trim_end(), expected.trim_end(), "{grammar}");
}

#[test]
fn ll1_fixture_is_clean_and_fully_mapped() {
    let out = analyze(&[], "analyze_ll1.ebnf");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("s: ll1"), "{text}");
    assert!(text.contains("lookahead map: 2 entries"), "{text}");
    assert!(stderr(&out).contains("1 ll1, 0 sll-safe"), "{out:?}");
}

#[test]
fn sll_safe_fixture_reports_class_and_distinguishing_prefix() {
    let out = analyze(&[], "analyze_sll_safe.ebnf");
    assert_eq!(out.status.code(), Some(0), "sll-safe is not a finding");
    let text = stdout(&out);
    assert!(text.contains("s: sll-safe"), "{text}");
    assert!(text.contains("x: ll1"), "{text}");
    assert!(text.contains("distinguished after"), "{text}");
    assert!(!text.contains("needs-full-allstar"), "{text}");
}

#[test]
fn ambiguous_fixture_exits_one_with_word_witness() {
    let out = analyze(&[], "analyze_ambiguous.ebnf");
    assert_eq!(out.status.code(), Some(1), "ambiguity is a finding");
    let text = stdout(&out);
    assert!(text.contains("s: needs-full-allstar"), "{text}");
    assert!(text.contains("ambiguous: both derive `A`"), "{text}");
    assert!(stderr(&out).contains("1 ambiguous"), "{out:?}");
}

#[test]
fn json_schema_is_stable_against_goldens() {
    assert_matches_golden("analyze_ll1.ebnf", "analyze_ll1.golden.json");
    assert_matches_golden("analyze_sll_safe.ebnf", "analyze_sll_safe.golden.json");
    assert_matches_golden("analyze_ambiguous.ebnf", "analyze_ambiguous.golden.json");
}

#[test]
fn ambiguous_json_exit_code_still_one() {
    let out = analyze(&["--format=json"], "analyze_ambiguous.ebnf");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stdout(&out).contains("\"ambiguous\":1"), "{out:?}");
}

#[test]
fn missing_grammar_file_exits_two() {
    let out = analyze(&[], "no_such_fixture.ebnf");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn builtin_language_tables_are_unambiguous_and_mostly_static() {
    // The shipped benchmark grammars must contain no proven-ambiguous
    // decision pair (exit 0), and the JSON grammar — the headline bench
    // corpus — must dispatch a majority of its decision points through
    // the precompiled LL(1) fast path.
    for lang in ["json", "xml", "dot", "python"] {
        let out = Command::new(env!("CARGO_BIN_EXE_costar"))
            .args(["analyze", "--lang", lang, "--format=json"])
            .output()
            .expect("spawn costar");
        assert_eq!(out.status.code(), Some(0), "{lang}: {out:?}");
        assert!(stdout(&out).contains("\"ambiguous\":0"), "{lang}");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_costar"))
        .args(["analyze", "--lang", "json"])
        .output()
        .expect("spawn costar");
    assert!(stderr(&out).contains("5 decision points: 5 ll1"), "{out:?}");
}
