//! End-to-end tests of `costar audit` against fixture grammars: human
//! output with certified bounds and witnesses, exact golden JSON (the
//! `costar-cert-v1` schema is a stability contract — it is the same
//! document embedded in the on-disk grammar-analysis cache and replayed
//! at load time), the `--max-lookahead` bound note, and the lint-style
//! exit-code contract (0 clean / 1 findings / 2 load error).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn audit(extra: &[&str], grammar: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_costar"))
        .arg("audit")
        .arg("--grammar")
        .arg(fixture(grammar))
        .args(extra)
        .output()
        .expect("spawn costar")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8 stderr")
}

/// The certificate must match its golden fixture byte-for-byte: any
/// schema change must be deliberate (regenerate the golden and bump the
/// `costar-cert-v1` tag if the shape changed incompatibly), because the
/// cache loader replays this exact document.
fn assert_matches_golden(grammar: &str, golden: &str) {
    let out = audit(&["--format=json"], grammar);
    let expected = std::fs::read_to_string(fixture(golden)).expect("read golden");
    assert_eq!(stdout(&out).trim_end(), expected.trim_end(), "{grammar}");
}

#[test]
fn lookahead_fixture_certifies_exact_bound_with_witnesses() {
    let out = audit(&[], "audit_lookahead.ebnf");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("s: k = 3"), "{text}");
    assert!(text.contains("collide after `A B`"), "{text}");
    assert!(text.contains("resolved by `A B C`"), "{text}");
    assert!(stderr(&out).contains("1 bounded (max k = 3)"), "{out:?}");
}

#[test]
fn max_lookahead_threshold_turns_the_bound_into_a_finding() {
    // Bound within threshold: still clean.
    let out = audit(&["--max-lookahead", "3"], "audit_lookahead.ebnf");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(!stdout(&out).contains("L011"), "{out:?}");
    // Threshold below the certified bound: L011 note, exit 1.
    let out = audit(&["--max-lookahead", "2"], "audit_lookahead.ebnf");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("note[L011]"), "{text}");
    assert!(text.contains("k = 3 exceeds threshold 2"), "{text}");
}

#[test]
fn dead_alternative_fixture_exits_one_with_l009() {
    let out = audit(&[], "audit_dead.ebnf");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("error[L009]"), "{text}");
    assert!(text.contains("`s -> u` contains an unproductive"), "{text}");
}

#[test]
fn shadowed_alternative_fixture_exits_one_with_l010() {
    let out = audit(&[], "audit_shadowed.ebnf");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("warning[L010]"), "{text}");
    assert!(
        text.contains("`s -> A` is covered by the earlier `s -> x`"),
        "{text}"
    );
}

#[test]
fn certificate_schema_is_stable_against_goldens() {
    assert_matches_golden("audit_lookahead.ebnf", "audit_lookahead.golden.json");
    assert_matches_golden("audit_dead.ebnf", "audit_dead.golden.json");
    assert_matches_golden("audit_shadowed.ebnf", "audit_shadowed.golden.json");
}

#[test]
fn missing_grammar_file_exits_two() {
    let out = audit(&[], "no_such_fixture.ebnf");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn builtin_languages_report_exact_bounds() {
    // The audit must certify every bundled grammar's decision points —
    // each one either carries a finite exact k or is explicitly
    // unbounded (ALL(*) regular lookahead), and none has dead or
    // shadowed alternatives.
    for lang in ["json", "xml", "dot", "python"] {
        let out = Command::new(env!("CARGO_BIN_EXE_costar"))
            .args(["audit", "--lang", lang])
            .output()
            .expect("spawn costar");
        assert_eq!(out.status.code(), Some(0), "{lang}: {out:?}");
        let summary = stderr(&out);
        assert!(summary.contains("0 dead, 0 shadowed"), "{lang}: {summary}");
        let text = stdout(&out);
        assert!(text.contains(": k = "), "{lang}: {text}");
    }
    // JSON — the headline bench grammar — is entirely single-token
    // decidable: every decision point certifies k = 1.
    let out = Command::new(env!("CARGO_BIN_EXE_costar"))
        .args(["audit", "--lang", "json"])
        .output()
        .expect("spawn costar");
    let text = stdout(&out);
    assert!(text.contains("value: k = 1"), "{text}");
    assert!(!text.contains("unbounded"), "{text}");
}
