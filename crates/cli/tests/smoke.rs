//! End-to-end smoke tests of the `costar` binary.

use std::process::Command;

fn costar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_costar"))
}

fn tmp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("costar-cli-test-{name}-{}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

#[test]
fn generate_then_parse_round_trip() {
    let out = costar()
        .args(["generate", "--lang", "json", "--size", "60", "--seed", "5"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.starts_with('{'));

    let path = tmp_file("gen", &json);
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .args(["--stats", "--time"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("unique parse"), "{stdout}");
    // Human stats and timing report on stderr, keeping stdout for the
    // verdict (and, with --tree, the rendered tree).
    assert!(stderr.contains("decisions:"), "{stderr}");
    assert!(stderr.contains("cache:"), "{stderr}");
    assert!(stderr.contains("parse time:"), "{stderr}");
    assert!(!stdout.contains("decisions:"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn stats_json_goes_to_stdout_and_reconciles() {
    let out = costar()
        .args(["generate", "--lang", "json", "--size", "80", "--seed", "11"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8");
    let path = tmp_file("statsjson", &json);

    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .arg("--stats=json")
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(out.status.success(), "{stdout}{stderr}");
    // stdout is exactly one JSON object; the verdict line moves to stderr.
    assert!(stdout.trim().starts_with('{'), "{stdout}");
    assert!(stdout.trim().ends_with('}'), "{stdout}");
    assert!(stderr.contains("unique parse"), "{stderr}");
    // The metrics must self-certify: machine + prediction steps equal the
    // meter, and the cache lookup/hit/miss accounting closes.
    assert!(stdout.contains("\"reconciles\":true"), "{stdout}");
    assert!(stdout.contains("\"machine_steps\":"), "{stdout}");
    assert!(stdout.contains("\"cache_hit_rate\":"), "{stdout}");
    assert!(stdout.contains("\"abort\":null"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn trace_buffer_dumps_on_reject() {
    let path = tmp_file("tracebad", "[1, 2, }");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .args(["--trace-buffer", "32"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("trace: last"), "{stderr}");
    assert!(stderr.contains("consume"), "{stderr}");

    // On an accepting parse the buffer stays silent.
    let good = tmp_file("traceok", "[1, 2]");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&good)
        .args(["--trace-buffer", "32"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(!stderr.contains("trace:"), "{stderr}");
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(good);
}

#[test]
fn parse_rejects_invalid_input_with_nonzero_exit() {
    let path = tmp_file("bad", "{\"a\": }");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("reject"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_reports_left_recursion_and_rewrite() {
    let path = tmp_file("lr", "e : e '+' T | T ;\n");
    let out = costar()
        .args(["check", "--grammar"])
        .arg(&path)
        .arg("--eliminate-lr")
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(!out.status.success(), "left recursion must fail the check");
    assert!(stdout.contains("left recursion: YES"), "{stdout}");
    assert!(stdout.contains("rewritten grammar"), "{stdout}");
    assert!(stdout.contains("__lr"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn parse_with_inline_grammar_and_tokens() {
    let path = tmp_file("g", "s : A s | B ;\n");
    let ok = costar()
        .args(["parse", "--grammar"])
        .arg(&path)
        .args(["--tokens", "A A B"])
        .output()
        .expect("spawn");
    assert!(ok.status.success());
    let bad = costar()
        .args(["parse", "--grammar"])
        .arg(&path)
        .args(["--tokens", "A A"])
        .output()
        .expect("spawn");
    assert!(!bad.status.success());
    let _ = std::fs::remove_file(path);
}

#[test]
fn usage_on_bad_arguments() {
    let out = costar().arg("bogus").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn tokens_dump_lists_kinds() {
    let path = tmp_file("dot", "graph g { a -- b; }");
    let out = costar()
        .args(["tokens", "--lang", "dot"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("graph"), "{stdout}");
    assert!(stdout.contains("ID"), "{stdout}");
    assert!(stdout.contains("--"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn budget_abort_reports_distinctly_with_exit_3() {
    let out = costar()
        .args(["generate", "--lang", "json", "--size", "200", "--seed", "7"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8");
    let path = tmp_file("budget", &json);

    // One step of fuel cannot resolve a 200-token input: distinct
    // "aborted" report, exit code 3 (not the rejection/error code 1).
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .args(["--max-steps", "1"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("aborted"), "{stdout}");
    assert!(stdout.contains("step budget"), "{stdout}");
    assert!(!stdout.starts_with("reject"), "{stdout}");

    // A zero deadline is no longer a reachable abort: it is rejected as
    // a usage error before any parse starts (see
    // zero_budgets_are_usage_errors below). Deadline aborts remain
    // covered by the budget unit tests.

    // A generous budget resolves the same input normally.
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .args(["--max-steps", "100000000", "--deadline-ms", "600000"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("unique parse"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn stats_json_and_recover_json_merge_into_one_document() {
    // Regression: `--stats=json --recover=json` used to interleave two
    // top-level JSON documents on stdout; consumers piping into a JSON
    // parser saw trailing garbage. They must merge into one document.
    let path = tmp_file("mergedjson", "[1, 2, }, 3]");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .args(["--recover=json", "--stats=json"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(4), "recovered-with-errors exit");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let trimmed = stdout.trim();
    // Exactly one line, one object, both sections present.
    assert_eq!(trimmed.lines().count(), 1, "{stdout}");
    assert!(trimmed.starts_with("{\"stats\":{"), "{stdout}");
    assert!(trimmed.ends_with('}'), "{stdout}");
    assert!(trimmed.contains(",\"recovery\":{"), "{stdout}");
    assert!(trimmed.contains("\"outcome\":\"recovered\""), "{stdout}");
    assert!(trimmed.contains("\"reconciles\":true"), "{stdout}");
    // Balanced braces certify a single well-formed document (the old bug
    // printed `}{` between the two).
    let depth_ok = trimmed
        .chars()
        .scan(0i64, |d, c| {
            *d += match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            };
            Some(*d)
        })
        .all(|d| d >= 0);
    assert!(depth_ok && !trimmed.contains("}{"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn batch_parse_reports_per_file_in_stable_order() {
    let a = tmp_file("batch-a", "[1, 2, 3]");
    let b = tmp_file("batch-b", "{\"k\": [true, null]}");
    let c = tmp_file("batch-c", "[1, 2, }");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .args([&a, &b, &c])
        .args(["--jobs", "2"])
        .output()
        .expect("spawn");
    // Exit folds to the worst per-file code: the reject makes it 1.
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    // Verdicts appear in input order regardless of worker scheduling.
    assert!(lines[0].starts_with(a.to_str().unwrap()), "{stdout}");
    assert!(lines[1].starts_with(b.to_str().unwrap()), "{stdout}");
    assert!(lines[2].starts_with(c.to_str().unwrap()), "{stdout}");
    assert!(lines[0].contains("unique parse"), "{stdout}");
    assert!(lines[1].contains("unique parse"), "{stdout}");
    assert!(lines[2].contains("reject"), "{stdout}");
    for p in [a, b, c] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn batch_parse_emits_one_json_document_and_folds_recovered_exit() {
    let good = tmp_file("batch-good", "[1, [2], 3]");
    let broken = tmp_file("batch-broken", "[1, 2, }, 3]");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .args([&good, &broken])
        .args([
            "--jobs",
            "4",
            "--warm-cache",
            "--recover=json",
            "--stats=json",
        ])
        .output()
        .expect("spawn");
    // good=0, recovered-with-errors=4 → folded batch exit is 4.
    assert_eq!(out.status.code(), Some(4));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let trimmed = stdout.trim();
    assert_eq!(trimmed.lines().count(), 1, "one document: {stdout}");
    assert!(trimmed.starts_with("{\"files\":["), "{stdout}");
    assert!(trimmed.contains("\"outcome\":\"unique\""), "{stdout}");
    assert!(trimmed.contains("\"outcome\":\"recovered\""), "{stdout}");
    assert!(trimmed.contains("\"recovery\":{"), "{stdout}");
    assert!(trimmed.contains("\"jobs\":"), "{stdout}");
    assert!(trimmed.contains("\"exit\":4"), "{stdout}");
    // Per-file and roll-up stats both present and self-certifying.
    assert!(
        trimmed.matches("\"reconciles\":true").count() >= 3,
        "{stdout}"
    );
    // Verdict lines move to stderr when JSON owns stdout.
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unique parse"), "{stderr}");
    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(broken);
}

#[test]
fn batch_parse_rejects_trace_buffer() {
    let a = tmp_file("batch-tb-a", "[1]");
    let b = tmp_file("batch-tb-b", "[2]");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .args([&a, &b])
        .args(["--trace-buffer", "16"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("single-file"), "{stderr}");
    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}

#[test]
fn jobs_zero_is_a_usage_error_with_exit_two() {
    // Regression: `--jobs 0` used to be accepted and silently fall back
    // to available parallelism; a zero worker count is now a usage error
    // (exit 2), matching the other malformed-flag diagnostics.
    let path = tmp_file("jobs0", "[1]");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .args(["--jobs", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("--jobs"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn truncated_grammar_cache_recomputes_silently() {
    // A byte-truncated grammar-analysis cache file must fail validation
    // and be recomputed (and healed) silently — same verdict, no error
    // output. This is the end-to-end face of the decoder-level
    // truncation tests in costar-grammar.
    let dir = std::env::temp_dir().join(format!("costar-cache-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir cache dir");
    let g = tmp_file("cacheg", "s : A s | B ;\n");
    let run = || {
        costar()
            .args(["parse", "--grammar"])
            .arg(&g)
            .args(["--tokens", "A A B"])
            .env("COSTAR_CACHE_DIR", &dir)
            .output()
            .expect("spawn")
    };
    let out = run();
    assert!(out.status.success(), "{out:?}");
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    assert_eq!(files.len(), 1, "one cache entry expected: {files:?}");
    let full = std::fs::read_to_string(&files[0]).expect("read cache");
    assert!(
        full.contains("costar-cert-v1"),
        "cert embedded: {full:.>40}"
    );

    std::fs::write(&files[0], &full[..full.len() / 2]).expect("truncate");
    let out = run();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stdout.contains("unique parse"), "{stdout}");
    assert!(!stderr.contains("error"), "silent recompute: {stderr}");
    // The rerun healed the cache file back to the full document.
    let healed = std::fs::read_to_string(&files[0]).expect("read healed");
    assert_eq!(healed, full, "cache must be rewritten after truncation");
    let _ = std::fs::remove_file(g);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cache_cap_degrades_without_changing_the_verdict() {
    let out = costar()
        .args(["generate", "--lang", "json", "--size", "120", "--seed", "3"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8");
    let path = tmp_file("cap", &json);

    // A tiny cache cap forces LRU eviction but must not change outcomes
    // (degradation order: evict, then failover, and only budgets abort).
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .args(["--cache-cap", "4", "--stats"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("unique parse"), "{stdout}");

    // `--cache-cap 0` is the cache-off mode: every prediction re-simulates
    // (all lookups miss, nothing evicts) but the verdict is unchanged —
    // exercised on deeply nested input to stress repeated decisions.
    let nested = format!("{}42{}", "[".repeat(40), "]".repeat(40));
    let deep = tmp_file("cap0", &nested);
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&deep)
        .args(["--cache-cap", "0", "--stats=json"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"cache_hits\":0"), "{stdout}");
    assert!(stdout.contains("\"cache_evictions\":0"), "{stdout}");
    assert!(stdout.contains("\"reconciles\":true"), "{stdout}");
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(deep);
}

#[test]
fn zero_budgets_are_usage_errors() {
    // `--max-steps 0` and `--deadline-ms 0` would abort every parse
    // before its first step — they are rejected up front as usage errors
    // (exit 2), never silently accepted as budgets.
    for flag in ["--max-steps", "--deadline-ms"] {
        let out = costar()
            .args(["parse", "--lang", "json", "whatever.json", flag, "0"])
            .output()
            .expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{flag} 0 must be a usage error");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains(flag), "{stderr}");
        assert!(stderr.contains("usage:"), "{stderr}");
    }
}

#[test]
fn max_steps_auto_derives_fuel_from_the_cost_certificate() {
    let out = costar()
        .args(["generate", "--lang", "json", "--size", "120", "--seed", "3"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8");
    let path = tmp_file("autofuel", &json);

    // Auto fuel must accept what an unlimited budget accepts: the
    // certificate claims no accepting parse exceeds the derived bound.
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .args(["--max-steps", "auto", "--stats=json"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"cost_checks\":1"), "{stdout}");
    assert!(stdout.contains("\"cost_violations\":0"), "{stdout}");
    assert!(!stdout.contains("\"predicted_steps\":0,"), "{stdout}");

    // Batch mode derives fuel per input: a one-token file and the large
    // file in one batch both accept, each under its own bound.
    let tiny = tmp_file("autofuel-tiny", "7");
    let out = costar()
        .args(["parse", "--lang", "json"])
        .arg(&path)
        .arg(&tiny)
        .args(["--max-steps", "auto", "--stats=json", "--jobs", "2"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"cost_violations\":0"), "{stdout}");
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(tiny);
}

#[test]
fn edit_replays_a_script_incrementally() {
    let src = tmp_file("edit-src", "[1, 2, 3]");
    // Edit 0 replaces the `2` token; edit 1 swaps a space for a tab —
    // same-width skipped trivia, so the token vector is unchanged and
    // the parse must be skipped.
    let script = tmp_file(
        "edit-script",
        r#"{"edits":[
            {"start":4,"end":5,"replacement":"99"},
            {"start":3,"end":4,"replacement":"\t"}
        ]}"#,
    );
    let out = costar()
        .args(["edit", "--lang", "json"])
        .arg(&src)
        .arg("--script")
        .arg(&script)
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(out.status.success(), "{stdout}{stderr}");
    assert!(stdout.contains("initial: unique"), "{stdout}");
    assert!(stdout.contains("incremental lexing"), "{stdout}");
    assert!(stdout.contains("edit 0:"), "{stdout}");
    assert!(
        stdout.contains("parse skipped: tokens unchanged"),
        "{stdout}"
    );
    assert!(stdout.contains("final: unique"), "{stdout}");
    // The summary (stderr) reports aggregate reuse.
    assert!(stderr.contains("2 edits applied"), "{stderr}");
    assert!(stderr.contains("reuse"), "{stderr}");
    // The edited file on disk is untouched: the session edits in memory.
    assert_eq!(std::fs::read_to_string(&src).expect("read"), "[1, 2, 3]");
    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(script);
}

#[test]
fn edit_json_document_carries_oracle_verdicts() {
    let src = tmp_file("edit-json-src", "{\"k\": [1, 2]}");
    let script = tmp_file(
        "edit-json-script",
        r#"{"edits":[{"start":10,"end":11,"replacement":"true"}]}"#,
    );
    let out = costar()
        .args(["edit", "--lang", "json"])
        .arg(&src)
        .arg("--script")
        .arg(&script)
        .args(["--format=json", "--oracle"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(out.status.success(), "{stdout}{stderr}");
    // One JSON document on stdout; human lines move to stderr.
    let trimmed = stdout.trim();
    assert_eq!(trimmed.lines().count(), 1, "{stdout}");
    assert!(trimmed.starts_with("{\"file\":"), "{stdout}");
    assert!(trimmed.contains("\"incremental\":true"), "{stdout}");
    assert!(trimmed.contains("\"tokens_relexed\":"), "{stdout}");
    assert!(trimmed.contains("\"oracle_ok\":true"), "{stdout}");
    assert!(trimmed.contains("\"outcome\":\"unique\""), "{stdout}");
    assert!(trimmed.ends_with("\"exit\":0}"), "{stdout}");
    assert!(stderr.contains("initial: unique"), "{stderr}");
    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(script);
}

#[test]
fn edit_error_contract_distinguishes_lex_from_bounds() {
    let src = tmp_file("edit-err-src", "[1, 2]");
    // An edit that produces unlexable text: exit 1 (the session survives
    // in-process; here the replay just stops).
    let bad_lex = tmp_file(
        "edit-err-lex",
        r#"{"edits":[{"start":1,"end":2,"replacement":"%"}]}"#,
    );
    let out = costar()
        .args(["edit", "--lang", "json"])
        .arg(&src)
        .arg("--script")
        .arg(&bad_lex)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("edit 0"), "{stderr}");

    // An out-of-bounds range is a malformed script: exit 2.
    let oob = tmp_file(
        "edit-err-oob",
        r#"{"edits":[{"start":90,"end":95,"replacement":"x"}]}"#,
    );
    let out = costar()
        .args(["edit", "--lang", "json"])
        .arg(&src)
        .arg("--script")
        .arg(&oob)
        .args(["--format=json"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // The JSON document still appears, carrying the error and exit code.
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("\"error\":"), "{stdout}");
    assert!(stdout.trim().ends_with("\"exit\":2}"), "{stdout}");

    // A syntactically broken script never reaches the parser: exit 2.
    let broken = tmp_file("edit-err-script", r#"{"edits":[{"start":}]}"#);
    let out = costar()
        .args(["edit", "--lang", "json"])
        .arg(&src)
        .arg("--script")
        .arg(&broken)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    for p in [src, bad_lex, oob, broken] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn edit_python_falls_back_to_full_retokenize() {
    // Python's INDENT/DEDENT synthesis is line-global, so `costar edit`
    // re-tokenizes from scratch per edit and says so.
    let out = costar()
        .args([
            "generate", "--lang", "python", "--size", "40", "--seed", "1",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let py = String::from_utf8(out.stdout).expect("utf8");
    let src = tmp_file("edit-py-src", &py);
    let script = tmp_file(
        "edit-py-script",
        r#"{"edits":[{"start":0,"end":0,"replacement":""}]}"#,
    );
    let out = costar()
        .args(["edit", "--lang", "python"])
        .arg(&src)
        .arg("--script")
        .arg(&script)
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(out.status.success(), "{stdout}{stderr}");
    assert!(stdout.contains("full re-tokenize"), "{stdout}");
    assert!(stdout.contains("reused 0 (0.0%)"), "{stdout}");
    assert!(stdout.contains("final: unique"), "{stdout}");
    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(script);
}

#[test]
fn cost_subcommand_reports_certificate_and_findings() {
    // Human mode: the certified linear bound for a bundled language.
    let out = costar()
        .args(["cost", "--lang", "json"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("certified bound:"), "{stdout}");

    // JSON mode prints the machine-checkable costar-cost-v1 certificate.
    let out = costar()
        .args(["cost", "--lang", "json", "--format=json"])
        .output()
        .expect("spawn");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"schema\":\"costar-cost-v1\""), "{stdout}");
    assert!(stdout.contains("\"linear\":true"), "{stdout}");

    // An impossible steps-per-token threshold turns into an L013 note
    // and lint's findings exit code.
    let out = costar()
        .args(["cost", "--lang", "json", "--max-steps-per-token", "1"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("L013"), "{stdout}");

    // A grammar that cannot load exits 2 (lint's contract).
    let out = costar()
        .args(["cost", "--grammar", "/nonexistent/g.ebnf"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}
