//! Rendering grammars back to readable text (for `check --eliminate-lr`).

use costar::{ParseError, RejectReason};
use costar_grammar::{Grammar, Span, Symbol};

/// Renders a span suffix (" (line L, column C)") when the tokens carried
/// source positions; empty otherwise.
fn loc(span: &Span) -> String {
    if span.has_position() {
        format!(" ({span})")
    } else {
        String::new()
    }
}

/// Renders a rejection with symbol names resolved through the grammar's
/// table (the library's `Display` impls cannot see the table, so they
/// print raw indices), locating the error by source line/column when the
/// input tokens carried positions.
pub fn describe_reject(g: &Grammar, reason: &RejectReason) -> String {
    let t = |term: costar_grammar::Terminal| g.symbols().terminal_name(term).to_owned();
    match reason {
        RejectReason::TokenMismatch {
            at,
            span,
            expected,
            found,
        } => format!(
            "token {at}{}: expected {}, found {}",
            loc(span),
            t(*expected),
            t(*found)
        ),
        RejectReason::UnexpectedEnd { span, expected, .. } => {
            format!(
                "unexpected end of input{}: expected {}",
                loc(span),
                t(*expected)
            )
        }
        RejectReason::TrailingInput { at, span } => {
            format!("trailing input starting at token {at}{}", loc(span))
        }
        RejectReason::NoViableAlternative {
            at,
            span,
            nonterminal,
        } => format!(
            "token {at}{}: no viable alternative for {}",
            loc(span),
            g.symbols().nonterminal_name(*nonterminal)
        ),
    }
}

/// Renders one recovery diagnostic: the rejection (with names and source
/// position), the expected-token set, and what the recovery skipped.
pub fn describe_diagnostic(g: &Grammar, d: &costar::Diagnostic) -> String {
    let mut out = describe_reject(g, &d.reason);
    if !d.expected.is_empty() {
        let names: Vec<&str> = d
            .expected
            .iter()
            .map(|t| g.symbols().terminal_name(*t))
            .collect();
        // The singleton case is already spelled out by describe_reject.
        if d.expected.len() > 1 {
            out.push_str(&format!(" (expected one of: {})", names.join(", ")));
        }
    }
    if d.skipped > 0 {
        out.push_str(&format!(
            "; skipped {} token{}",
            d.skipped,
            if d.skipped == 1 { "" } else { "s" }
        ));
    }
    if d.popped > 0 {
        out.push_str(&format!(
            "; abandoned {} open production{}",
            d.popped,
            if d.popped == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a recovered parse as one machine-readable JSON object for
/// `--recover=json`.
pub fn recovery_report_json(g: &Grammar, r: &costar::RecoveredParse, num_tokens: usize) -> String {
    let outcome = match &r.outcome {
        costar::ParseOutcome::Unique(_) | costar::ParseOutcome::Ambig(_) => "clean",
        costar::ParseOutcome::Reject(_) => "recovered",
        costar::ParseOutcome::Error(_) => "error",
        costar::ParseOutcome::Aborted(_) => "aborted",
    };
    let skipped: usize = r.diagnostics.iter().map(|d| d.skipped).sum();
    let mut out = format!(
        "{{\"outcome\":\"{outcome}\",\"tokens\":{num_tokens},\"errors\":{},\"tokens_skipped\":{skipped},\"diagnostics\":[",
        r.diagnostics.len()
    );
    for (i, d) in r.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (line, col) = if d.span.has_position() {
            (d.span.line.to_string(), d.span.col.to_string())
        } else {
            ("null".to_owned(), "null".to_owned())
        };
        let expected: Vec<String> = d
            .expected
            .iter()
            .map(|t| format!("\"{}\"", json_escape(g.symbols().terminal_name(*t))))
            .collect();
        out.push_str(&format!(
            "{{\"at\":{},\"line\":{line},\"col\":{col},\"message\":\"{}\",\"expected\":[{}],\"skipped\":{},\"popped\":{}}}",
            d.at,
            json_escape(&describe_reject(g, &d.reason)),
            expected.join(","),
            d.skipped,
            d.popped
        ));
    }
    out.push_str("]}");
    out
}

/// Renders a parser error with symbol names resolved.
pub fn describe_error(g: &Grammar, error: &ParseError) -> String {
    match error {
        ParseError::LeftRecursive(x) => format!(
            "grammar nonterminal {} is left-recursive",
            g.symbols().nonterminal_name(*x)
        ),
        other => other.to_string(),
    }
}

/// Renders a grammar as one `lhs : alt | alt ;` block per nonterminal, in
/// the EBNF-ish notation of `costar-ebnf`. Terminal names that are not
/// plain uppercase-leading identifiers are quoted.
pub fn render_grammar(g: &Grammar) -> String {
    let symbols = g.symbols();
    let mut out = String::new();
    for x in symbols.nonterminals() {
        let alts = g.alternatives(x);
        if alts.is_empty() {
            continue;
        }
        let mut line = format!("{} :", symbols.nonterminal_name(x));
        for (i, &pid) in alts.iter().enumerate() {
            if i > 0 {
                line.push_str(" |");
            }
            let rhs = g.production(pid).rhs();
            if rhs.is_empty() {
                line.push_str(" /* empty */");
            }
            for &s in rhs {
                line.push(' ');
                match s {
                    Symbol::Nt(y) => line.push_str(symbols.nonterminal_name(y)),
                    Symbol::T(t) => {
                        let name = symbols.terminal_name(t);
                        if is_token_type_name(name) {
                            line.push_str(name);
                        } else {
                            line.push('\'');
                            for c in name.chars() {
                                if c == '\'' || c == '\\' {
                                    line.push('\\');
                                }
                                line.push(c);
                            }
                            line.push('\'');
                        }
                    }
                }
            }
        }
        line.push_str(" ;\n");
        out.push_str(&line);
    }
    out
}

/// Can this terminal name appear bare in the EBNF notation (uppercase
/// identifier)?
fn is_token_type_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_uppercase())
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::GrammarBuilder;

    #[test]
    fn reject_descriptions_use_names() {
        let mut gb = GrammarBuilder::new();
        gb.rule("stmt", &["If", "Then"]);
        let g = gb.start("stmt").build().unwrap();
        let if_t = g.symbols().lookup_terminal("If").unwrap();
        let then_t = g.symbols().lookup_terminal("Then").unwrap();
        let msg = describe_reject(
            &g,
            &costar::RejectReason::TokenMismatch {
                at: 1,
                span: Span::default(),
                expected: then_t,
                found: if_t,
            },
        );
        assert_eq!(msg, "token 1: expected Then, found If");
        let msg = describe_reject(
            &g,
            &costar::RejectReason::TokenMismatch {
                at: 1,
                span: Span::new(10, 2, 2, 7),
                expected: then_t,
                found: if_t,
            },
        );
        assert_eq!(msg, "token 1 (line 2, column 7): expected Then, found If");
        let stmt = g.symbols().lookup_nonterminal("stmt").unwrap();
        let msg = describe_error(&g, &costar::ParseError::LeftRecursive(stmt));
        assert!(msg.contains("stmt"));
    }

    #[test]
    fn renders_productions_grouped_by_lhs() {
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["Num", "s"]);
        gb.rule("s", &[]);
        let g = gb.start("s").build().unwrap();
        let text = render_grammar(&g);
        assert_eq!(text, "s : Num s | /* empty */ ;\n");
    }

    #[test]
    fn quotes_punctuation_terminals() {
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["{", "}", "don't"]);
        let g = gb.start("s").build().unwrap();
        let text = render_grammar(&g);
        assert!(text.contains("'{' '}'"));
        assert!(text.contains(r"'don\'t'"));
    }

    #[test]
    fn rewritten_grammar_renders() {
        let mut gb = GrammarBuilder::new();
        gb.rule("e", &["e", "Plus", "Num"]);
        gb.rule("e", &["Num"]);
        let g = gb.start("e").build().unwrap();
        let r = costar_grammar::transform::eliminate_left_recursion(&g).unwrap();
        let text = render_grammar(&r);
        assert!(text.contains("e :"));
        assert!(text.contains("__lr"));
    }
}
