//! Rendering grammars back to readable text (for `check --eliminate-lr`).

use costar::{ParseError, RejectReason};
use costar_grammar::{Grammar, Symbol};

/// Renders a rejection with symbol names resolved through the grammar's
/// table (the library's `Display` impls cannot see the table, so they
/// print raw indices).
pub fn describe_reject(g: &Grammar, reason: &RejectReason) -> String {
    let t = |term: costar_grammar::Terminal| g.symbols().terminal_name(term).to_owned();
    match reason {
        RejectReason::TokenMismatch {
            at,
            expected,
            found,
        } => format!("token {at}: expected {}, found {}", t(*expected), t(*found)),
        RejectReason::UnexpectedEnd { expected } => {
            format!("unexpected end of input: expected {}", t(*expected))
        }
        RejectReason::TrailingInput { at } => {
            format!("trailing input starting at token {at}")
        }
        RejectReason::NoViableAlternative { at, nonterminal } => format!(
            "token {at}: no viable alternative for {}",
            g.symbols().nonterminal_name(*nonterminal)
        ),
    }
}

/// Renders a parser error with symbol names resolved.
pub fn describe_error(g: &Grammar, error: &ParseError) -> String {
    match error {
        ParseError::LeftRecursive(x) => format!(
            "grammar nonterminal {} is left-recursive",
            g.symbols().nonterminal_name(*x)
        ),
        other => other.to_string(),
    }
}

/// Renders a grammar as one `lhs : alt | alt ;` block per nonterminal, in
/// the EBNF-ish notation of `costar-ebnf`. Terminal names that are not
/// plain uppercase-leading identifiers are quoted.
pub fn render_grammar(g: &Grammar) -> String {
    let symbols = g.symbols();
    let mut out = String::new();
    for x in symbols.nonterminals() {
        let alts = g.alternatives(x);
        if alts.is_empty() {
            continue;
        }
        let mut line = format!("{} :", symbols.nonterminal_name(x));
        for (i, &pid) in alts.iter().enumerate() {
            if i > 0 {
                line.push_str(" |");
            }
            let rhs = g.production(pid).rhs();
            if rhs.is_empty() {
                line.push_str(" /* empty */");
            }
            for &s in rhs {
                line.push(' ');
                match s {
                    Symbol::Nt(y) => line.push_str(symbols.nonterminal_name(y)),
                    Symbol::T(t) => {
                        let name = symbols.terminal_name(t);
                        if is_token_type_name(name) {
                            line.push_str(name);
                        } else {
                            line.push('\'');
                            for c in name.chars() {
                                if c == '\'' || c == '\\' {
                                    line.push('\\');
                                }
                                line.push(c);
                            }
                            line.push('\'');
                        }
                    }
                }
            }
        }
        line.push_str(" ;\n");
        out.push_str(&line);
    }
    out
}

/// Can this terminal name appear bare in the EBNF notation (uppercase
/// identifier)?
fn is_token_type_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_uppercase())
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::GrammarBuilder;

    #[test]
    fn reject_descriptions_use_names() {
        let mut gb = GrammarBuilder::new();
        gb.rule("stmt", &["If", "Then"]);
        let g = gb.start("stmt").build().unwrap();
        let if_t = g.symbols().lookup_terminal("If").unwrap();
        let then_t = g.symbols().lookup_terminal("Then").unwrap();
        let msg = describe_reject(
            &g,
            &costar::RejectReason::TokenMismatch {
                at: 1,
                expected: then_t,
                found: if_t,
            },
        );
        assert_eq!(msg, "token 1: expected Then, found If");
        let stmt = g.symbols().lookup_nonterminal("stmt").unwrap();
        let msg = describe_error(&g, &costar::ParseError::LeftRecursive(stmt));
        assert!(msg.contains("stmt"));
    }

    #[test]
    fn renders_productions_grouped_by_lhs() {
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["Num", "s"]);
        gb.rule("s", &[]);
        let g = gb.start("s").build().unwrap();
        let text = render_grammar(&g);
        assert_eq!(text, "s : Num s | /* empty */ ;\n");
    }

    #[test]
    fn quotes_punctuation_terminals() {
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["{", "}", "don't"]);
        let g = gb.start("s").build().unwrap();
        let text = render_grammar(&g);
        assert!(text.contains("'{' '}'"));
        assert!(text.contains(r"'don\'t'"));
    }

    #[test]
    fn rewritten_grammar_renders() {
        let mut gb = GrammarBuilder::new();
        gb.rule("e", &["e", "Plus", "Num"]);
        gb.rule("e", &["Num"]);
        let g = gb.start("e").build().unwrap();
        let r = costar_grammar::transform::eliminate_left_recursion(&g).unwrap();
        let text = render_grammar(&r);
        assert!(text.contains("e :"));
        assert!(text.contains("__lr"));
    }
}
