//! `costar` — command-line front end for the CoStar ALL(*) parser.
//!
//! ```text
//! costar parse    (--lang json|xml|dot|python FILE) | (--grammar G.ebnf --tokens "a b c")
//!                 [--tree] [--stats[=json]] [--time] [--trace-buffer N]
//!                 [--max-steps N|auto] [--deadline-ms N] [--cache-cap N]
//! costar check    (--lang L) | (--grammar G.ebnf)  [--eliminate-lr]
//! costar lint     (--lang L) | (--grammar G.ebnf)  [--format=human|json]
//! costar analyze  (--lang L) | (--grammar G.ebnf)  [--format=human|json]
//! costar audit    (--lang L) | (--grammar G.ebnf)  [--format=human|json] [--max-lookahead K]
//! costar cost     (--lang L) | (--grammar G.ebnf)  [--format=human|json] [--max-steps-per-token N]
//! costar generate --lang L [--size N] [--seed S]
//! costar tokens   --lang L FILE
//! ```
//!
//! `parse` runs the verified-style ALL(*) parser and reports
//! `Unique` / `Ambig` / `Reject` (with position) / `Error`; because the
//! parser is a decision procedure (paper §1), those are the only possible
//! outcomes with an unlimited budget. The budget flags bound the work the
//! parser may do: `--max-steps` caps machine operations plus prediction
//! lookahead, `--deadline-ms` sets a wall-clock limit, and `--cache-cap`
//! bounds the SLL cache (which degrades by LRU eviction, never by abort).
//! A spent step or time budget reports `aborted` — neither accept nor
//! reject — and exits with code 3. `check` runs the static analyses:
//! grammar sizes, the left-recursion decision procedure (paper §8 future
//! work), and an LL(1)-class check via the baseline generator. `lint`
//! goes further: it runs the reachability, productivity, left-recursion,
//! and LL(1)-conflict analyses and reports *structured diagnostics*
//! (codes L001–L008, each with a severity and a concrete witness such as
//! a left-recursion cycle `S ⇒ A ⇒ S`), exiting 0 when clean, 1 when
//! there are findings, and 2 when the grammar cannot be loaded;
//! `--format=json` emits the diagnostics as one machine-readable JSON
//! object on stdout. `analyze` reports the static decision table the
//! parser precompiles: every multi-alternative nonterminal classified as
//! `ll1` / `sll-safe` / `needs-full-allstar` from the static SLL closure
//! graph, with lookahead-map sizes and conflict witnesses; it shares
//! lint's exit-code contract, where a finding is a proven-ambiguous
//! decision pair. `audit` goes one step further than `analyze`: for every
//! decision point it certifies the *exact* minimum SLL lookahead bound k
//! (with a collide witness proving k−1 tokens cannot decide, and a
//! resolve witness spot-checking that k tokens do), flags dead
//! alternatives (L009, error) and shadowed alternatives (L010, warning),
//! and — with `--max-lookahead K` — notes decisions whose certified bound
//! exceeds K (L011); `--format=json` prints the machine-checkable
//! `costar-cert-v1` certificate, byte-identical to the one embedded in
//! the on-disk grammar-analysis cache and replayed at load time. `cost`
//! reports the static cost certificate derived from the termination
//! measure: per-grammar constants `(a, b)` such that any accepting or
//! rejecting parse of `n` tokens consumes at most `a·n + b` metered
//! steps (prediction included). It warns (L012) when an
//! unbounded-lookahead decision is reachable from a token-free cycle —
//! the superlinear-prediction risk — and, with `--max-steps-per-token
//! N`, notes (L013) a certified per-token cost above N; `--format=json`
//! prints the `costar-cost-v1` certificate embedded in (and replayed
//! from) the grammar cache. `--max-steps auto` turns the certificate
//! into fuel: each input parses under a budget of `a·n + b` steps for
//! its own token count `n`, so an abort under auto fuel is evidence of a
//! parser or certificate bug, never of a large input.
//!
//! Observability: `--stats` prints a human-readable metrics summary on
//! stderr (so it composes with `--tree` output on stdout); `--stats=json`
//! prints the full [`costar::ParseMetrics`] object as one JSON line on
//! stdout and moves the human verdict line to stderr, so stdout is
//! machine-readable. `--trace-buffer N` retains the last N parse events
//! in a ring buffer and dumps them to stderr whenever the parse does not
//! accept — a bounded post-mortem of what the machine was doing.

use costar::{
    BatchItemResult, BatchParser, Budget, Edit, EditError, MetricsObserver, ParseOutcome, Parser,
    TraceObserver,
};
use costar_baselines::Ll1Parser;
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::transform::eliminate_left_recursion;
use costar_grammar::{Grammar, Token};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

mod args;
mod edit_script;
mod render;

use args::{Args, Command, GrammarSource, LintFormat, MaxSteps, RecoverMode, StatsMode};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<ExitCode, String> {
    match args.command {
        Command::Parse {
            source,
            inputs,
            tree,
            stats,
            time,
            trace_buffer,
            max_steps,
            deadline_ms,
            cache_cap,
            recover,
            max_recoveries,
            no_grammar_cache,
            jobs,
            warm_cache,
        } => {
            let mut budget = Budget::unlimited();
            let mut auto_steps = false;
            match max_steps {
                Some(MaxSteps::Fixed(n)) => budget = budget.with_max_steps(n),
                Some(MaxSteps::Auto) => auto_steps = true,
                None => {}
            }
            if let Some(ms) = deadline_ms {
                budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            }
            if let Some(n) = cache_cap {
                budget = budget.with_max_cache_entries(n);
            }
            if let Some(n) = max_recoveries {
                budget = budget.with_max_recoveries(n);
            }
            cmd_parse(
                source,
                inputs,
                budget,
                ParseOpts {
                    tree,
                    stats,
                    time,
                    trace_buffer,
                    recover,
                    no_grammar_cache,
                    jobs,
                    warm_cache,
                    auto_steps,
                },
            )
        }
        Command::Check {
            source,
            eliminate_lr,
        } => cmd_check(source, eliminate_lr),
        Command::Lint { source, format } => Ok(cmd_lint(source, format)),
        Command::Analyze { source, format } => Ok(cmd_analyze(source, format)),
        Command::Audit {
            source,
            format,
            max_lookahead,
        } => Ok(cmd_audit(source, format, max_lookahead)),
        Command::Cost {
            source,
            format,
            max_steps_per_token,
        } => Ok(cmd_cost(source, format, max_steps_per_token)),
        Command::Generate { lang, size, seed } => {
            let (_, generate) = args::find_language(&lang)?;
            print!("{}", generate(seed, size));
            Ok(ExitCode::SUCCESS)
        }
        Command::Edit {
            lang,
            file,
            script,
            format,
            oracle,
        } => cmd_edit(&lang, &file, &script, format, oracle),
        Command::Tokens { lang, file } => {
            let (language, _) = args::find_language(&lang)?;
            let src = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let tokens = language.tokenize(&src).map_err(|e| e.to_string())?;
            for t in &tokens {
                println!(
                    "{}\t{:?}\t@{}",
                    language.grammar().symbols().terminal_name(t.terminal()),
                    t.lexeme(),
                    t.offset()
                );
            }
            eprintln!("{} tokens", tokens.len());
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// Loads a grammar and every input word from the parse-command sources.
/// Words and display names are index-aligned. The last element is the
/// default grammar-cache directory: next to the grammar file for
/// `--grammar`, none for built-in languages (whose analyses are cheap
/// and have no natural on-disk home).
#[allow(clippy::type_complexity)]
fn load_many(
    source: GrammarSource,
    inputs: Vec<String>,
) -> Result<(Grammar, Vec<Vec<Token>>, Vec<String>, Option<PathBuf>), String> {
    match source {
        GrammarSource::Lang(name) => {
            let (language, _) = args::find_language(&name)?;
            if inputs.is_empty() {
                return Err("parse --lang needs at least one input FILE".into());
            }
            let mut words = Vec::with_capacity(inputs.len());
            for file in &inputs {
                let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
                words.push(
                    language
                        .tokenize(&src)
                        .map_err(|e| format!("{file}: {e}"))?,
                );
            }
            Ok((language.grammar().clone(), words, inputs, None))
        }
        GrammarSource::Ebnf(path) => {
            let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let (grammar, _) = costar_ebnf::compile(&src)?;
            let names = inputs
                .into_iter()
                .next()
                .ok_or("parse --grammar needs --tokens \"name name ...\"")?;
            let mut tokens = Vec::new();
            for name in names.split_whitespace() {
                let t = grammar
                    .symbols()
                    .lookup_terminal(name)
                    .ok_or_else(|| format!("unknown terminal {name:?}"))?;
                tokens.push(Token::new(t, name));
            }
            let cache_dir = PathBuf::from(&path)
                .parent()
                .map(|d| d.join(".costar-cache"));
            Ok((
                grammar,
                vec![tokens],
                vec!["<tokens>".to_owned()],
                cache_dir,
            ))
        }
    }
}

/// Obtains the grammar analysis, consulting the on-disk cache unless
/// `no_cache`. The cache is keyed by a content fingerprint of the
/// grammar, so a stale or corrupted entry is detected (the decoder
/// re-validates every index) and silently recomputed — the cache can slow
/// us down at worst, never change behavior. `COSTAR_CACHE_DIR` overrides
/// the default location; cache write failures are non-fatal.
fn load_analysis(
    grammar: &Grammar,
    default_dir: Option<PathBuf>,
    no_cache: bool,
) -> GrammarAnalysis {
    let dir = std::env::var_os("COSTAR_CACHE_DIR")
        .map(PathBuf::from)
        .or(default_dir);
    let path = dir.map(|d| {
        let fp = costar_grammar::analysis::grammar_fingerprint(grammar);
        (d.join(format!("{fp:016x}.json")), d)
    });
    if !no_cache {
        if let Some((file, _)) = &path {
            if let Ok(text) = std::fs::read_to_string(file) {
                if let Some(analysis) = costar_grammar::analysis::from_cache_json(grammar, &text) {
                    return analysis;
                }
                // Corrupt or stale: fall through and overwrite below.
            }
        }
    }
    let analysis = GrammarAnalysis::compute(grammar);
    if !no_cache {
        if let Some((file, _)) = &path {
            let json = costar_grammar::analysis::to_cache_json(grammar, &analysis);
            // Atomic write with a per-process-per-write staging name:
            // readers never observe a half-written document, and
            // concurrent `costar` invocations can't clobber each other's
            // staging file mid-write.
            let _ = costar_grammar::analysis::write_cache_atomic(file, &json);
        }
    }
    analysis
}

/// Output and recovery flags for `cmd_parse`, bundled so the budget and
/// grammar source stay visible in the signature.
struct ParseOpts {
    tree: bool,
    stats: StatsMode,
    time: bool,
    trace_buffer: Option<usize>,
    recover: RecoverMode,
    no_grammar_cache: bool,
    jobs: Option<usize>,
    warm_cache: bool,
    auto_steps: bool,
}

fn cmd_parse(
    source: GrammarSource,
    inputs: Vec<String>,
    mut budget: Budget,
    opts: ParseOpts,
) -> Result<ExitCode, String> {
    let (grammar, mut words, names, cache_dir) = load_many(source, inputs)?;
    let analysis = load_analysis(&grammar, cache_dir, opts.no_grammar_cache);
    if words.len() > 1 {
        return cmd_parse_batch(grammar, analysis, &names, &words, budget, &opts);
    }
    let tokens = words.pop().unwrap_or_default();
    if opts.auto_steps {
        budget = budget.with_max_steps(analysis.cost.bound_for(tokens.len() as u64));
    }
    let ParseOpts {
        tree,
        stats,
        time,
        trace_buffer,
        recover,
        ..
    } = opts;
    let mut parser = Parser::with_analysis(grammar, analysis);
    parser.set_budget(budget);
    if !parser.grammar_is_safe() {
        eprintln!(
            "warning: grammar is left-recursive; the correctness theorems do not apply \
             (try `costar check --eliminate-lr`)"
        );
    }
    if recover != RecoverMode::Off {
        return cmd_parse_recovering(parser, &tokens, tree, stats, time, trace_buffer, recover);
    }

    // The default path stays on the monomorphized no-op observer; metrics
    // and tracing are only wired in when a flag asks for them.
    let observing = stats != StatsMode::Off || trace_buffer.is_some();
    let mut metrics = None;
    let mut trace = None;
    let start = Instant::now();
    let outcome = if observing {
        let mut obs = (
            MetricsObserver::new(),
            TraceObserver::new(trace_buffer.unwrap_or(0)),
        );
        let outcome = parser.parse_observed(&tokens, &mut obs);
        let (mobs, tobs) = obs;
        metrics = Some(mobs.into_metrics());
        trace = Some(tobs);
        outcome
    } else {
        parser.parse(&tokens)
    };
    let elapsed = start.elapsed();
    if let Some(m) = metrics.as_mut() {
        m.tokens = tokens.len();
        m.total_nanos = elapsed.as_nanos() as u64;
    }

    // With `--stats=json` stdout carries the JSON report, so the human
    // verdict line moves to stderr.
    let json_mode = stats == StatsMode::Json;
    let verdict = |line: String| {
        if json_mode {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    let code = match &outcome {
        ParseOutcome::Unique(t) => {
            verdict(format!(
                "unique parse ({} tokens, {} tree nodes)",
                tokens.len(),
                t.size()
            ));
            if tree {
                print!("{}", t.render(parser.grammar().symbols()));
            }
            ExitCode::SUCCESS
        }
        ParseOutcome::Ambig(t) => {
            verdict(format!(
                "AMBIGUOUS input ({} tokens); one of its parse trees has {} nodes",
                tokens.len(),
                t.size()
            ));
            if tree {
                print!("{}", t.render(parser.grammar().symbols()));
            }
            ExitCode::SUCCESS
        }
        ParseOutcome::Reject(reason) => {
            verdict(format!(
                "reject: {}",
                render::describe_reject(parser.grammar(), reason)
            ));
            ExitCode::FAILURE
        }
        ParseOutcome::Error(e) => {
            verdict(format!(
                "error: {}",
                render::describe_error(parser.grammar(), e)
            ));
            ExitCode::FAILURE
        }
        ParseOutcome::Aborted(r) => {
            verdict(format!(
                "aborted: {r} — input neither accepted nor rejected \
                 (raise --max-steps/--deadline-ms to resolve it)"
            ));
            ExitCode::from(3)
        }
    };

    // Post-mortem trace: only when a buffer was requested and the parse
    // did not accept.
    if trace_buffer.is_some()
        && !matches!(outcome, ParseOutcome::Unique(_) | ParseOutcome::Ambig(_))
    {
        if let Some(t) = &trace {
            eprintln!("trace: last {} of {} events:", t.len(), t.total_events());
            eprint!("{}", t.dump(Some(parser.grammar().symbols())));
        }
    }

    match (stats, metrics.as_ref()) {
        (StatsMode::Human, Some(m)) => {
            let s = parser.prediction_stats();
            eprintln!(
                "decisions: {} (+{} single-alt), static fast path {}, SLL-resolved {}, \
                 failovers {}, lookahead mean {:.2} max {}",
                s.predictions,
                s.single_alternative,
                s.static_fast_path,
                s.sll_resolved,
                s.failovers,
                s.mean_lookahead(),
                s.max_lookahead
            );
            eprintln!(
                "steps: {} machine + {} prediction = {} metered \
                 ({} pushes, {} consumes, {} returns, max stack {})",
                m.machine_steps,
                m.prediction_steps,
                m.meter_steps,
                m.pushes,
                m.consumes,
                m.returns,
                m.max_stack_height
            );
            eprintln!(
                "cache: {} lookups, {} hits, {} misses ({:.1}% hit rate), {} evictions",
                m.cache_lookups,
                m.cache_hits,
                m.cache_misses,
                m.cache_hit_rate() * 100.0,
                m.cache_evictions
            );
        }
        (StatsMode::Json, Some(m)) => println!("{}", m.to_json()),
        _ => {}
    }
    if time {
        let secs = elapsed.as_secs_f64();
        eprintln!(
            "parse time: {:.3} ms ({:.0} tokens/sec)",
            secs * 1e3,
            tokens.len() as f64 / secs.max(1e-12)
        );
    }
    Ok(code)
}

/// The `--recover` arm of `costar parse`: parse past syntax errors,
/// report every diagnostic, and exit 4 when the input parsed with errors.
#[allow(clippy::too_many_arguments)]
fn cmd_parse_recovering(
    mut parser: Parser,
    tokens: &[Token],
    tree: bool,
    stats: StatsMode,
    time: bool,
    trace_buffer: Option<usize>,
    mode: RecoverMode,
) -> Result<ExitCode, String> {
    let observing = stats != StatsMode::Off || trace_buffer.is_some();
    let mut metrics = None;
    let mut trace = None;
    let start = Instant::now();
    let recovered = if observing {
        let mut obs = (
            MetricsObserver::new(),
            TraceObserver::new(trace_buffer.unwrap_or(0)),
        );
        let r = parser.parse_recovering_observed(tokens, &mut obs);
        let (mobs, tobs) = obs;
        metrics = Some(mobs.into_metrics());
        trace = Some(tobs);
        r
    } else {
        parser.parse_recovering(tokens)
    };
    let elapsed = start.elapsed();
    if let Some(m) = metrics.as_mut() {
        m.tokens = tokens.len();
        m.total_nanos = elapsed.as_nanos() as u64;
    }

    // Human-readable diagnostics always go to stderr, one line per
    // recovered error, so they compose with --tree / JSON on stdout.
    for d in &recovered.diagnostics {
        eprintln!(
            "error: {}",
            render::describe_diagnostic(parser.grammar(), d)
        );
    }
    // JSON reporting is deferred to the end of the function so that
    // `--recover=json` and `--stats=json` can merge into one top-level
    // document — two independent prints would interleave into invalid
    // JSON on stdout.
    let recovery_json = (mode == RecoverMode::Json)
        .then(|| render::recovery_report_json(parser.grammar(), &recovered, tokens.len()));

    let errors = recovered.diagnostics.len();
    let code = match &recovered.outcome {
        ParseOutcome::Unique(_) | ParseOutcome::Ambig(_) => {
            eprintln!(
                "parsed cleanly ({} tokens, no recovery needed)",
                tokens.len()
            );
            ExitCode::SUCCESS
        }
        ParseOutcome::Reject(_) => {
            let skipped: usize = recovered.diagnostics.iter().map(|d| d.skipped).sum();
            eprintln!(
                "parsed with {errors} syntax error{} ({} tokens, {skipped} skipped)",
                if errors == 1 { "" } else { "s" },
                tokens.len()
            );
            ExitCode::from(4)
        }
        ParseOutcome::Error(e) => {
            eprintln!("error: {}", render::describe_error(parser.grammar(), e));
            ExitCode::FAILURE
        }
        ParseOutcome::Aborted(r) => {
            eprintln!("aborted: {r} — recovery gave up before resolving the input");
            ExitCode::from(3)
        }
    };
    if tree {
        if let Some(t) = recovered.tree() {
            print!("{}", t.render(parser.grammar().symbols()));
        }
    }

    if trace_buffer.is_some() && !recovered.is_clean() {
        if let Some(t) = &trace {
            eprintln!("trace: last {} of {} events:", t.len(), t.total_events());
            eprint!("{}", t.dump(Some(parser.grammar().symbols())));
        }
    }
    if let (StatsMode::Human, Some(m)) = (stats, metrics.as_ref()) {
        eprintln!(
            "recovery: {} recoveries, {} tokens skipped; steps: {} machine + {} prediction",
            m.recoveries, m.tokens_skipped, m.machine_steps, m.prediction_steps
        );
    }
    let stats_json = match (stats, metrics.as_ref()) {
        (StatsMode::Json, Some(m)) => Some(m.to_json()),
        _ => None,
    };
    // One JSON document per invocation, whatever combination was asked
    // for: `{"stats":...,"recovery":...}` when both, the bare object
    // when only one (preserving each flag's standalone output shape).
    match (stats_json, recovery_json) {
        (Some(s), Some(r)) => println!("{{\"stats\":{s},\"recovery\":{r}}}"),
        (Some(s), None) => println!("{s}"),
        (None, Some(r)) => println!("{r}"),
        (None, None) => {}
    }
    if time {
        let secs = elapsed.as_secs_f64();
        eprintln!(
            "parse time: {:.3} ms ({:.0} tokens/sec)",
            secs * 1e3,
            tokens.len() as f64 / secs.max(1e-12)
        );
    }
    Ok(code)
}

/// The multi-file arm of `costar parse`: every FILE parses as one batch
/// over a shared grammar context ([`BatchParser`]), in parallel across
/// `--jobs` workers. Per-file verdicts print in input order regardless
/// of completion order; per-input outcomes are byte-identical to a
/// sequential run at any worker count. JSON reporting (either of
/// `--stats=json` / `--recover=json`) emits exactly one top-level
/// document. The exit code folds to the most severe per-file code
/// (severity `0 < 4 < 1 < 3`).
fn cmd_parse_batch(
    grammar: Grammar,
    analysis: GrammarAnalysis,
    names: &[String],
    words: &[Vec<Token>],
    budget: Budget,
    opts: &ParseOpts,
) -> Result<ExitCode, String> {
    if opts.trace_buffer.is_some() {
        return Err("--trace-buffer applies to single-file parses only".into());
    }
    let batch = BatchParser::with_shared(Arc::new(grammar), Arc::new(analysis))
        .with_budget(budget)
        .with_jobs(opts.jobs.unwrap_or(0))
        .with_warm_cache(opts.warm_cache)
        .with_auto_steps(opts.auto_steps);
    if !batch.analysis().left_recursion.is_grammar_safe() {
        eprintln!(
            "warning: grammar is left-recursive; the correctness theorems do not apply \
             (try `costar check --eliminate-lr`)"
        );
    }
    let recovering = opts.recover != RecoverMode::Off;
    let start = Instant::now();
    let result = if recovering {
        batch.parse_many_recovering(words)
    } else {
        batch.parse_many(words)
    };
    let elapsed = start.elapsed();

    // With JSON on stdout, human verdict lines move to stderr (same
    // contract as single-file `--stats=json`).
    let json_mode = opts.stats == StatsMode::Json || opts.recover == RecoverMode::Json;
    let verdict = |line: String| {
        if json_mode {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    let g = batch.grammar();
    for (i, item) in result.items.iter().enumerate() {
        let name = &names[i];
        if let BatchItemResult::Recovered(r) = &item.result {
            for d in &r.diagnostics {
                eprintln!("{name}: error: {}", render::describe_diagnostic(g, d));
            }
        }
        let line = match item.outcome() {
            ParseOutcome::Unique(t) => format!(
                "{name}: unique parse ({} tokens, {} tree nodes)",
                words[i].len(),
                t.size()
            ),
            ParseOutcome::Ambig(t) => format!(
                "{name}: AMBIGUOUS input ({} tokens); one of its parse trees has {} nodes",
                words[i].len(),
                t.size()
            ),
            ParseOutcome::Reject(reason) => match &item.result {
                BatchItemResult::Recovered(r) => {
                    let errors = r.diagnostics.len();
                    let skipped: usize = r.diagnostics.iter().map(|d| d.skipped).sum();
                    format!(
                        "{name}: parsed with {errors} syntax error{} ({} tokens, {skipped} skipped)",
                        if errors == 1 { "" } else { "s" },
                        words[i].len()
                    )
                }
                BatchItemResult::Plain(_) => {
                    format!("{name}: reject: {}", render::describe_reject(g, reason))
                }
            },
            ParseOutcome::Error(e) => {
                format!("{name}: error: {}", render::describe_error(g, e))
            }
            ParseOutcome::Aborted(r) => format!(
                "{name}: aborted: {r} — input neither accepted nor rejected \
                 (raise --max-steps/--deadline-ms to resolve it)"
            ),
        };
        verdict(line);
        if opts.tree {
            if let Some(t) = item.tree() {
                print!("{}", t.render(g.symbols()));
            }
        }
    }

    if json_mode {
        let mut doc = String::from("{\"files\":[");
        for (i, item) in result.items.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            let outcome = match (&item.result, item.outcome()) {
                (_, ParseOutcome::Unique(_)) => "unique",
                (_, ParseOutcome::Ambig(_)) => "ambiguous",
                (BatchItemResult::Recovered(_), ParseOutcome::Reject(_)) => "recovered",
                (BatchItemResult::Plain(_), ParseOutcome::Reject(_)) => "reject",
                (_, ParseOutcome::Error(_)) => "error",
                (_, ParseOutcome::Aborted(_)) => "aborted",
            };
            doc.push_str(&format!(
                "{{\"file\":\"{}\",\"tokens\":{},\"outcome\":\"{outcome}\",\"exit\":{}",
                render::json_escape(&names[i]),
                words[i].len(),
                item.exit_code()
            ));
            if opts.stats == StatsMode::Json {
                doc.push_str(&format!(",\"stats\":{}", item.metrics.to_json()));
            }
            if opts.recover == RecoverMode::Json {
                if let BatchItemResult::Recovered(r) = &item.result {
                    doc.push_str(&format!(
                        ",\"recovery\":{}",
                        render::recovery_report_json(g, r, words[i].len())
                    ));
                }
            }
            doc.push('}');
        }
        doc.push_str(&format!(
            "],\"jobs\":{},\"exit\":{}",
            result.jobs,
            result.exit_code()
        ));
        if opts.stats == StatsMode::Json {
            doc.push_str(&format!(",\"stats\":{}", result.metrics.to_json()));
        }
        doc.push('}');
        println!("{doc}");
    }

    if opts.stats == StatsMode::Human {
        let m = &result.metrics;
        eprintln!(
            "batch: {} files on {} worker{}, {} tokens total",
            result.items.len(),
            result.jobs,
            if result.jobs == 1 { "" } else { "s" },
            m.tokens
        );
        eprintln!(
            "steps: {} machine + {} prediction = {} metered; \
             cache: {} lookups, {} hits, {} misses ({:.1}% hit rate), {} evictions",
            m.machine_steps,
            m.prediction_steps,
            m.meter_steps,
            m.cache_lookups,
            m.cache_hits,
            m.cache_misses,
            m.cache_hit_rate() * 100.0,
            m.cache_evictions
        );
        if recovering {
            eprintln!(
                "recovery: {} recoveries, {} tokens skipped",
                m.recoveries, m.tokens_skipped
            );
        }
    }
    if opts.time {
        let secs = elapsed.as_secs_f64();
        eprintln!(
            "batch time: {:.3} ms ({:.0} tokens/sec across {} worker{})",
            secs * 1e3,
            result.metrics.tokens as f64 / secs.max(1e-12),
            result.jobs,
            if result.jobs == 1 { "" } else { "s" }
        );
    }
    let code = u8::try_from(result.exit_code()).unwrap_or(1);
    Ok(ExitCode::from(code))
}

/// One applied edit's report row, shared by the human and JSON renderers
/// of `costar edit`.
struct EditRow {
    start: usize,
    end: usize,
    replacement_len: usize,
    tokens_relexed: usize,
    tokens_reused: usize,
    unchanged: bool,
    reused_parse: bool,
    relex_micros: u64,
    edit_micros: u64,
    outcome: &'static str,
    oracle_ok: Option<bool>,
}

impl EditRow {
    fn human(&self, i: usize, tokens: usize) -> String {
        let total = self.tokens_relexed + self.tokens_reused;
        let frac = if total == 0 {
            100.0
        } else {
            self.tokens_reused as f64 * 100.0 / total as f64
        };
        format!(
            "edit {i}: {}..{} +{}B | relexed {}, reused {} ({frac:.1}%) | \
             {} µs lex, {} µs total | {} ({tokens} tokens){}",
            self.start,
            self.end,
            self.replacement_len,
            self.tokens_relexed,
            self.tokens_reused,
            self.relex_micros,
            self.edit_micros,
            self.outcome,
            if self.reused_parse {
                " [parse skipped: tokens unchanged]"
            } else {
                ""
            },
        )
    }

    fn to_json(&self, i: usize) -> String {
        let mut s = format!(
            "{{\"index\":{i},\"start\":{},\"end\":{},\"replacement_len\":{},\
             \"tokens_relexed\":{},\"tokens_reused\":{},\"unchanged\":{},\
             \"reused_parse\":{},\"relex_micros\":{},\"edit_micros\":{},\
             \"outcome\":\"{}\"",
            self.start,
            self.end,
            self.replacement_len,
            self.tokens_relexed,
            self.tokens_reused,
            self.unchanged,
            self.reused_parse,
            self.relex_micros,
            self.edit_micros,
            self.outcome,
        );
        if let Some(ok) = self.oracle_ok {
            s.push_str(&format!(",\"oracle_ok\":{ok}"));
        }
        s.push('}');
        s
    }
}

fn outcome_word(o: &ParseOutcome) -> &'static str {
    match o {
        ParseOutcome::Unique(_) => "unique",
        ParseOutcome::Ambig(_) => "ambiguous",
        ParseOutcome::Reject(_) => "reject",
        ParseOutcome::Error(_) => "error",
        ParseOutcome::Aborted(_) => "aborted",
    }
}

fn outcome_exit(o: &ParseOutcome) -> u8 {
    match o {
        ParseOutcome::Unique(_) | ParseOutcome::Ambig(_) => 0,
        ParseOutcome::Reject(_) | ParseOutcome::Error(_) => 1,
        ParseOutcome::Aborted(_) => 3,
    }
}

/// `costar edit`: replay a JSON edit script against one source file,
/// re-lexing incrementally and re-parsing only when the token vector
/// changed, with per-edit latency reporting.
///
/// Exit codes: 0 = final source accepted, 1 = final source rejected /
/// an edit produced unlexable text / `--oracle` found a splice
/// divergence, 2 = the file, script, or an edit range is malformed,
/// 3 = the final parse aborted on budget. Errors mid-script stop the
/// replay; the JSON document still carries the rows applied so far plus
/// an `"error"` field.
fn cmd_edit(
    lang: &str,
    file: &str,
    script: &str,
    format: LintFormat,
    oracle: bool,
) -> Result<ExitCode, String> {
    let json_mode = format == LintFormat::Json;
    let (language, _) = match args::find_language(lang) {
        Ok(l) => l,
        Err(msg) => {
            eprintln!("error: {msg}");
            return Ok(ExitCode::from(2));
        }
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    let script_text = match std::fs::read_to_string(script) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {script}: {e}");
            return Ok(ExitCode::from(2));
        }
    };
    let edits = match edit_script::parse(&script_text) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("error: {script}: {msg}");
            return Ok(ExitCode::from(2));
        }
    };
    let analysis = load_analysis(language.grammar(), None, false);
    let mut parser = Parser::with_analysis(language.grammar().clone(), analysis);
    let incremental = language.incremental_lexing();

    // With `--format=json` stdout carries the document; human lines move
    // to stderr (the same contract as `parse --stats=json`).
    let verdict = |line: String| {
        if json_mode {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    let mut rows: Vec<EditRow> = Vec::new();
    let mut error: Option<String> = None;
    let mut exit: u8;
    let final_line: String;

    if incremental {
        let mut session = match parser.parse_session(language.lexer(), &source) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {file}: {e}");
                return Ok(ExitCode::FAILURE);
            }
        };
        exit = outcome_exit(session.outcome());
        verdict(format!(
            "initial: {} ({} tokens, incremental lexing)",
            outcome_word(session.outcome()),
            session.tokens().len()
        ));
        for (i, e) in edits.iter().enumerate() {
            let edit = Edit::new(e.start..e.end, e.replacement.clone());
            match parser.reparse_after_edit_with_metrics(&mut session, &edit) {
                Ok((reparse, metrics)) => {
                    let oracle_ok = if oracle {
                        Some(
                            language.tokenize(session.source()).ok().as_deref()
                                == Some(session.tokens()),
                        )
                    } else {
                        None
                    };
                    let row = EditRow {
                        start: e.start,
                        end: e.end,
                        replacement_len: e.replacement.len(),
                        tokens_relexed: reparse.splice.tokens_relexed,
                        tokens_reused: reparse.splice.tokens_reused,
                        unchanged: reparse.splice.unchanged,
                        reused_parse: reparse.reused,
                        relex_micros: reparse.splice.relex_micros,
                        edit_micros: metrics.total_nanos / 1_000,
                        outcome: outcome_word(session.outcome()),
                        oracle_ok,
                    };
                    exit = outcome_exit(session.outcome());
                    if row.oracle_ok == Some(false) {
                        eprintln!(
                            "error: edit {i}: oracle mismatch — spliced tokens \
                             differ from a from-scratch lex"
                        );
                        exit = 1;
                    }
                    if !json_mode {
                        println!("{}", row.human(i, session.tokens().len()));
                    }
                    rows.push(row);
                }
                Err(err) => {
                    let code = match &err {
                        EditError::Lex(_) => 1,
                        _ => 2,
                    };
                    eprintln!("error: edit {i}: {err}");
                    error = Some(format!("edit {i}: {err}"));
                    exit = code;
                    break;
                }
            }
        }
        final_line = format!(
            "final: {} ({} tokens)",
            outcome_word(session.outcome()),
            session.tokens().len()
        );
    } else {
        // Full re-tokenize fallback: the language's token word is not a
        // pure DFA pass over the text (Python's INDENT/DEDENT synthesis
        // is line-global), so every edit re-lexes and re-parses from
        // scratch. Rows report zero reuse.
        let mut src = source;
        let mut tokens = match language.tokenize(&src) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {file}: {e}");
                return Ok(ExitCode::FAILURE);
            }
        };
        let mut outcome = parser.parse(&tokens);
        exit = outcome_exit(&outcome);
        verdict(format!(
            "initial: {} ({} tokens, full re-tokenize per edit: {} does not lex \
             incrementally)",
            outcome_word(&outcome),
            tokens.len(),
            language.name
        ));
        for (i, e) in edits.iter().enumerate() {
            let edit = Edit::new(e.start..e.end, e.replacement.clone());
            let edit_start = Instant::now();
            src = match edit.apply_to(&src) {
                Ok(s) => s,
                Err(err) => {
                    eprintln!("error: edit {i}: {err}");
                    error = Some(format!("edit {i}: {err}"));
                    exit = 2;
                    break;
                }
            };
            let lex_start = Instant::now();
            tokens = match language.tokenize(&src) {
                Ok(t) => t,
                Err(err) => {
                    eprintln!("error: edit {i}: {err}");
                    error = Some(format!("edit {i}: {err}"));
                    exit = 1;
                    break;
                }
            };
            let relex_micros = lex_start.elapsed().as_micros() as u64;
            outcome = parser.parse(&tokens);
            let row = EditRow {
                start: e.start,
                end: e.end,
                replacement_len: e.replacement.len(),
                tokens_relexed: tokens.len(),
                tokens_reused: 0,
                unchanged: false,
                reused_parse: false,
                relex_micros,
                edit_micros: edit_start.elapsed().as_micros() as u64,
                outcome: outcome_word(&outcome),
                // The tokens ARE a from-scratch lex here; nothing to check.
                oracle_ok: oracle.then_some(true),
            };
            exit = outcome_exit(&outcome);
            if !json_mode {
                println!("{}", row.human(i, tokens.len()));
            }
            rows.push(row);
        }
        final_line = format!(
            "final: {} ({} tokens)",
            outcome_word(&outcome),
            tokens.len()
        );
    }

    verdict(final_line);
    let relexed: usize = rows.iter().map(|r| r.tokens_relexed).sum();
    let reused: usize = rows.iter().map(|r| r.tokens_reused).sum();
    let reuse_pct = if relexed + reused == 0 {
        0.0
    } else {
        reused as f64 * 100.0 / (relexed + reused) as f64
    };
    let skipped = rows.iter().filter(|r| r.reused_parse).count();
    let relex_total: u64 = rows.iter().map(|r| r.relex_micros).sum();
    eprintln!(
        "{} edit{} applied: {relexed} tokens re-lexed, {reused} reused \
         ({reuse_pct:.1}% reuse), {skipped} parse{} skipped, {relex_total} µs re-lexing",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" },
        if skipped == 1 { "" } else { "s" },
    );

    if json_mode {
        let mut doc = format!(
            "{{\"file\":\"{}\",\"lang\":\"{}\",\"incremental\":{incremental},\"edits\":[",
            render::json_escape(file),
            render::json_escape(language.name),
        );
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&r.to_json(i));
        }
        doc.push(']');
        if let Some(e) = &error {
            doc.push_str(&format!(",\"error\":\"{}\"", render::json_escape(e)));
        }
        doc.push_str(&format!(",\"exit\":{exit}}}"));
        println!("{doc}");
    }
    Ok(ExitCode::from(exit))
}

/// `costar lint`: structured grammar diagnostics with witnesses.
///
/// Exit codes are part of the contract (scriptable in CI): 0 = no
/// findings, 1 = at least one finding of any severity, 2 = the grammar
/// could not be loaded or compiled. Never returns `Err` — load failures
/// map to exit 2 so callers can distinguish "bad grammar file" from
/// "grammar has defects".
fn cmd_lint(source: GrammarSource, format: LintFormat) -> ExitCode {
    let grammar = match load_grammar(source) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let analysis = costar_grammar::analysis::GrammarAnalysis::compute(&grammar);
    let diags = costar_grammar::lint::lint_grammar(&grammar, &analysis);
    match format {
        LintFormat::Human => {
            for d in &diags {
                println!("{}", d.render_human(&grammar));
            }
            match costar_grammar::lint::worst_severity(&diags) {
                None => println!("no findings"),
                Some(worst) => eprintln!(
                    "{} finding{} (worst severity: {})",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" },
                    worst.as_str()
                ),
            }
        }
        LintFormat::Json => {
            let items: Vec<String> = diags.iter().map(|d| d.to_json(&grammar)).collect();
            let worst = costar_grammar::lint::worst_severity(&diags)
                .map(|w| format!("\"{}\"", w.as_str()))
                .unwrap_or_else(|| "null".to_owned());
            println!(
                "{{\"findings\":{},\"worst\":{},\"diagnostics\":[{}]}}",
                diags.len(),
                worst,
                items.join(",")
            );
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `costar analyze`: the static decision-point classification table.
///
/// Classifies every multi-alternative nonterminal as `ll1` (dispatchable
/// from a precompiled one-token lookahead map), `sll-safe` (SLL
/// prediction provably never conflicts), or `needs-full-allstar`, from
/// the statically-computed SLL closure graph. Shares `lint`'s exit-code
/// contract: 0 = clean, 1 = findings (here: a proven-ambiguous decision
/// pair, the L007 condition), 2 = the grammar could not be loaded.
fn cmd_analyze(source: GrammarSource, format: LintFormat) -> ExitCode {
    let grammar = match load_grammar(source) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let analysis = costar_grammar::analysis::GrammarAnalysis::compute(&grammar);
    let table = &analysis.decisions;
    let stats = table.stats();
    match format {
        LintFormat::Human => {
            for d in table.iter() {
                let name = grammar.symbols().nonterminal_name(d.nonterminal);
                println!(
                    "{name}: {} ({} alternatives, {} graph states)",
                    d.class.as_str(),
                    d.alternatives,
                    d.graph_states
                );
                if let Some(map) = &d.lookahead {
                    println!("  lookahead map: {} entries", map.entries());
                }
                for c in &d.conflicts {
                    let a = grammar.render_production(c.a);
                    let b = grammar.render_production(c.b);
                    println!("  conflict: `{a}` vs `{b}`");
                    if let Some(w) = &c.ambiguous_word {
                        let word: Vec<&str> = w
                            .iter()
                            .map(|t| grammar.symbols().terminal_name(*t))
                            .collect();
                        if word.is_empty() {
                            println!("    ambiguous: both derive the empty word");
                        } else {
                            println!("    ambiguous: both derive `{}`", word.join(" "));
                        }
                    } else if let Some(p) = &c.distinguishing_prefix {
                        let pfx: Vec<&str> = p
                            .iter()
                            .map(|t| grammar.symbols().terminal_name(*t))
                            .collect();
                        println!("    distinguished after `{}`", pfx.join(" "));
                    }
                }
            }
            eprintln!(
                "{} decision point{}: {} ll1, {} sll-safe, {} needs-full-allstar \
                 ({} ambiguous, {} lookahead entries)",
                stats.decision_points,
                if stats.decision_points == 1 { "" } else { "s" },
                stats.ll1,
                stats.sll_safe,
                stats.needs_full,
                stats.ambiguous,
                stats.lookahead_entries
            );
        }
        LintFormat::Json => println!("{}", table.to_json(&grammar)),
    }
    if stats.ambiguous == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `costar audit`: exact lookahead-bound certification plus
/// dead/shadowed-alternative findings.
///
/// Human output prints one line per decision point with its certified
/// bound k (or `unbounded` — ALL(*)'s regular-lookahead case), the
/// collide/resolve witnesses per alternative pair, and then any
/// L009/L010/L011 diagnostics. `--format=json` prints the
/// `costar-cert-v1` certificate exactly as it is embedded in the on-disk
/// grammar-analysis cache, so the two forms are byte-identical. Exit
/// codes follow lint's contract: 0 = no findings, 1 = findings
/// (L009/L010/L011), 2 = the grammar could not be loaded.
fn cmd_audit(source: GrammarSource, format: LintFormat, max_lookahead: Option<usize>) -> ExitCode {
    let grammar = match load_grammar(source) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let analysis = costar_grammar::analysis::GrammarAnalysis::compute(&grammar);
    let table = &analysis.audit;
    let diags = costar_grammar::lint::audit_findings(&grammar, &analysis, max_lookahead);
    match format {
        LintFormat::Human => {
            let word = |w: &[costar_grammar::Terminal]| -> String {
                if w.is_empty() {
                    "ε".to_owned()
                } else {
                    w.iter()
                        .map(|t| grammar.symbols().terminal_name(*t))
                        .collect::<Vec<_>>()
                        .join(" ")
                }
            };
            for info in table.iter() {
                let name = grammar.symbols().nonterminal_name(info.nonterminal);
                match info.k {
                    Some(k) => println!(
                        "{name}: k = {k} ({} pairs, {} graph states)",
                        info.pairs.len(),
                        info.graph_states
                    ),
                    None => println!(
                        "{name}: k = unbounded ({} pairs, {} graph states)",
                        info.pairs.len(),
                        info.graph_states
                    ),
                }
                for p in &info.pairs {
                    let a = grammar.render_production(p.a);
                    let b = grammar.render_production(p.b);
                    match (p.k, &p.collide) {
                        (Some(k), Some(c)) => {
                            println!("  `{a}` vs `{b}`: k = {k}, collide after `{}`", word(c));
                            if let Some(r) = &p.resolve {
                                println!("    resolved by `{}`", word(r));
                            }
                        }
                        (Some(k), None) => println!("  `{a}` vs `{b}`: k = {k}"),
                        (None, _) => println!("  `{a}` vs `{b}`: unbounded"),
                    }
                }
            }
            for d in &diags {
                println!("{}", d.render_human(&grammar));
            }
            let stats = table.stats();
            eprintln!(
                "{} decision point{}: {} bounded (max k = {}), {} unbounded; \
                 {} dead, {} shadowed alternative{} ({} graph states)",
                stats.decision_points,
                if stats.decision_points == 1 { "" } else { "s" },
                stats.bounded,
                stats.max_k,
                stats.unbounded,
                stats.dead_alternatives,
                stats.shadowed_alternatives,
                if stats.shadowed_alternatives == 1 {
                    ""
                } else {
                    "s"
                },
                stats.graph_states
            );
        }
        LintFormat::Json => println!(
            "{}",
            costar_grammar::analysis::to_cert_json(&grammar, table)
        ),
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `costar cost`: the static cost certificate derived from the
/// termination measure.
///
/// Human output reports the certified constants and how they were built
/// (ε-subtree bound, pushes per consume epoch, worst certified lookahead
/// k_max), then any L012/L013 diagnostics. `--format=json` prints the
/// machine-checkable `costar-cost-v1` certificate — byte-identical to
/// the one embedded in the on-disk grammar-analysis cache, which this
/// command loads through the same replay-validating path the parser
/// uses, so a corrupted or deflated cached certificate can never be
/// reported here. Exit codes follow lint's contract: 0 = no findings,
/// 1 = findings (L012/L013), 2 = the grammar could not be loaded.
fn cmd_cost(
    source: GrammarSource,
    format: LintFormat,
    max_steps_per_token: Option<u64>,
) -> ExitCode {
    let cache_dir = match &source {
        GrammarSource::Ebnf(path) => PathBuf::from(path)
            .parent()
            .map(|d| d.join(".costar-cache")),
        GrammarSource::Lang(_) => None,
    };
    let grammar = match load_grammar(source) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let analysis = load_analysis(&grammar, cache_dir, false);
    let cost = &analysis.cost;
    let diags = costar_grammar::lint::cost_findings(&grammar, &analysis, max_steps_per_token);
    match format {
        LintFormat::Human => {
            println!(
                "grammar: {} nonterminals, at most {} nonterminals per alternative",
                cost.nonterminals, cost.max_rhs_nts
            );
            if cost.nullable_hazard {
                println!(
                    "epsilon subtrees: bounded by {} nodes (nullable-closure cycle: \
                     conservative power bound)",
                    cost.epsilon_max
                );
            } else {
                println!("epsilon subtrees: bounded by {} nodes", cost.epsilon_max);
            }
            println!(
                "pushes per consume epoch: at most {}",
                cost.pushes_per_epoch
            );
            match cost.steps_per_token() {
                Some(a) => {
                    println!(
                        "certified bound: {a}·n + {} metered steps for any accepting or \
                         rejecting parse of n tokens (worst certified lookahead k = {})",
                        cost.b, cost.k_max
                    );
                    for n in [0u64, 100, 10_000] {
                        println!("  n = {n}: at most {} steps", cost.bound_for(n));
                    }
                }
                None => {
                    let names: Vec<&str> = cost
                        .unbounded
                        .iter()
                        .map(|x| grammar.symbols().nonterminal_name(*x))
                        .collect();
                    println!(
                        "no linear bound: {} decision point{} with unbounded lookahead ({}); \
                         falling back to the quadratic envelope",
                        names.len(),
                        if names.len() == 1 { "" } else { "s" },
                        names.join(", ")
                    );
                    for n in [0u64, 100] {
                        println!("  n = {n}: at most {} steps", cost.bound_for(n));
                    }
                }
            }
            for d in &diags {
                println!("{}", d.render_human(&grammar));
            }
            match costar_grammar::lint::worst_severity(&diags) {
                None => eprintln!("no findings"),
                Some(worst) => eprintln!(
                    "{} finding{} (worst severity: {})",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" },
                    worst.as_str()
                ),
            }
        }
        LintFormat::Json => println!("{}", costar_grammar::analysis::to_cost_json(&grammar, cost)),
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Loads a grammar alone (no input word) from either source.
fn load_grammar(source: GrammarSource) -> Result<Grammar, String> {
    match source {
        GrammarSource::Lang(name) => Ok(args::find_language(&name)?.0.grammar().clone()),
        GrammarSource::Ebnf(path) => {
            let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            Ok(costar_ebnf::compile(&src)?.0)
        }
    }
}

fn cmd_check(source: GrammarSource, eliminate_lr: bool) -> Result<ExitCode, String> {
    let grammar = load_grammar(source)?;
    let analysis = costar_grammar::analysis::GrammarAnalysis::compute(&grammar);
    println!(
        "grammar: |T| = {}, |N| = {}, |P| = {}, maxRhsLen = {}",
        grammar.num_terminals(),
        grammar.num_nonterminals(),
        grammar.num_productions(),
        grammar.max_rhs_len()
    );

    let lr = &analysis.left_recursion;
    if lr.is_grammar_safe() {
        println!("left recursion: none — CoStar's correctness theorems apply");
    } else {
        let culprits: Vec<String> = lr
            .left_recursive_set()
            .iter()
            .map(|x| grammar.symbols().nonterminal_name(x).to_owned())
            .collect();
        println!("left recursion: YES — {}", culprits.join(", "));
    }

    match Ll1Parser::generate(&grammar) {
        Ok(_) => println!("LL(1): yes (a table-driven LL(1) parser also covers this grammar)"),
        Err(conflict) => {
            println!("LL(1): no ({conflict}) — ALL(*) prediction is doing real work here")
        }
    }

    if eliminate_lr {
        if lr.is_grammar_safe() {
            println!("--eliminate-lr: grammar already safe; nothing to rewrite");
        } else {
            let rewritten = eliminate_left_recursion(&grammar).map_err(|e| e.to_string())?;
            println!(
                "\nrewritten grammar ({} productions):",
                rewritten.num_productions()
            );
            print!("{}", render::render_grammar(&rewritten));
        }
    }
    Ok(if lr.is_grammar_safe() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
