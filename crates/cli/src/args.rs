//! Hand-rolled argument parsing (the workspace keeps its dependency set
//! to the offline essentials, so no clap).

use costar_langs::{all_languages, Generator, Language};

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
usage:
  costar parse    (--lang json|xml|dot|python FILE...) | (--grammar G.ebnf --tokens \"a b c\")
                  [--tree] [--stats[=json]] [--time] [--trace-buffer N]
                  [--max-steps N|auto] [--deadline-ms N] [--cache-cap N]
                  [--recover[=json]] [--max-recoveries N] [--no-grammar-cache]
                  [--jobs N] [--warm-cache]
  costar check    (--lang L) | (--grammar G.ebnf)  [--eliminate-lr]
  costar lint     (--lang L) | (--grammar G.ebnf)  [--format=human|json]
  costar analyze  (--lang L) | (--grammar G.ebnf)  [--format=human|json]
  costar audit    (--lang L) | (--grammar G.ebnf)  [--format=human|json]
                  [--max-lookahead K]
  costar cost     (--lang L) | (--grammar G.ebnf)  [--format=human|json]
                  [--max-steps-per-token N]
  costar edit     --lang L FILE --script EDITS.json [--format=human|json]
                  [--oracle]
  costar generate --lang L [--size N] [--seed S]
  costar tokens   --lang L FILE

  lint reports structured diagnostics (L001 left recursion, L002 empty
  language, L003 unproductive, L004 unreachable, L005 duplicate
  production, L006 LL(1) conflict, L007 statically ambiguous pair, L008
  SLL-safe nonterminal, L009 dead alternative, L010 shadowed
  alternative), each with a witness. Exit code 0 = clean, 1 = findings,
  2 = the grammar could not be loaded.
  analyze classifies every prediction decision point as ll1 / sll-safe /
  needs-full-allstar from the static SLL closure graph and reports the
  precompiled decision table; same exit-code contract as lint, where a
  \"finding\" is a proven-ambiguous decision pair (L007).
  audit certifies the exact minimum lookahead bound k of every decision
  point (with collide/resolve witnesses), detects dead (L009) and
  shadowed (L010) alternatives, and with --max-lookahead K notes
  decisions whose bound exceeds K (L011); --format=json prints the
  machine-checkable costar-cert-v1 certificate. Exit 0 = no findings,
  1 = findings (L009/L010/L011), 2 = the grammar could not be loaded.
  cost derives the grammar's certified fuel bound from the termination
  measure: constants (a, b) such that any accepting or rejecting parse
  of n tokens consumes at most a*n + b metered steps. It warns (L012)
  when an unbounded-lookahead decision is reachable from a token-free
  cycle (superlinear-prediction risk), and with --max-steps-per-token N
  notes (L013) when the certified per-token cost exceeds N;
  --format=json prints the machine-checkable costar-cost-v1
  certificate, byte-identical to the one embedded in the grammar cache
  and replayed at load time. Exit 0 = no findings, 1 = findings
  (L012/L013), 2 = the grammar could not be loaded.
  --max-steps auto derives each input's step fuel from the cost
  certificate (a*n + b for its own n), so a budget abort under auto
  fuel indicates a parser bug, never a large input; in a batch every
  file gets fuel from its own length.
  --stats prints a human-readable metrics summary to stderr;
  --stats=json prints the full ParseMetrics object as JSON on stdout.
  --trace-buffer keeps the last N parse events and dumps them to stderr
  when the parse does not accept.
  --recover keeps parsing past syntax errors (panic-mode resynchronizing
  on the grammar's sync sets), printing one diagnostic per error to
  stderr (or, with --recover=json, a JSON report to stdout), and exits 4
  when the input parsed with errors. --max-recoveries caps how many
  errors are recovered before aborting (exit 3).
  Parse exit codes: 0 accepted, 1 rejected or internal error,
  2 usage/load error, 3 budget aborted, 4 parsed with recovered errors.
  Several FILEs parse as one batch over a shared grammar context:
  --jobs N sets the worker count (default: available parallelism; each
  input's outcome is byte-identical at any worker count), --warm-cache
  pre-warms one shared prediction-cache snapshot, per-file verdicts keep
  input order, and the exit code folds to the most severe per-file code
  (severity 0 < 4 < 1 < 3).
  Grammar analyses for --grammar files are cached on disk keyed by
  grammar content (COSTAR_CACHE_DIR, default <grammar dir>/.costar-cache);
  --no-grammar-cache bypasses the cache entirely.
  edit replays a JSON edit script against FILE in one live session:
  each edit re-lexes only the damaged region, splices the fresh tokens
  into the previous token vector, and skips the parse entirely when the
  spliced vector is byte-identical to the previous one. Per-edit re-lex
  and re-parse latency is printed (or, with --format=json, one JSON
  document with every per-edit record). The script is
  {\"edits\":[{\"start\":B,\"end\":B,\"replacement\":S},...]} with
  byte offsets into the *current* (already-edited) source. --oracle
  additionally re-tokenizes from scratch after every edit and fails on
  any divergence from the spliced tokens. Python falls back to full
  re-tokenization per edit (INDENT/DEDENT synthesis is line-global).
  Exit codes: 0 final parse accepted, 1 rejected/error/oracle mismatch,
  2 usage or script error, 3 budget aborted.";

/// How `--stats` should report parse metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsMode {
    /// No metrics collection (the default, zero-overhead path).
    Off,
    /// Human-readable summary on stderr.
    Human,
    /// Full `ParseMetrics` JSON object on stdout.
    Json,
}

/// How `--recover` should report diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoverMode {
    /// No recovery: stop at the first syntax error (the default).
    #[default]
    Off,
    /// Recover, printing human-readable diagnostics to stderr.
    Human,
    /// Recover, printing a JSON diagnostics report to stdout.
    Json,
}

/// Output format for `costar lint` and `costar analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintFormat {
    /// `error[L001]: ...` lines with indented witnesses (the default).
    #[default]
    Human,
    /// One JSON object on stdout with the full diagnostic list.
    Json,
}

/// Step fuel requested via `--max-steps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxSteps {
    /// A fixed fuel count (always positive — `0` is a usage error).
    Fixed(u64),
    /// Derive the fuel from the grammar's certified cost bound, per
    /// input: `a·n + b` for an `n`-token input.
    Auto,
}

/// Where the grammar comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarSource {
    /// One of the built-in benchmark languages.
    Lang(String),
    /// An EBNF grammar file.
    Ebnf(String),
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Parse input and report the outcome.
    Parse {
        /// Grammar source.
        source: GrammarSource,
        /// Input files (built-in language; several parse as one batch)
        /// or a single token-name string (`--tokens`).
        inputs: Vec<String>,
        /// Print the parse tree.
        tree: bool,
        /// Metrics reporting mode.
        stats: StatsMode,
        /// Print parse time.
        time: bool,
        /// Keep the last N parse events for a post-mortem dump.
        trace_buffer: Option<usize>,
        /// Budget: abort after this many machine steps + lookahead
        /// tokens, or derive the cap from the cost certificate (`auto`).
        max_steps: Option<MaxSteps>,
        /// Budget: abort once this many milliseconds have elapsed.
        deadline_ms: Option<u64>,
        /// Budget: cap the SLL cache at this many DFA states (LRU evict).
        cache_cap: Option<usize>,
        /// Syntax-error recovery mode.
        recover: RecoverMode,
        /// Budget: abort after recovering this many syntax errors.
        max_recoveries: Option<u64>,
        /// Bypass the on-disk grammar-analysis cache.
        no_grammar_cache: bool,
        /// Batch worker count (`None` = available parallelism).
        jobs: Option<usize>,
        /// Warm one shared prediction-cache snapshot before the batch.
        warm_cache: bool,
    },
    /// Run the static analyses.
    Check {
        /// Grammar source.
        source: GrammarSource,
        /// Also print a left-recursion-eliminated rewrite.
        eliminate_lr: bool,
    },
    /// Run the grammar linter and report structured diagnostics.
    Lint {
        /// Grammar source.
        source: GrammarSource,
        /// Output format.
        format: LintFormat,
    },
    /// Report the static decision-point classification table.
    Analyze {
        /// Grammar source.
        source: GrammarSource,
        /// Output format.
        format: LintFormat,
    },
    /// Certify exact lookahead bounds and report dead/shadowed
    /// alternatives.
    Audit {
        /// Grammar source.
        source: GrammarSource,
        /// Output format (`json` prints the `costar-cert-v1` certificate).
        format: LintFormat,
        /// Note decisions whose certified bound exceeds this (L011).
        max_lookahead: Option<usize>,
    },
    /// Derive and report the certified per-grammar fuel bound.
    Cost {
        /// Grammar source.
        source: GrammarSource,
        /// Output format (`json` prints the `costar-cost-v1` certificate).
        format: LintFormat,
        /// Note a certified per-token cost exceeding this (L013).
        max_steps_per_token: Option<u64>,
    },
    /// Replay a JSON edit script through an incremental parse session.
    Edit {
        /// Language name.
        lang: String,
        /// Initial source file.
        file: String,
        /// Path of the JSON edit script.
        script: String,
        /// Output format (`json` prints one document with per-edit rows).
        format: LintFormat,
        /// After every edit, re-tokenize from scratch and fail on any
        /// divergence from the spliced token vector.
        oracle: bool,
    },
    /// Emit a synthetic corpus file.
    Generate {
        /// Language name.
        lang: String,
        /// Size knob (roughly tokens).
        size: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Dump a file's token stream.
    Tokens {
        /// Language name.
        lang: String,
        /// Input file.
        file: String,
    },
}

/// The full parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand.
    pub command: Command,
}

impl Args {
    /// Parses an iterator of arguments (without the binary name).
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut args = args.peekable();
        let sub = args.next().ok_or("missing subcommand")?;
        match sub.as_str() {
            "parse" => {
                let mut lang = None;
                let mut grammar = None;
                let mut tokens = None;
                let mut files = Vec::new();
                let (mut tree, mut time) = (false, false);
                let mut stats = StatsMode::Off;
                let mut trace_buffer = None;
                let mut max_steps = None;
                let mut deadline_ms = None;
                let mut cache_cap = None;
                let mut recover = RecoverMode::Off;
                let mut max_recoveries = None;
                let mut no_grammar_cache = false;
                let mut jobs = None;
                let mut warm_cache = false;
                while let Some(a) = args.next() {
                    match a.as_str() {
                        "--lang" => lang = Some(required(&mut args, "--lang")?),
                        "--grammar" => grammar = Some(required(&mut args, "--grammar")?),
                        "--tokens" => tokens = Some(required(&mut args, "--tokens")?),
                        "--tree" => tree = true,
                        "--stats" => stats = StatsMode::Human,
                        "--stats=json" => stats = StatsMode::Json,
                        other if other.starts_with("--stats=") => {
                            return Err(format!(
                                "unknown stats mode {:?} (try --stats or --stats=json)",
                                &other["--stats=".len()..]
                            ));
                        }
                        "--time" => time = true,
                        "--trace-buffer" => {
                            trace_buffer = Some(number::<usize>(&mut args, "--trace-buffer")?)
                        }
                        "--max-steps" => {
                            let v = required(&mut args, "--max-steps")?;
                            max_steps = Some(if v == "auto" {
                                MaxSteps::Auto
                            } else {
                                let n: u64 = v
                                    .parse()
                                    .map_err(|_| "--max-steps takes a number or `auto`")?;
                                if n == 0 {
                                    return Err("--max-steps 0 would abort every parse before \
                                                its first step; use a positive fuel count or \
                                                `auto`"
                                        .into());
                                }
                                MaxSteps::Fixed(n)
                            });
                        }
                        "--deadline-ms" => {
                            let ms: u64 = number(&mut args, "--deadline-ms")?;
                            if ms == 0 {
                                return Err("--deadline-ms 0 would expire every parse before \
                                            its first step; use a positive deadline"
                                    .into());
                            }
                            deadline_ms = Some(ms);
                        }
                        "--cache-cap" => {
                            cache_cap = Some(number::<usize>(&mut args, "--cache-cap")?)
                        }
                        "--recover" => recover = RecoverMode::Human,
                        "--recover=json" => recover = RecoverMode::Json,
                        other if other.starts_with("--recover=") => {
                            return Err(format!(
                                "unknown recover mode {:?} (try --recover or --recover=json)",
                                &other["--recover=".len()..]
                            ));
                        }
                        "--max-recoveries" => {
                            max_recoveries = Some(number(&mut args, "--max-recoveries")?)
                        }
                        "--no-grammar-cache" => no_grammar_cache = true,
                        "--jobs" => {
                            let n = number::<usize>(&mut args, "--jobs")?;
                            if n == 0 {
                                return Err("--jobs needs at least one worker".into());
                            }
                            jobs = Some(n);
                        }
                        "--warm-cache" => warm_cache = true,
                        other if !other.starts_with('-') => {
                            files.push(other.to_owned());
                        }
                        other => return Err(format!("unexpected argument {other:?}")),
                    }
                }
                let (source, inputs) = match (lang, grammar) {
                    (Some(l), None) => (GrammarSource::Lang(l), files),
                    (None, Some(g)) => {
                        if !files.is_empty() {
                            return Err(
                                "parse --grammar takes its input via --tokens, not FILE arguments"
                                    .into(),
                            );
                        }
                        (GrammarSource::Ebnf(g), tokens.into_iter().collect())
                    }
                    _ => return Err("parse needs exactly one of --lang or --grammar".into()),
                };
                if trace_buffer.is_some() && inputs.len() > 1 {
                    return Err("--trace-buffer applies to single-file parses only".into());
                }
                Ok(Args {
                    command: Command::Parse {
                        source,
                        inputs,
                        tree,
                        stats,
                        time,
                        trace_buffer,
                        max_steps,
                        deadline_ms,
                        cache_cap,
                        recover,
                        max_recoveries,
                        no_grammar_cache,
                        jobs,
                        warm_cache,
                    },
                })
            }
            "check" => {
                let mut lang = None;
                let mut grammar = None;
                let mut eliminate_lr = false;
                while let Some(a) = args.next() {
                    match a.as_str() {
                        "--lang" => lang = Some(required(&mut args, "--lang")?),
                        "--grammar" => grammar = Some(required(&mut args, "--grammar")?),
                        "--eliminate-lr" => eliminate_lr = true,
                        other => return Err(format!("unexpected argument {other:?}")),
                    }
                }
                let source = match (lang, grammar) {
                    (Some(l), None) => GrammarSource::Lang(l),
                    (None, Some(g)) => GrammarSource::Ebnf(g),
                    _ => return Err("check needs exactly one of --lang or --grammar".into()),
                };
                Ok(Args {
                    command: Command::Check {
                        source,
                        eliminate_lr,
                    },
                })
            }
            "lint" => {
                let (source, format) = source_and_format(&mut args, "lint")?;
                Ok(Args {
                    command: Command::Lint { source, format },
                })
            }
            "analyze" => {
                let (source, format) = source_and_format(&mut args, "analyze")?;
                Ok(Args {
                    command: Command::Analyze { source, format },
                })
            }
            "audit" => {
                let mut lang = None;
                let mut grammar = None;
                let mut format = LintFormat::Human;
                let mut max_lookahead = None;
                while let Some(a) = args.next() {
                    match a.as_str() {
                        "--lang" => lang = Some(required(&mut args, "--lang")?),
                        "--grammar" => grammar = Some(required(&mut args, "--grammar")?),
                        "--format=json" => format = LintFormat::Json,
                        "--format=human" => format = LintFormat::Human,
                        "--format" => {
                            format = match required(&mut args, "--format")?.as_str() {
                                "json" => LintFormat::Json,
                                "human" => LintFormat::Human,
                                other => {
                                    return Err(format!(
                                        "unknown audit format {other:?} (try human or json)"
                                    ))
                                }
                            }
                        }
                        other if other.starts_with("--format=") => {
                            return Err(format!(
                                "unknown audit format {:?} (try human or json)",
                                &other["--format=".len()..]
                            ));
                        }
                        "--max-lookahead" => {
                            max_lookahead = Some(number::<usize>(&mut args, "--max-lookahead")?)
                        }
                        other => return Err(format!("unexpected argument {other:?}")),
                    }
                }
                let source = match (lang, grammar) {
                    (Some(l), None) => GrammarSource::Lang(l),
                    (None, Some(g)) => GrammarSource::Ebnf(g),
                    _ => return Err("audit needs exactly one of --lang or --grammar".into()),
                };
                Ok(Args {
                    command: Command::Audit {
                        source,
                        format,
                        max_lookahead,
                    },
                })
            }
            "cost" => {
                let mut lang = None;
                let mut grammar = None;
                let mut format = LintFormat::Human;
                let mut max_steps_per_token = None;
                while let Some(a) = args.next() {
                    match a.as_str() {
                        "--lang" => lang = Some(required(&mut args, "--lang")?),
                        "--grammar" => grammar = Some(required(&mut args, "--grammar")?),
                        "--format=json" => format = LintFormat::Json,
                        "--format=human" => format = LintFormat::Human,
                        "--format" => {
                            format = match required(&mut args, "--format")?.as_str() {
                                "json" => LintFormat::Json,
                                "human" => LintFormat::Human,
                                other => {
                                    return Err(format!(
                                        "unknown cost format {other:?} (try human or json)"
                                    ))
                                }
                            }
                        }
                        other if other.starts_with("--format=") => {
                            return Err(format!(
                                "unknown cost format {:?} (try human or json)",
                                &other["--format=".len()..]
                            ));
                        }
                        "--max-steps-per-token" => {
                            max_steps_per_token =
                                Some(number::<u64>(&mut args, "--max-steps-per-token")?)
                        }
                        other => return Err(format!("unexpected argument {other:?}")),
                    }
                }
                let source = match (lang, grammar) {
                    (Some(l), None) => GrammarSource::Lang(l),
                    (None, Some(g)) => GrammarSource::Ebnf(g),
                    _ => return Err("cost needs exactly one of --lang or --grammar".into()),
                };
                Ok(Args {
                    command: Command::Cost {
                        source,
                        format,
                        max_steps_per_token,
                    },
                })
            }
            "edit" => {
                let mut lang = None;
                let mut file = None;
                let mut script = None;
                let mut format = LintFormat::Human;
                let mut oracle = false;
                while let Some(a) = args.next() {
                    match a.as_str() {
                        "--lang" => lang = Some(required(&mut args, "--lang")?),
                        "--script" => script = Some(required(&mut args, "--script")?),
                        "--format=json" => format = LintFormat::Json,
                        "--format=human" => format = LintFormat::Human,
                        "--format" => {
                            format = match required(&mut args, "--format")?.as_str() {
                                "json" => LintFormat::Json,
                                "human" => LintFormat::Human,
                                other => {
                                    return Err(format!(
                                        "unknown edit format {other:?} (try human or json)"
                                    ))
                                }
                            }
                        }
                        other if other.starts_with("--format=") => {
                            return Err(format!(
                                "unknown edit format {:?} (try human or json)",
                                &other["--format=".len()..]
                            ));
                        }
                        "--oracle" => oracle = true,
                        other if !other.starts_with('-') && file.is_none() => {
                            file = Some(other.to_owned());
                        }
                        other => return Err(format!("unexpected argument {other:?}")),
                    }
                }
                Ok(Args {
                    command: Command::Edit {
                        lang: lang.ok_or("edit needs --lang")?,
                        file: file.ok_or("edit needs a FILE")?,
                        script: script.ok_or("edit needs --script EDITS.json")?,
                        format,
                        oracle,
                    },
                })
            }
            "generate" => {
                let mut lang = None;
                let mut size = 1_000usize;
                let mut seed = 0u64;
                while let Some(a) = args.next() {
                    match a.as_str() {
                        "--lang" => lang = Some(required(&mut args, "--lang")?),
                        "--size" => {
                            size = required(&mut args, "--size")?
                                .parse()
                                .map_err(|_| "--size takes a number")?;
                        }
                        "--seed" => {
                            seed = required(&mut args, "--seed")?
                                .parse()
                                .map_err(|_| "--seed takes a number")?;
                        }
                        other => return Err(format!("unexpected argument {other:?}")),
                    }
                }
                Ok(Args {
                    command: Command::Generate {
                        lang: lang.ok_or("generate needs --lang")?,
                        size,
                        seed,
                    },
                })
            }
            "tokens" => {
                let mut lang = None;
                let mut file = None;
                while let Some(a) = args.next() {
                    match a.as_str() {
                        "--lang" => lang = Some(required(&mut args, "--lang")?),
                        other if !other.starts_with('-') && file.is_none() => {
                            file = Some(other.to_owned());
                        }
                        other => return Err(format!("unexpected argument {other:?}")),
                    }
                }
                Ok(Args {
                    command: Command::Tokens {
                        lang: lang.ok_or("tokens needs --lang")?,
                        file: file.ok_or("tokens needs a FILE")?,
                    },
                })
            }
            other => Err(format!("unknown subcommand {other:?}")),
        }
    }
}

/// Shared flag grammar for `lint` and `analyze`: exactly one of
/// `--lang`/`--grammar` plus an optional `--format=human|json`.
fn source_and_format(
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    sub: &str,
) -> Result<(GrammarSource, LintFormat), String> {
    let mut lang = None;
    let mut grammar = None;
    let mut format = LintFormat::Human;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--lang" => lang = Some(required(args, "--lang")?),
            "--grammar" => grammar = Some(required(args, "--grammar")?),
            "--format=json" => format = LintFormat::Json,
            "--format=human" => format = LintFormat::Human,
            "--format" => {
                format = match required(args, "--format")?.as_str() {
                    "json" => LintFormat::Json,
                    "human" => LintFormat::Human,
                    other => {
                        return Err(format!(
                            "unknown {sub} format {other:?} (try human or json)"
                        ))
                    }
                }
            }
            other if other.starts_with("--format=") => {
                return Err(format!(
                    "unknown {sub} format {:?} (try human or json)",
                    &other["--format=".len()..]
                ));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let source = match (lang, grammar) {
        (Some(l), None) => GrammarSource::Lang(l),
        (None, Some(g)) => GrammarSource::Ebnf(g),
        _ => return Err(format!("{sub} needs exactly one of --lang or --grammar")),
    };
    Ok((source, format))
}

fn required(
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    flag: &str,
) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn number<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    flag: &str,
) -> Result<T, String> {
    required(args, flag)?
        .parse()
        .map_err(|_| format!("{flag} takes a number"))
}

/// Looks up a built-in language (and its generator) by name,
/// case-insensitively.
pub fn find_language(name: &str) -> Result<(Language, Generator), String> {
    all_languages()
        .into_iter()
        .find(|(l, _)| l.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown language {name:?} (json, xml, dot, python)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parse_command_with_lang() {
        let a = parse(&["parse", "--lang", "json", "file.json", "--tree", "--time"]).unwrap();
        let Command::Parse {
            source,
            inputs,
            tree,
            stats,
            time,
            trace_buffer,
            max_steps,
            deadline_ms,
            cache_cap,
            recover,
            max_recoveries,
            no_grammar_cache,
            jobs,
            warm_cache,
        } = a.command
        else {
            panic!("wrong command")
        };
        assert_eq!(source, GrammarSource::Lang("json".into()));
        assert_eq!(inputs, vec!["file.json".to_owned()]);
        assert!(tree && time);
        assert_eq!(stats, StatsMode::Off);
        assert!(trace_buffer.is_none());
        assert!(max_steps.is_none() && deadline_ms.is_none() && cache_cap.is_none());
        assert_eq!(recover, RecoverMode::Off);
        assert!(max_recoveries.is_none());
        assert!(!no_grammar_cache);
        assert!(jobs.is_none());
        assert!(!warm_cache);
    }

    #[test]
    fn parse_command_batch_flags() {
        let a = parse(&[
            "parse",
            "--lang",
            "json",
            "a.json",
            "b.json",
            "c.json",
            "--jobs",
            "4",
            "--warm-cache",
        ])
        .unwrap();
        let Command::Parse {
            inputs,
            jobs,
            warm_cache,
            ..
        } = a.command
        else {
            panic!("wrong command")
        };
        assert_eq!(inputs, vec!["a.json", "b.json", "c.json"]);
        assert_eq!(jobs, Some(4));
        assert!(warm_cache);

        assert!(parse(&["parse", "--lang", "json", "f", "--jobs"]).is_err());
        assert!(parse(&["parse", "--lang", "json", "f", "--jobs", "many"]).is_err());
        // --grammar mode takes --tokens, not positional files.
        assert!(parse(&["parse", "--grammar", "g.ebnf", "--tokens", "a", "stray"]).is_err());
    }

    #[test]
    fn recover_flags() {
        let a = parse(&["parse", "--lang", "json", "f", "--recover"]).unwrap();
        let Command::Parse { recover, .. } = a.command else {
            panic!("wrong command")
        };
        assert_eq!(recover, RecoverMode::Human);

        let a = parse(&[
            "parse",
            "--lang",
            "json",
            "f",
            "--recover=json",
            "--max-recoveries",
            "16",
            "--no-grammar-cache",
        ])
        .unwrap();
        let Command::Parse {
            recover,
            max_recoveries,
            no_grammar_cache,
            ..
        } = a.command
        else {
            panic!("wrong command")
        };
        assert_eq!(recover, RecoverMode::Json);
        assert_eq!(max_recoveries, Some(16));
        assert!(no_grammar_cache);

        assert!(parse(&["parse", "--lang", "json", "f", "--recover=yaml"]).is_err());
        assert!(parse(&["parse", "--lang", "json", "f", "--max-recoveries", "x"]).is_err());
    }

    #[test]
    fn stats_modes_and_trace_buffer() {
        let a = parse(&["parse", "--lang", "json", "f", "--stats"]).unwrap();
        let Command::Parse { stats, .. } = a.command else {
            panic!("wrong command")
        };
        assert_eq!(stats, StatsMode::Human);

        let a = parse(&[
            "parse",
            "--lang",
            "json",
            "f",
            "--stats=json",
            "--trace-buffer",
            "128",
        ])
        .unwrap();
        let Command::Parse {
            stats,
            trace_buffer,
            ..
        } = a.command
        else {
            panic!("wrong command")
        };
        assert_eq!(stats, StatsMode::Json);
        assert_eq!(trace_buffer, Some(128));

        assert!(parse(&["parse", "--lang", "json", "f", "--stats=yaml"]).is_err());
        assert!(parse(&["parse", "--lang", "json", "f", "--trace-buffer", "many"]).is_err());
        assert!(parse(&["parse", "--lang", "json", "f", "--trace-buffer"]).is_err());
    }

    #[test]
    fn parse_command_budget_flags() {
        let a = parse(&[
            "parse",
            "--lang",
            "json",
            "file.json",
            "--max-steps",
            "5000",
            "--deadline-ms",
            "250",
            "--cache-cap",
            "64",
        ])
        .unwrap();
        let Command::Parse {
            max_steps,
            deadline_ms,
            cache_cap,
            ..
        } = a.command
        else {
            panic!("wrong command")
        };
        assert_eq!(max_steps, Some(MaxSteps::Fixed(5000)));
        assert_eq!(deadline_ms, Some(250));
        assert_eq!(cache_cap, Some(64));
    }

    #[test]
    fn budget_flags_reject_garbage() {
        assert!(parse(&["parse", "--lang", "json", "f", "--max-steps", "lots"]).is_err());
        assert!(parse(&["parse", "--lang", "json", "f", "--deadline-ms"]).is_err());
        assert!(parse(&["parse", "--lang", "json", "f", "--cache-cap", "-3"]).is_err());
    }

    #[test]
    fn max_steps_auto_and_zero_budgets() {
        let a = parse(&["parse", "--lang", "json", "f", "--max-steps", "auto"]).unwrap();
        let Command::Parse { max_steps, .. } = a.command else {
            panic!("wrong command")
        };
        assert_eq!(max_steps, Some(MaxSteps::Auto));
        // Zero fuel and a zero deadline would abort every parse before it
        // starts — both are usage errors, not budgets.
        let err = parse(&["parse", "--lang", "json", "f", "--max-steps", "0"]).unwrap_err();
        assert!(err.contains("--max-steps"), "unhelpful error: {err}");
        let err = parse(&["parse", "--lang", "json", "f", "--deadline-ms", "0"]).unwrap_err();
        assert!(err.contains("--deadline-ms"), "unhelpful error: {err}");
        // The smallest meaningful values remain valid.
        assert!(parse(&["parse", "--lang", "json", "f", "--max-steps", "1"]).is_ok());
        assert!(parse(&["parse", "--lang", "json", "f", "--deadline-ms", "1"]).is_ok());
    }

    #[test]
    fn cost_command_and_flags() {
        let a = parse(&["cost", "--grammar", "g.ebnf"]).unwrap();
        assert_eq!(
            a.command,
            Command::Cost {
                source: GrammarSource::Ebnf("g.ebnf".into()),
                format: LintFormat::Human,
                max_steps_per_token: None,
            }
        );
        let a = parse(&[
            "cost",
            "--lang",
            "json",
            "--format=json",
            "--max-steps-per-token",
            "64",
        ])
        .unwrap();
        assert_eq!(
            a.command,
            Command::Cost {
                source: GrammarSource::Lang("json".into()),
                format: LintFormat::Json,
                max_steps_per_token: Some(64),
            }
        );
        assert!(parse(&["cost"]).is_err());
        assert!(parse(&["cost", "--lang", "json", "--grammar", "g.ebnf"]).is_err());
        assert!(parse(&["cost", "--lang", "json", "--format=yaml"]).is_err());
        assert!(parse(&["cost", "--lang", "json", "--max-steps-per-token", "lots"]).is_err());
    }

    #[test]
    fn parse_command_with_grammar_and_tokens() {
        let a = parse(&["parse", "--grammar", "g.ebnf", "--tokens", "a b c"]).unwrap();
        let Command::Parse { source, inputs, .. } = a.command else {
            panic!("wrong command")
        };
        assert_eq!(source, GrammarSource::Ebnf("g.ebnf".into()));
        assert_eq!(inputs, vec!["a b c".to_owned()]);
    }

    #[test]
    fn parse_requires_exactly_one_source() {
        assert!(parse(&["parse", "file"]).is_err());
        assert!(parse(&["parse", "--lang", "json", "--grammar", "g.ebnf"]).is_err());
    }

    #[test]
    fn check_and_generate() {
        let a = parse(&["check", "--grammar", "g.ebnf", "--eliminate-lr"]).unwrap();
        assert!(matches!(
            a.command,
            Command::Check {
                eliminate_lr: true,
                ..
            }
        ));
        let a = parse(&["generate", "--lang", "dot", "--size", "500", "--seed", "9"]).unwrap();
        assert_eq!(
            a.command,
            Command::Generate {
                lang: "dot".into(),
                size: 500,
                seed: 9
            }
        );
    }

    #[test]
    fn lint_command_and_formats() {
        let a = parse(&["lint", "--grammar", "g.ebnf"]).unwrap();
        assert_eq!(
            a.command,
            Command::Lint {
                source: GrammarSource::Ebnf("g.ebnf".into()),
                format: LintFormat::Human,
            }
        );
        let a = parse(&["lint", "--lang", "json", "--format=json"]).unwrap();
        assert_eq!(
            a.command,
            Command::Lint {
                source: GrammarSource::Lang("json".into()),
                format: LintFormat::Json,
            }
        );
        let a = parse(&["lint", "--lang", "json", "--format", "human"]).unwrap();
        assert!(matches!(
            a.command,
            Command::Lint {
                format: LintFormat::Human,
                ..
            }
        ));
        assert!(parse(&["lint"]).is_err());
        assert!(parse(&["lint", "--lang", "json", "--grammar", "g.ebnf"]).is_err());
        assert!(parse(&["lint", "--lang", "json", "--format=yaml"]).is_err());
        assert!(parse(&["lint", "--lang", "json", "--format"]).is_err());
    }

    #[test]
    fn analyze_command_and_formats() {
        let a = parse(&["analyze", "--grammar", "g.ebnf"]).unwrap();
        assert_eq!(
            a.command,
            Command::Analyze {
                source: GrammarSource::Ebnf("g.ebnf".into()),
                format: LintFormat::Human,
            }
        );
        let a = parse(&["analyze", "--lang", "json", "--format=json"]).unwrap();
        assert_eq!(
            a.command,
            Command::Analyze {
                source: GrammarSource::Lang("json".into()),
                format: LintFormat::Json,
            }
        );
        assert!(parse(&["analyze"]).is_err());
        assert!(parse(&["analyze", "--lang", "json", "--format=yaml"]).is_err());
        assert!(parse(&["analyze", "--lang", "json", "--grammar", "g.ebnf"]).is_err());
    }

    #[test]
    fn audit_command_and_flags() {
        let a = parse(&["audit", "--grammar", "g.ebnf"]).unwrap();
        assert_eq!(
            a.command,
            Command::Audit {
                source: GrammarSource::Ebnf("g.ebnf".into()),
                format: LintFormat::Human,
                max_lookahead: None,
            }
        );
        let a = parse(&[
            "audit",
            "--lang",
            "json",
            "--format=json",
            "--max-lookahead",
            "3",
        ])
        .unwrap();
        assert_eq!(
            a.command,
            Command::Audit {
                source: GrammarSource::Lang("json".into()),
                format: LintFormat::Json,
                max_lookahead: Some(3),
            }
        );
        assert!(parse(&["audit"]).is_err());
        assert!(parse(&["audit", "--lang", "json", "--grammar", "g.ebnf"]).is_err());
        assert!(parse(&["audit", "--lang", "json", "--format=yaml"]).is_err());
        assert!(parse(&["audit", "--lang", "json", "--max-lookahead", "deep"]).is_err());
    }

    #[test]
    fn edit_command_and_flags() {
        let a = parse(&["edit", "--lang", "json", "f.json", "--script", "e.json"]).unwrap();
        assert_eq!(
            a.command,
            Command::Edit {
                lang: "json".into(),
                file: "f.json".into(),
                script: "e.json".into(),
                format: LintFormat::Human,
                oracle: false,
            }
        );
        let a = parse(&[
            "edit",
            "--lang",
            "xml",
            "--script",
            "e.json",
            "doc.xml",
            "--format=json",
            "--oracle",
        ])
        .unwrap();
        assert_eq!(
            a.command,
            Command::Edit {
                lang: "xml".into(),
                file: "doc.xml".into(),
                script: "e.json".into(),
                format: LintFormat::Json,
                oracle: true,
            }
        );
        // All three of --lang, FILE, --script are required.
        assert!(parse(&["edit", "--lang", "json", "f.json"]).is_err());
        assert!(parse(&["edit", "--lang", "json", "--script", "e.json"]).is_err());
        assert!(parse(&["edit", "f.json", "--script", "e.json"]).is_err());
        assert!(parse(&[
            "edit",
            "--lang",
            "json",
            "f",
            "--script",
            "e",
            "--format=yaml"
        ])
        .is_err());
        // A second positional file is an error, not silently ignored.
        assert!(parse(&["edit", "--lang", "json", "a", "b", "--script", "e"]).is_err());
    }

    #[test]
    fn jobs_zero_is_a_usage_error() {
        let err = parse(&["parse", "--lang", "json", "f", "--jobs", "0"]).unwrap_err();
        assert!(err.contains("--jobs"), "unhelpful error: {err}");
        // One worker remains valid.
        assert!(parse(&["parse", "--lang", "json", "f", "--jobs", "1"]).is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["generate"]).is_err());
        assert!(parse(&["generate", "--lang", "dot", "--size", "xyz"]).is_err());
        assert!(parse(&["tokens", "--lang", "json"]).is_err());
    }

    #[test]
    fn language_lookup_is_case_insensitive() {
        assert!(find_language("JSON").is_ok());
        assert!(find_language("Python").is_ok());
        assert!(find_language("cobol").is_err());
    }
}
