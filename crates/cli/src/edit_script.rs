//! The `costar edit` script format: a minimal, strict JSON reader for
//! `{"edits":[{"start":B,"end":B,"replacement":S},...]}`.
//!
//! The workspace carries no serialization dependency, so like every other
//! JSON surface in the repo this is hand-rolled. The reader is
//! deliberately strict — unknown keys, floats, trailing commas, or any
//! syntax error fail with a byte-offset error message rather than being
//! guessed around — and total: no input can make it panic.
//!
//! Offsets in the script are **byte** offsets into the *current* source,
//! i.e. each edit addresses the text as left by the previous edit, which
//! is how editors emit change streams.

/// One edit from the script: replace bytes `start..end` with
/// `replacement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptEdit {
    /// Start byte offset (inclusive) in the current source.
    pub start: usize,
    /// End byte offset (exclusive) in the current source.
    pub end: usize,
    /// Replacement text (may be empty: a pure deletion).
    pub replacement: String,
}

/// Parses an edit script document. Returns the edits in script order.
pub fn parse(text: &str) -> Result<Vec<ScriptEdit>, String> {
    let mut p = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    let key = p.string()?;
    if key != "edits" {
        return Err(format!("expected top-level key \"edits\", found {key:?}"));
    }
    p.skip_ws();
    p.expect(b':')?;
    p.skip_ws();
    p.expect(b'[')?;
    let mut edits = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            edits.push(p.edit()?);
            p.skip_ws();
            match p.bump() {
                Some(b',') => p.skip_ws(),
                Some(b']') => break,
                _ => return Err(p.err("expected `,` or `]` after an edit")),
            }
        }
    }
    p.skip_ws();
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the edit script"));
    }
    Ok(edits)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} (at byte {})", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", want as char)))
        }
    }

    /// One `{"start":N,"end":N,"replacement":S}` object, keys in any
    /// order, each required exactly once.
    fn edit(&mut self) -> Result<ScriptEdit, String> {
        self.expect(b'{')?;
        let (mut start, mut end, mut replacement) = (None, None, None);
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "start" if start.is_none() => start = Some(self.number()?),
                "end" if end.is_none() => end = Some(self.number()?),
                "replacement" if replacement.is_none() => replacement = Some(self.string()?),
                "start" | "end" | "replacement" => {
                    return Err(self.err(&format!("duplicate key {key:?}")))
                }
                other => return Err(self.err(&format!("unknown edit key {other:?}"))),
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => break,
                _ => return Err(self.err("expected `,` or `}` inside an edit")),
            }
        }
        let (Some(start), Some(end), Some(replacement)) = (start, end, replacement) else {
            return Err(self.err("an edit needs \"start\", \"end\", and \"replacement\""));
        };
        if end < start {
            return Err(format!("edit range {start}..{end} is reversed"));
        }
        Ok(ScriptEdit {
            start,
            end,
            replacement,
        })
    }

    fn number(&mut self) -> Result<usize, String> {
        let at = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == at {
            return Err(self.err("expected an unsigned integer"));
        }
        std::str::from_utf8(&self.bytes[at..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("integer out of range"))
    }

    /// A JSON string with the escapes the schema needs: `\"`, `\\`,
    /// `\/`, `\n`, `\t`, `\r`, and `\uXXXX` (no surrogate pairs — the
    /// replacement text is arbitrary UTF-8, written directly).
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("truncated \\u"))?;
                            let v = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad \\u hex digit"))?;
                            code = code * 16 + v;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                        );
                    }
                    _ => return Err(self.err("unsupported escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) => {
                    // Byte-accurate UTF-8 passthrough: collect the full
                    // encoded character starting at b.
                    let char_start = self.pos - 1;
                    let width = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = (char_start + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[char_start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_script() {
        let edits = parse(
            r#"{ "edits": [
                {"start": 3, "end": 5, "replacement": "xy"},
                {"replacement": "", "start": 0, "end": 1},
                {"start": 7, "end": 7, "replacement": "a\nb\"c\\dA"}
            ] }"#,
        )
        .unwrap();
        assert_eq!(edits.len(), 3);
        assert_eq!(
            edits[0],
            ScriptEdit {
                start: 3,
                end: 5,
                replacement: "xy".into()
            }
        );
        assert_eq!(edits[1].replacement, "");
        assert_eq!(edits[2].replacement, "a\nb\"c\\dA");
    }

    #[test]
    fn empty_script_is_fine() {
        assert_eq!(parse(r#"{"edits":[]}"#).unwrap(), Vec::new());
    }

    #[test]
    fn utf8_replacements_pass_through() {
        let edits = parse(r#"{"edits":[{"start":0,"end":0,"replacement":"héllo→∞"}]}"#).unwrap();
        assert_eq!(edits[0].replacement, "héllo→∞");
    }

    #[test]
    fn malformed_scripts_are_rejected_with_positions() {
        for bad in [
            "",
            "[]",
            r#"{"edits":}"#,
            r#"{"edit":[]}"#,
            r#"{"edits":[{"start":1,"end":2}]}"#,
            r#"{"edits":[{"start":1,"end":2,"replacement":"x","start":3}]}"#,
            r#"{"edits":[{"start":5,"end":2,"replacement":"x"}]}"#,
            r#"{"edits":[{"start":1,"end":2,"replacement":"x","size":9}]}"#,
            r#"{"edits":[{"start":-1,"end":2,"replacement":"x"}]}"#,
            r#"{"edits":[{"start":1.5,"end":2,"replacement":"x"}]}"#,
            r#"{"edits":[]} trailing"#,
            r#"{"edits":[{"start":1,"end":2,"replacement":"unterminated}]}"#,
        ] {
            assert!(parse(bad).is_err(), "accepted malformed script: {bad:?}");
        }
    }
}
