//! The proptest driver for the dual-mode harnesses: every harness body
//! from `costar_verify::harness` run across many RNG seeds, plus the
//! coverage obligations — `H-STACK-WF` and `H-MEASURE-DEC` must have
//! exercised *all* machine step kinds (push, consume, return) and both
//! final results (accept, reject) across the aggregate, so the harnesses
//! cannot silently go vacuous.

use costar::bignat::BigNat;
use costar::measure::meas;
use costar::{Machine, SllCache, StepResult};
use costar_grammar::analysis::GrammarAnalysis;
use costar_verify::grammars;
use costar_verify::harness::{
    check_cost_certificate, check_incremental_edit, h_audit_sound, h_cache_bound, h_cost_sound,
    h_decide_sound, h_incr_lex_sound, h_measure_dec, h_measure_ord, h_prefix_der, h_recover_sound,
    h_stable_complete, h_stack_wf, h_visited, HarnessViolation, StepKinds,
};
use costar_verify::nondet::{Nondet, RngNondet};
use proptest::prelude::*;

/// Word-length bound for the machine-driving harnesses. Longer than the
/// Kani proofs use (the fuzzer scales where the model checker cannot).
const MAX_WORD: usize = 6;

fn ok(result: Result<impl Sized, HarnessViolation>) -> Result<(), TestCaseError> {
    match result {
        Ok(_) => Ok(()),
        Err(v) => Err(TestCaseError::fail(v.to_string())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn h_stack_wf_holds(seed in any::<u64>()) {
        ok(h_stack_wf(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_visited_holds(seed in any::<u64>()) {
        ok(h_visited(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_prefix_der_holds(seed in any::<u64>()) {
        ok(h_prefix_der(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_measure_dec_holds(seed in any::<u64>()) {
        ok(h_measure_dec(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_measure_ord_holds(seed in any::<u64>()) {
        ok(h_measure_ord(&mut RngNondet::new(seed)))?;
    }

    #[test]
    fn h_cache_bound_holds(seed in any::<u64>()) {
        ok(h_cache_bound(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_stable_complete_holds(seed in any::<u64>()) {
        ok(h_stable_complete(&mut RngNondet::new(seed)))?;
    }

    #[test]
    fn h_decide_sound_holds(seed in any::<u64>()) {
        ok(h_decide_sound(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_recover_sound_holds(seed in any::<u64>()) {
        ok(h_recover_sound(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_audit_sound_holds(seed in any::<u64>()) {
        ok(h_audit_sound(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_cost_sound_holds(seed in any::<u64>()) {
        ok(h_cost_sound(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_incr_lex_sound_holds(seed in any::<u64>()) {
        ok(h_incr_lex_sound(&mut RngNondet::new(seed), 8))?;
    }

    /// Satellite of `H-MEASURE-DEC`: not only does `meas` decrease
    /// lexicographically at every step, each machine step *kind* moves
    /// the component the paper's Lemma 4.2 case analysis says it moves —
    /// consume shrinks `tokens_remaining`, push keeps the token count
    /// and strictly shrinks `stackScore` (the §4.3 exponent race), and
    /// return keeps the token count while shrinking score or height.
    #[test]
    fn measure_components_are_monotone_per_step_kind(seed in any::<u64>()) {
        let mut nd = RngNondet::new(seed);
        let t = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
        let word = grammars::draw_word(&mut nd, t, MAX_WORD);
        let g = &t.grammar;
        let total = word.len();
        let mut cache = SllCache::new();
        let mut machine = Machine::new(g, &t.analysis, &word);
        let mut prev = meas(g, machine.state(), total);
        let mut steps = 0u32;
        loop {
            steps += 1;
            prop_assert!(steps < 100_000, "machine exceeded the step ceiling");
            let before = (machine.state().cursor, machine.state().stack_height());
            match machine.step(&mut cache) {
                StepResult::Cont => {
                    let after = (machine.state().cursor, machine.state().stack_height());
                    let now = meas(g, machine.state(), total);
                    prop_assert!(now < prev, "measure did not decrease: {now} >= {prev}");
                    if after.0 > before.0 {
                        prop_assert!(now.tokens_remaining < prev.tokens_remaining,
                            "consume step did not shrink tokens_remaining");
                    } else if after.1 > before.1 {
                        prop_assert_eq!(now.tokens_remaining, prev.tokens_remaining);
                        prop_assert!(now.stack_score < prev.stack_score,
                            "push step did not shrink stackScore");
                    } else {
                        prop_assert!(after.1 < before.1, "Cont step changed nothing");
                        prop_assert_eq!(now.tokens_remaining, prev.tokens_remaining);
                        prop_assert!(
                            now.stack_score < prev.stack_score
                                || (now.stack_score == prev.stack_score
                                    && now.stack_height < prev.stack_height),
                            "return step shrank neither stackScore nor height");
                    }
                    prev = now;
                }
                _ => break,
            }
        }
    }

    /// Satellite: `BigNat` addition agrees with `u128` arithmetic across
    /// the word-size boundary, with the strategy biased toward the carry
    /// edges (`u64::MAX`, `2⁶³`).
    #[test]
    fn bignat_add_matches_u128_at_word_boundaries(
        a in boundary_u64(), b in boundary_u64()
    ) {
        let mut n = BigNat::from(a);
        n.add_assign(&BigNat::from(b));
        prop_assert_eq!(n, bignat_from_u128(u128::from(a) + u128::from(b)));
    }

    /// Satellite: `BigNat` limb multiplication agrees with `u128`
    /// arithmetic across the word-size boundary, and `Ord` on the results
    /// agrees with the integer order.
    #[test]
    fn bignat_mul_and_ord_match_u128_at_word_boundaries(
        a in boundary_u64(), b in boundary_u64(), f in boundary_u64()
    ) {
        let mut x = BigNat::from(a);
        x.mul_u64_assign(f);
        let mut y = BigNat::from(b);
        y.mul_u64_assign(f);
        let xi = u128::from(a) * u128::from(f);
        let yi = u128::from(b) * u128::from(f);
        prop_assert_eq!(&x, &bignat_from_u128(xi));
        prop_assert_eq!(&y, &bignat_from_u128(yi));
        prop_assert_eq!(x.cmp(&y), xi.cmp(&yi));
    }
}

/// A `u64` strategy weighted toward the carry/overflow edges of the word
/// size, where limb arithmetic bugs live.
fn boundary_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(1u64 << 63),
        Just((1u64 << 63) - 1),
        any::<u64>(),
    ]
}

/// Reference construction of a two-limb `BigNat` from a `u128`, built
/// only from `From<u64>` and the shift-by-2⁶⁴ identity.
fn bignat_from_u128(v: u128) -> BigNat {
    let mut hi = BigNat::from((v >> 64) as u64);
    hi.mul_u64_assign(1 << 32);
    hi.mul_u64_assign(1 << 32);
    hi.add_assign(&BigNat::from(v as u64));
    hi
}

/// Aggregates one harness across a deterministic seed range and returns
/// the combined step-kind counters.
fn aggregate(
    mut run: impl FnMut(&mut RngNondet) -> Result<StepKinds, HarnessViolation>,
) -> StepKinds {
    let mut total = StepKinds::default();
    for seed in 0..512u64 {
        let mut nd = RngNondet::new(seed);
        let kinds = run(&mut nd).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        total.absorb(&kinds);
    }
    total
}

#[test]
fn h_stack_wf_covers_all_step_kinds() {
    let total = aggregate(|nd| h_stack_wf(nd, MAX_WORD));
    assert!(
        total.covers_all_kinds(),
        "H-STACK-WF left a step kind unexercised: {total:?}"
    );
}

#[test]
fn h_measure_dec_covers_all_step_kinds() {
    let total = aggregate(|nd| h_measure_dec(nd, MAX_WORD));
    assert!(
        total.covers_all_kinds(),
        "H-MEASURE-DEC left a step kind unexercised: {total:?}"
    );
}

#[test]
fn h_cost_sound_covers_both_outcomes() {
    let total = aggregate(|nd| h_cost_sound(nd, MAX_WORD));
    assert!(
        total.accepts > 0 && total.rejects > 0,
        "H-COST-SOUND never exercised both accept and reject: {total:?}"
    );
}

/// The deterministic leg of `H-COST-SOUND`: replay the certified bound
/// against real metered parses of all four bundled languages
/// (JSON, XML, DOT, Python), not just templates and sampled grammars.
/// Every corpus file must parse within `CostModel::bound_for(n)` with
/// zero `on_cost_check` violations — the same obligation `costar cost`
/// certifies and `--max-steps auto` relies on.
/// The deterministic leg of `H-INCR-LEX-SOUND`: replay edit sessions
/// against the real DFA lexers of all four bundled languages, not just
/// the harness's lexer templates. Each corpus file takes a seeded burst
/// of edits whose replacements are slices copied out of the file itself
/// — some splice cleanly, some fail to lex (exercising error safety) —
/// and after every edit the spliced token vector must be byte-identical
/// to a from-scratch lex. Python participates at the DFA level with
/// newline-free content: its INDENT/DEDENT synthesis sits *above* the
/// lexer this claim is about (`Language::incremental_lexing` is how the
/// CLI routes around it).
#[test]
fn h_incr_lex_sound_replays_on_bundled_languages() {
    use costar::{Edit, EditSession};
    for (lang, generate) in costar_langs::all_languages() {
        for (i, src) in costar_langs::corpus(generate, 0x1EC5, 3, 400)
            .iter()
            .enumerate()
        {
            let src = if lang.incremental_lexing() {
                src.clone()
            } else {
                src.replace('\n', " ")
            };
            let mut session = EditSession::new(lang.lexer(), &src)
                .unwrap_or_else(|e| panic!("{} corpus file {i}: {e}", lang.name));
            let mut nd = RngNondet::new(0x1EC5 ^ i as u64);
            for round in 0..12 {
                // Snap arbitrary offsets down to char boundaries so the
                // edit is well-formed whatever the generator emitted.
                let boundary = |s: &str, mut at: usize| {
                    while !s.is_char_boundary(at) {
                        at -= 1;
                    }
                    at
                };
                let len = session.source().len();
                let start = boundary(session.source(), nd.choose(len + 1));
                let end = boundary(session.source(), start + nd.choose(len - start + 1));
                let from = boundary(session.source(), nd.choose(len + 1));
                let to = boundary(session.source(), from + nd.choose((len - from).min(12) + 1));
                let replacement = session.source()[from..to].to_owned();
                check_incremental_edit(
                    "H-INCR-LEX-SOUND",
                    lang.lexer(),
                    &mut session,
                    &Edit::new(start..end, replacement),
                )
                .unwrap_or_else(|v| panic!("{} file {i}, edit {round}: {v}", lang.name));
            }
        }
    }
}

#[test]
fn h_cost_sound_replays_on_bundled_languages() {
    for (lang, generate) in costar_langs::all_languages() {
        let g = lang.grammar();
        let analysis = GrammarAnalysis::compute(g);
        for (i, src) in costar_langs::corpus(generate, 0xC057, 4, 400)
            .iter()
            .enumerate()
        {
            let word = lang
                .tokenize(src)
                .unwrap_or_else(|e| panic!("{} corpus file {i}: {e}", lang.name));
            check_cost_certificate("H-COST-SOUND", g, &analysis, &word).unwrap_or_else(|v| {
                panic!("{} corpus file {i} ({} tokens): {v}", lang.name, word.len())
            });
        }
    }
}
