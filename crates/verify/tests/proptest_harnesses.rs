//! The proptest driver for the dual-mode harnesses: every harness body
//! from `costar_verify::harness` run across many RNG seeds, plus the
//! coverage obligations — `H-STACK-WF` and `H-MEASURE-DEC` must have
//! exercised *all* machine step kinds (push, consume, return) and both
//! final results (accept, reject) across the aggregate, so the harnesses
//! cannot silently go vacuous.

use costar_verify::harness::{
    h_audit_sound, h_cache_bound, h_decide_sound, h_measure_dec, h_measure_ord, h_prefix_der,
    h_recover_sound, h_stable_complete, h_stack_wf, h_visited, HarnessViolation, StepKinds,
};
use costar_verify::nondet::RngNondet;
use proptest::prelude::*;

/// Word-length bound for the machine-driving harnesses. Longer than the
/// Kani proofs use (the fuzzer scales where the model checker cannot).
const MAX_WORD: usize = 6;

fn ok(result: Result<impl Sized, HarnessViolation>) -> Result<(), TestCaseError> {
    match result {
        Ok(_) => Ok(()),
        Err(v) => Err(TestCaseError::fail(v.to_string())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn h_stack_wf_holds(seed in any::<u64>()) {
        ok(h_stack_wf(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_visited_holds(seed in any::<u64>()) {
        ok(h_visited(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_prefix_der_holds(seed in any::<u64>()) {
        ok(h_prefix_der(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_measure_dec_holds(seed in any::<u64>()) {
        ok(h_measure_dec(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_measure_ord_holds(seed in any::<u64>()) {
        ok(h_measure_ord(&mut RngNondet::new(seed)))?;
    }

    #[test]
    fn h_cache_bound_holds(seed in any::<u64>()) {
        ok(h_cache_bound(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_stable_complete_holds(seed in any::<u64>()) {
        ok(h_stable_complete(&mut RngNondet::new(seed)))?;
    }

    #[test]
    fn h_decide_sound_holds(seed in any::<u64>()) {
        ok(h_decide_sound(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_recover_sound_holds(seed in any::<u64>()) {
        ok(h_recover_sound(&mut RngNondet::new(seed), MAX_WORD))?;
    }

    #[test]
    fn h_audit_sound_holds(seed in any::<u64>()) {
        ok(h_audit_sound(&mut RngNondet::new(seed), MAX_WORD))?;
    }
}

/// Aggregates one harness across a deterministic seed range and returns
/// the combined step-kind counters.
fn aggregate(
    mut run: impl FnMut(&mut RngNondet) -> Result<StepKinds, HarnessViolation>,
) -> StepKinds {
    let mut total = StepKinds::default();
    for seed in 0..512u64 {
        let mut nd = RngNondet::new(seed);
        let kinds = run(&mut nd).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        total.absorb(&kinds);
    }
    total
}

#[test]
fn h_stack_wf_covers_all_step_kinds() {
    let total = aggregate(|nd| h_stack_wf(nd, MAX_WORD));
    assert!(
        total.covers_all_kinds(),
        "H-STACK-WF left a step kind unexercised: {total:?}"
    );
}

#[test]
fn h_measure_dec_covers_all_step_kinds() {
    let total = aggregate(|nd| h_measure_dec(nd, MAX_WORD));
    assert!(
        total.covers_all_kinds(),
        "H-MEASURE-DEC left a step kind unexercised: {total:?}"
    );
}
