//! # costar-verify — dual-mode proof harnesses for the CoStar machine
//!
//! The Coq development behind the paper *proves* its lemmas; this
//! reproduction *checks* them, twice, from one shared statement each:
//!
//! * **Bounded model checking** (`cargo kani`): under `cfg(kani)` the
//!   harness inputs come from `kani::any()`/`kani::assume`, and each
//!   `#[kani::proof]` entry point in the private `proofs` module explores
//!   every input in the bounded space.
//! * **Property fuzzing** (default build): the *same harness bodies* run
//!   under proptest across many RNG seeds — see
//!   `tests/proptest_harnesses.rs`, which also asserts the machine
//!   harnesses exercised every step kind (push/consume/return and both
//!   final results).
//!
//! The two modes meet in the [`nondet::Nondet`] trait: one body per
//! lemma, two drivers, no drift. The harness-ID → paper-lemma table lives
//! in `DESIGN.md` §7; the IDs themselves (`H-STACK-WF`, `H-MEASURE-DEC`,
//! …) are documented on the functions in [`harness`].

#![warn(missing_docs)]

pub mod grammars;
pub mod harness;
pub mod nondet;
#[cfg(kani)]
mod proofs;
