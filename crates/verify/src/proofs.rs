//! `#[kani::proof]` entry points: the bounded-model-checking driver for
//! every harness in [`crate::harness`].
//!
//! Compiled only by `cargo kani` (which defines `cfg(kani)`). Word
//! lengths are kept small — the machine loop is the unwinding frontier,
//! and each extra token multiplies the symbolic state space. The proptest
//! driver runs the same bodies with longer words and many seeds; Kani's
//! role is exhaustiveness *within* the small bound, not scale.

use crate::harness;
use crate::nondet::KaniNondet;

/// Words this long keep the machine's unwinding within the harness bound
/// while still reaching pushes, consumes, returns, and both outcomes.
const MAX_WORD: usize = 3;

#[kani::proof]
#[kani::unwind(64)]
fn proof_stack_wf() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_stack_wf(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_visited() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_visited(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_prefix_der() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_prefix_der(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_measure_dec() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_measure_dec(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(32)]
fn proof_measure_ord() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_measure_ord(&mut nd) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_cache_bound() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_cache_bound(&mut nd, 2) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_stable_complete() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_stable_complete(&mut nd) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_decide_sound() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_decide_sound(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(300)]
fn proof_audit_sound() {
    let mut nd = KaniNondet;
    // The audit oracles are bounded searches, not machine runs: their
    // worklist loops legitimately outlive the machine-step bound, so
    // this proof carries a wider unwinding than its siblings.
    if let Err(v) = harness::h_audit_sound(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_recover_sound() {
    let mut nd = KaniNondet;
    // Recovery replays each word twice (plain + recovering) and then a
    // budget-capped third run, so the word bound stays at the minimum
    // that still reaches both the identity and the recovery legs.
    if let Err(v) = harness::h_recover_sound(&mut nd, 2) {
        panic!("{v}");
    }
}
