//! `#[kani::proof]` entry points: the bounded-model-checking driver for
//! every harness in [`crate::harness`].
//!
//! Compiled only by `cargo kani` (which defines `cfg(kani)`). Word
//! lengths are kept small — the machine loop is the unwinding frontier,
//! and each extra token multiplies the symbolic state space. The proptest
//! driver runs the same bodies with longer words and many seeds; Kani's
//! role is exhaustiveness *within* the small bound, not scale.

use crate::harness;
use crate::nondet::KaniNondet;

/// Words this long keep the machine's unwinding within the harness bound
/// while still reaching pushes, consumes, returns, and both outcomes.
const MAX_WORD: usize = 3;

#[kani::proof]
#[kani::unwind(64)]
fn proof_stack_wf() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_stack_wf(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_visited() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_visited(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_prefix_der() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_prefix_der(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_measure_dec() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_measure_dec(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(32)]
fn proof_measure_ord() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_measure_ord(&mut nd) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_cache_bound() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_cache_bound(&mut nd, 2) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_stable_complete() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_stable_complete(&mut nd) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_decide_sound() {
    let mut nd = KaniNondet;
    if let Err(v) = harness::h_decide_sound(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(300)]
fn proof_audit_sound() {
    let mut nd = KaniNondet;
    // The audit oracles are bounded searches, not machine runs: their
    // worklist loops legitimately outlive the machine-step bound, so
    // this proof carries a wider unwinding than its siblings.
    if let Err(v) = harness::h_audit_sound(&mut nd, MAX_WORD) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(300)]
fn proof_cost_sound() {
    let mut nd = KaniNondet;
    // Like the audit proof, the certificate round-trip walks serialized
    // JSON character by character, so the unwinding is wider than the
    // machine-step bound alone would need.
    if let Err(v) = harness::h_cost_sound(&mut nd, 2) {
        panic!("{v}");
    }
}

/// The per-step accounting lemma behind `CostModel::bound_for`, over
/// fully symbolic `u64`s: for any pushes-per-epoch constant `c ≥ 1` and
/// certified lookahead `k`, the closed form `a·n + b` with
/// `a = 1 + c·(k+3)`, `b = c·(k+3) + k + 2` dominates the raw step
/// decomposition
///
/// ```text
/// steps ≤ (n + 2·pushes + 1)          machine steps: one per consume,
///                                     push, and return, plus final EOF
///       + (pushes + 1)·(k + 1)        prediction: ≤ one decision per
///                                     push epoch, each ≤ k+1 steps
/// ```
///
/// whenever `pushes ≤ (n+1)·c`, with every operation saturating exactly
/// as the shipped code computes it; and the bound is monotone in `n` on
/// both the linear and the quadratic (unbounded-lookahead) branch.
#[kani::proof]
fn proof_cost_accounting() {
    use costar_grammar::analysis::CostModel;
    use costar_grammar::NonTerminal;

    let c: u64 = kani::any();
    let k: u64 = kani::any();
    let n: u64 = kani::any();
    kani::assume(c >= 1);

    let per_push = c.saturating_mul(k.saturating_add(3));
    let mut model = CostModel {
        nonterminals: 1,
        max_rhs_nts: 1,
        epsilon_max: 0,
        nullable_hazard: false,
        pushes_per_epoch: c,
        k_max: k,
        unbounded: Vec::new(),
        superlinear: Vec::new(),
        a: 1u64.saturating_add(per_push),
        b: per_push.saturating_add(k).saturating_add(2),
    };

    let pushes: u64 = kani::any();
    kani::assume(pushes <= n.saturating_add(1).saturating_mul(c));
    let decisions: u64 = kani::any();
    kani::assume(decisions <= pushes.saturating_add(1));

    let machine = n.saturating_add(pushes.saturating_mul(2)).saturating_add(1);
    let prediction = decisions.saturating_mul(k.saturating_add(1));
    let steps = machine.saturating_add(prediction);

    assert!(steps <= model.bound_for(n), "decomposition exceeds a·n + b");
    assert!(
        model.bound_for(n) <= model.bound_for(n.saturating_add(1)),
        "linear bound not monotone"
    );

    // The quadratic envelope (unbounded lookahead) is monotone too.
    model.unbounded = vec![NonTerminal::from_index(0)];
    model.a = 0;
    model.b = 0;
    assert!(
        model.bound_for(n) <= model.bound_for(n.saturating_add(1)),
        "quadratic envelope not monotone"
    );
}

#[kani::proof]
#[kani::unwind(300)]
fn proof_incr_lex_sound() {
    let mut nd = KaniNondet;
    // Two fragments of at most two bytes each keep the DFA scan loops
    // tiny; the wide unwinding covers the one-time lexer compilation
    // (regex parsing walks the pattern strings character by character).
    if let Err(v) = harness::h_incr_lex_sound(&mut nd, 2) {
        panic!("{v}");
    }
}

#[kani::proof]
#[kani::unwind(64)]
fn proof_recover_sound() {
    let mut nd = KaniNondet;
    // Recovery replays each word twice (plain + recovering) and then a
    // budget-capped third run, so the word bound stays at the minimum
    // that still reaches both the identity and the recovery legs.
    if let Err(v) = harness::h_recover_sound(&mut nd, 2) {
        panic!("{v}");
    }
}
