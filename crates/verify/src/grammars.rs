//! The template grammar family the machine harnesses range over.
//!
//! Bounded model checking cannot enumerate arbitrary grammars, so the
//! machine-driving harnesses quantify over a fixed family of templates —
//! each chosen to force a different machine behavior — crossed with a
//! nondeterministic input word. The family covers:
//!
//! * `fig2` — the paper's running example (Fig. 2): genuine prediction
//!   between two alternatives sharing a left factor.
//! * `nullable` — nullable nonterminals: pushes that return without
//!   consuming, the empty word, and the §3.5 nullable-skip paths.
//! * `ambig` — the paper's Fig. 6 shape: a genuinely ambiguous word, so
//!   the `unique` flag and `Ambig` outcomes are exercised.
//! * `sll-conflict` — a grammar whose SLL simulation conflicts and fails
//!   over to full LL prediction (§3.4).
//! * `rlist` — right recursion: unbounded stack growth with input length,
//!   long push/return chains.
//!
//! Each template records known member words so accept paths are drawn
//! with high probability; arbitrary words over the terminal alphabet
//! cover the reject paths.

use crate::nondet::Nondet;
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{Grammar, GrammarBuilder, Terminal, Token};
use std::sync::OnceLock;

/// One template: a grammar, its precomputed analyses, and a few known
/// member words (as terminal names).
#[derive(Debug)]
pub struct Template {
    /// Short template name (for diagnostics).
    pub name: &'static str,
    /// The grammar itself.
    pub grammar: Grammar,
    /// All analyses, computed once.
    pub analysis: GrammarAnalysis,
    /// Known words in the grammar's language, by terminal name.
    members: Vec<Vec<&'static str>>,
    /// The terminal alphabet, cached for word drawing.
    alphabet: Vec<Terminal>,
}

impl Template {
    fn new(name: &'static str, grammar: Grammar, members: Vec<Vec<&'static str>>) -> Self {
        let analysis = GrammarAnalysis::compute(&grammar);
        let alphabet = grammar.symbols().terminals().collect();
        Template {
            name,
            grammar,
            analysis,
            members,
            alphabet,
        }
    }

    /// One of the template's known member words, as tokens.
    pub fn member_word(&self, i: usize) -> Vec<Token> {
        self.members[i % self.members.len()]
            .iter()
            .map(|name| self.token(name))
            .collect()
    }

    /// Number of recorded member words.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    fn token(&self, name: &str) -> Token {
        let t = self
            .grammar
            .symbols()
            .lookup_terminal(name)
            .unwrap_or_else(|| panic!("template {}: unknown terminal {name}", self.name));
        Token::new(t, name)
    }
}

/// Number of templates in the family.
pub const NUM_TEMPLATES: usize = 5;

/// The template family, built once.
pub fn templates() -> &'static [Template] {
    static FAMILY: OnceLock<Vec<Template>> = OnceLock::new();
    FAMILY.get_or_init(build_family)
}

/// The `i`-th template (modulo the family size).
pub fn template(i: usize) -> &'static Template {
    &templates()[i % NUM_TEMPLATES]
}

fn build_family() -> Vec<Template> {
    let fig2 = {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().expect("fig2 template")
    };
    let nullable = {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "B"]);
        gb.rule("A", &[]);
        gb.rule("A", &["a"]);
        gb.rule("B", &[]);
        gb.rule("B", &["b", "B"]);
        gb.start("S").build().expect("nullable template")
    };
    let ambig = {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["X"]);
        gb.rule("S", &["Y"]);
        gb.rule("X", &["a"]);
        gb.rule("Y", &["a"]);
        gb.start("S").build().expect("ambig template")
    };
    let sll_conflict = {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["p", "C1"]);
        gb.rule("S", &["q", "C2"]);
        gb.rule("C1", &["X", "b"]);
        gb.rule("C2", &["X", "a", "b"]);
        gb.rule("X", &["a", "a"]);
        gb.rule("X", &["a"]);
        gb.start("S").build().expect("sll-conflict template")
    };
    let rlist = {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "S"]);
        gb.rule("S", &["e"]);
        gb.start("S").build().expect("rlist template")
    };
    vec![
        Template::new(
            "fig2",
            fig2,
            vec![
                vec!["a", "b", "d"],
                vec!["b", "c"],
                vec!["a", "a", "b", "c"],
            ],
        ),
        Template::new(
            "nullable",
            nullable,
            vec![vec![], vec!["a"], vec!["a", "b", "b"]],
        ),
        Template::new("ambig", ambig, vec![vec!["a"]]),
        Template::new(
            "sll-conflict",
            sll_conflict,
            vec![vec!["q", "a", "a", "b"], vec!["p", "a", "b"]],
        ),
        Template::new("rlist", rlist, vec![vec!["e"], vec!["a", "a", "a", "e"]]),
    ]
}

/// Draws an input word for `t`: with probability one half a known member
/// word (so accept paths are frequent), otherwise an arbitrary word of
/// length at most `max_len` over the template's terminal alphabet (so
/// reject paths at every position are frequent too).
pub fn draw_word<N: Nondet>(nd: &mut N, t: &Template, max_len: usize) -> Vec<Token> {
    if nd.any_bool() {
        return t.member_word(nd.choose(t.num_members()));
    }
    let len = nd.choose(max_len + 1);
    (0..len)
        .map(|_| {
            let a = t.alphabet[nd.choose(t.alphabet.len())];
            Token::new(a, t.grammar.symbols().terminal_name(a))
        })
        .collect()
}

/// A small arbitrary grammar: up to 3 nonterminals (each with at least one
/// production, so construction cannot fail) and up to 3 terminals, with
/// right-hand sides of length at most 3 drawn from the combined symbol
/// pool. Used by the `H-STABLE-COMPLETE` harness to check the stable-frame
/// analysis beyond the hand-picked family. May be left-recursive or
/// ambiguous — fine for a static analysis under test.
pub fn draw_random_grammar<N: Nondet>(nd: &mut N) -> Grammar {
    const NT_NAMES: [&str; 3] = ["N0", "N1", "N2"];
    const T_NAMES: [&str; 3] = ["t0", "t1", "t2"];
    let num_nts = 1 + nd.choose(3);
    let num_ts = 1 + nd.choose(3);
    let mut gb = GrammarBuilder::new();
    for nt in NT_NAMES.iter().take(num_nts) {
        let num_prods = 1 + nd.choose(2);
        for _ in 0..num_prods {
            let len = nd.choose(4);
            let rhs: Vec<&str> = (0..len)
                .map(|_| {
                    let pick = nd.choose(num_nts + num_ts);
                    if pick < num_nts {
                        NT_NAMES[pick]
                    } else {
                        T_NAMES[pick - num_nts]
                    }
                })
                .collect();
            gb.rule(nt, &rhs);
        }
    }
    gb.start("N0")
        .build()
        .expect("every nonterminal has a production, so the build cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nondet::RngNondet;
    use costar_grammar::check_tree;

    #[test]
    fn family_has_expected_shape() {
        let fam = templates();
        assert_eq!(fam.len(), NUM_TEMPLATES);
        let names: Vec<_> = fam.iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            ["fig2", "nullable", "ambig", "sll-conflict", "rlist"]
        );
        for t in fam {
            assert!(
                t.analysis.left_recursion.is_grammar_safe(),
                "template {} must satisfy the non-left-recursion precondition",
                t.name
            );
        }
    }

    #[test]
    fn member_words_parse() {
        for t in templates() {
            for i in 0..t.num_members() {
                let word = t.member_word(i);
                let outcome = costar::parse(&t.grammar, &word);
                let tree = outcome.tree().unwrap_or_else(|| {
                    panic!("template {}: member word {i} did not parse", t.name)
                });
                assert!(check_tree(&t.grammar, t.grammar.start(), &word, tree).is_ok());
            }
        }
    }

    #[test]
    fn drawn_words_respect_length_bound() {
        let mut nd = RngNondet::new(11);
        let t = template(0);
        for _ in 0..100 {
            let w = draw_word(&mut nd, t, 4);
            // Member words may exceed the bound; arbitrary words may not.
            assert!(w.len() <= 4 || t.members.iter().any(|m| m.len() == w.len()));
        }
    }

    #[test]
    fn random_grammars_build_and_analyze() {
        let mut nd = RngNondet::new(23);
        for _ in 0..50 {
            let g = draw_random_grammar(&mut nd);
            let _ = GrammarAnalysis::compute(&g);
            assert!(g.num_productions() >= 1);
        }
    }
}
