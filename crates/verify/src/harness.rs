//! One harness body per paper lemma, usable by both verification modes.
//!
//! Each public `h_*` function restates a CoStar lemma as an executable
//! check over inputs drawn from a [`Nondet`] source. The proptest suite
//! (`tests/proptest_harnesses.rs`) runs every body across many RNG seeds;
//! the `#[kani::proof]` entry points in `crate::proofs` run the *same
//! bodies* over symbolic values. The harness-ID → lemma table lives in
//! `DESIGN.md` §7.
//!
//! | Harness | Paper claim |
//! |---|---|
//! | [`h_stack_wf`] (`H-STACK-WF`) | Lemma 5.2: every step preserves `StacksWf_I` (Fig. 4) |
//! | [`h_visited`] (`H-VISITED`) | §4.1/§5.4.2: visited nonterminals are exactly the open ones |
//! | [`h_prefix_der`] (`H-PREFIX-DER`) | Fig. 5 `UniqeDer_I` (derivation part): the prefix stack parses the consumed input |
//! | [`h_measure_dec`] (`H-MEASURE-DEC`) | Lemma 4.2: every `Cont` step strictly decreases `meas(σ)` |
//! | [`h_measure_ord`] (`H-MEASURE-ORD`) | §4.2–4.3 order algebra: `<₃` is a strict total order and pushes lose the exponent race |
//! | [`h_cache_bound`] (`H-CACHE-BOUND`) | §3.4 eviction safety: capping `Δ` never changes outcomes, and caps hold |
//! | [`h_stable_complete`] (`H-STABLE-COMPLETE`) | §3.5: `StableFrames` equals a brute-force closure enumeration |
//! | [`h_decide_sound`] (`H-DECIDE-SOUND`) | static decision table soundness: the precompiled LL(1) fast path agrees exactly with full prediction and the derivation-counting oracle |
//! | [`h_recover_sound`] (`H-RECOVER-SOUND`) | recovery soundness: accepted words give the byte-identical tree with zero diagnostics; rejected (incl. single-token-corrupted) words terminate with ≥1 diagnostic and a tree spelling the whole input; a `max_recoveries` cap is always honored |
//! | [`h_audit_sound`] (`H-AUDIT-SOUND`) | audit certificate soundness: every certified lookahead bound `k` is minimal (its collide witness replays) and sufficient (no word of length `k` keeps the pair alive, by exhaustive enumeration), dead/shadowed verdicts agree with an independent derivation-search oracle, and the serialized `costar-cert-v1` document round-trips and replays |
//! | [`h_cost_sound`] (`H-COST-SOUND`) | cost certificate soundness: every accepting or rejecting parse of `n` tokens consumes at most `CostModel::bound_for(n)` metered steps, the certified bound is exactly enough fuel (a budgeted re-run is outcome-identical), `bound_for` is monotone in `n`, and the serialized `costar-cost-v1` document round-trips and replays |
//! | [`h_incr_lex_sound`] (`H-INCR-LEX-SOUND`) | incremental-lexing soundness: after any edit, the spliced token vector is byte-identical (kind, lexeme, span) to a from-scratch lex of the edited source, the `unchanged` flag equals token-vector identity, splice accounting partitions the vector, and a failed edit leaves the session untouched |

use crate::grammars::{self, Template};
use crate::nondet::{any_bignat, Nondet};
use costar::bignat::BigNat;
use costar::invariants::{
    check_prefix_derivation, check_stacks_wf, check_visited, InvariantViolation,
};
use costar::measure::{frame_score, meas, stack_score_prime, Measure};
use costar::{
    AbortReason, Budget, Edit, EditError, EditSession, Machine, MetricsObserver, ParseOutcome,
    Parser, PredictionMode, SllCache, StepResult,
};
use costar_grammar::analysis::{
    parse_cert_json, parse_cost_json, replay_certificate, replay_cost_certificate,
    simulate_survivors, to_cert_json, to_cost_json, GrammarAnalysis, PairAudit, Position,
};
use costar_grammar::{check_tree, Grammar, NonTerminal, ProdId, Symbol, Terminal, Token};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// A harness found its lemma violated (or could not set the scene).
/// In proptest mode this fails the test case; in Kani mode the proof
/// asserts the harness returned `Ok`.
#[derive(Debug, Clone)]
pub struct HarnessViolation {
    /// The harness ID, e.g. `H-STACK-WF`.
    pub harness: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for HarnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.harness, self.detail)
    }
}

impl std::error::Error for HarnessViolation {}

fn fail(harness: &'static str, detail: impl Into<String>) -> HarnessViolation {
    HarnessViolation {
        harness,
        detail: detail.into(),
    }
}

/// Which machine operations and final results one harness run exercised.
///
/// The machine has exactly three operations — push, consume, return —
/// plus the accept/reject final configurations (paper §3.3). The proptest
/// suite aggregates these counters across seeds and asserts that
/// `H-STACK-WF` and `H-MEASURE-DEC` covered *every* kind, so a harness
/// that silently stopped reaching (say) return steps fails CI rather than
/// fading into vacuity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepKinds {
    /// Push operations observed (stack height grew).
    pub pushes: u64,
    /// Consume operations observed (cursor advanced).
    pub consumes: u64,
    /// Return operations observed (stack height shrank).
    pub returns: u64,
    /// Runs that ended in a final (accepting) configuration.
    pub accepts: u64,
    /// Runs that ended in rejection.
    pub rejects: u64,
}

impl StepKinds {
    /// Adds another run's counters into this aggregate.
    pub fn absorb(&mut self, other: &StepKinds) {
        self.pushes += other.pushes;
        self.consumes += other.consumes;
        self.returns += other.returns;
        self.accepts += other.accepts;
        self.rejects += other.rejects;
    }

    /// `true` when every operation kind and both final results appear.
    pub fn covers_all_kinds(&self) -> bool {
        self.pushes > 0
            && self.consumes > 0
            && self.returns > 0
            && self.accepts > 0
            && self.rejects > 0
    }
}

/// Backstop against a broken machine looping forever in RNG mode (the
/// measure proof is exactly what guarantees this is never hit).
const STEP_CEILING: u64 = 100_000;

struct Scenario {
    template: &'static Template,
    word: Vec<Token>,
}

fn draw_scenario<N: Nondet>(nd: &mut N, max_word: usize) -> Scenario {
    let template = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
    let word = grammars::draw_word(nd, template, max_word);
    Scenario { template, word }
}

fn classify(
    before: (usize, usize),
    after: (usize, usize),
    kinds: &mut StepKinds,
    harness: &'static str,
) -> Result<(), HarnessViolation> {
    let (cursor0, height0) = before;
    let (cursor1, height1) = after;
    if cursor1 > cursor0 {
        kinds.consumes += 1;
    } else if height1 > height0 {
        kinds.pushes += 1;
    } else if height1 < height0 {
        kinds.returns += 1;
    } else {
        return Err(fail(
            harness,
            "a Cont step changed neither cursor nor stack height",
        ));
    }
    Ok(())
}

/// Drives the machine over a nondeterministic scenario, running `check`
/// on the initial state and after every `Cont` step.
fn drive_with_checker<N: Nondet>(
    nd: &mut N,
    harness: &'static str,
    check: impl Fn(&Grammar, &costar::state::MachineState, &[Token]) -> Result<(), InvariantViolation>,
    max_word: usize,
) -> Result<StepKinds, HarnessViolation> {
    let sc = draw_scenario(nd, max_word);
    let g = &sc.template.grammar;
    let mut cache = SllCache::new();
    let mut machine = Machine::new(g, &sc.template.analysis, &sc.word);
    let mut kinds = StepKinds::default();

    check(g, machine.state(), &sc.word)
        .map_err(|e| fail(harness, format!("initial state: {e}")))?;
    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > STEP_CEILING {
            return Err(fail(harness, "machine exceeded the step ceiling"));
        }
        let before = (machine.state().cursor, machine.state().stack_height());
        match machine.step(&mut cache) {
            StepResult::Cont => {
                let after = (machine.state().cursor, machine.state().stack_height());
                classify(before, after, &mut kinds, harness)?;
                check(g, machine.state(), &sc.word).map_err(|e| {
                    fail(
                        harness,
                        format!("template {}, after step {steps}: {e}", sc.template.name),
                    )
                })?;
            }
            StepResult::Accept(tree) => {
                kinds.accepts += 1;
                check_tree(g, g.start(), &sc.word, &tree)
                    .map_err(|e| fail(harness, format!("accepted tree fails check_tree: {e:?}")))?;
                return Ok(kinds);
            }
            StepResult::Reject(_) => {
                kinds.rejects += 1;
                return Ok(kinds);
            }
            StepResult::Error(e) => {
                // Every template satisfies the non-left-recursion
                // precondition, so errors are unreachable (Theorem 5.8).
                return Err(fail(harness, format!("machine error: {e}")));
            }
            StepResult::Abort(r) => {
                return Err(fail(harness, format!("abort with unlimited budget: {r}")));
            }
        }
    }
}

/// `H-STACK-WF` — Lemma 5.2 / Fig. 4: every reachable machine state
/// satisfies the stack well-formedness invariant `StacksWf_I`.
pub fn h_stack_wf<N: Nondet>(nd: &mut N, max_word: usize) -> Result<StepKinds, HarnessViolation> {
    drive_with_checker(
        nd,
        "H-STACK-WF",
        |g, st, _| check_stacks_wf(g, st),
        max_word,
    )
}

/// `H-VISITED` — §4.1/§5.4.2: every visited nonterminal is open on the
/// suffix stack in every reachable state.
pub fn h_visited<N: Nondet>(nd: &mut N, max_word: usize) -> Result<StepKinds, HarnessViolation> {
    drive_with_checker(nd, "H-VISITED", |_, st, _| check_visited(st), max_word)
}

/// `H-PREFIX-DER` — Fig. 5 `UniqeDer_I`, derivation component: in every
/// reachable state the prefix stack holds well-formed partial trees whose
/// concatenated yield is exactly the consumed input.
pub fn h_prefix_der<N: Nondet>(nd: &mut N, max_word: usize) -> Result<StepKinds, HarnessViolation> {
    drive_with_checker(nd, "H-PREFIX-DER", check_prefix_derivation, max_word)
}

/// `H-MEASURE-DEC` — Lemma 4.2: every `Cont` step strictly decreases the
/// `(tokens, stackScore, height)` measure in the lexicographic order.
pub fn h_measure_dec<N: Nondet>(
    nd: &mut N,
    max_word: usize,
) -> Result<StepKinds, HarnessViolation> {
    const ID: &str = "H-MEASURE-DEC";
    let sc = draw_scenario(nd, max_word);
    let g = &sc.template.grammar;
    let total = sc.word.len();
    let mut cache = SllCache::new();
    let mut machine = Machine::new(g, &sc.template.analysis, &sc.word);
    let mut kinds = StepKinds::default();
    let mut prev = meas(g, machine.state(), total);
    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > STEP_CEILING {
            return Err(fail(ID, "machine exceeded the step ceiling"));
        }
        let before = (machine.state().cursor, machine.state().stack_height());
        match machine.step(&mut cache) {
            StepResult::Cont => {
                let after = (machine.state().cursor, machine.state().stack_height());
                classify(before, after, &mut kinds, ID)?;
                let now = meas(g, machine.state(), total);
                if now >= prev {
                    return Err(fail(
                        ID,
                        format!(
                            "template {}, step {steps}: measure did not decrease ({now} >= {prev})",
                            sc.template.name
                        ),
                    ));
                }
                prev = now;
            }
            StepResult::Accept(_) => {
                kinds.accepts += 1;
                return Ok(kinds);
            }
            StepResult::Reject(_) => {
                kinds.rejects += 1;
                return Ok(kinds);
            }
            StepResult::Error(e) => return Err(fail(ID, format!("machine error: {e}"))),
            StepResult::Abort(r) => {
                return Err(fail(ID, format!("abort with unlimited budget: {r}")))
            }
        }
    }
}

/// `H-MEASURE-ORD` — the order algebra underpinning §4.2–4.3:
///
/// * `<₃` on measure triples is a coherent strict total order
///   (antisymmetric, transitive) over arbitrary multi-limb components;
/// * the first component dominates, the second breaks its ties — the
///   lexicographic laws Lemma 4.2's case analysis leans on;
/// * `bᵉ⁺¹ > k·bᵉ` for every `k < b` — the exponent-race inequality that
///   makes pushes shrink `stackScore` (Lemma 4.3);
/// * `frameScore` strictly drops as the dot advances, and `stackScore′`
///   is the advertised exponent-weighted sum over the reversed stack.
pub fn h_measure_ord<N: Nondet>(nd: &mut N) -> Result<(), HarnessViolation> {
    const ID: &str = "H-MEASURE-ORD";
    let draw_measure = |nd: &mut N| Measure {
        tokens_remaining: nd.choose(1 << 16),
        stack_score: any_bignat(nd),
        stack_height: nd.choose(1 << 16),
    };
    let a = draw_measure(nd);
    let b = draw_measure(nd);
    let c = draw_measure(nd);

    // Coherence: comparing in either direction must agree.
    if a.cmp(&b) != b.cmp(&a).reverse() {
        return Err(fail(ID, format!("cmp incoherent for {a} vs {b}")));
    }
    // Transitivity.
    if a <= b && b <= c && a > c {
        return Err(fail(ID, format!("cmp not transitive over {a}, {b}, {c}")));
    }
    // Lexicographic dominance.
    if a.tokens_remaining < b.tokens_remaining && a >= b {
        return Err(fail(ID, "first component does not dominate"));
    }
    if a.tokens_remaining == b.tokens_remaining && a.stack_score < b.stack_score && a >= b {
        return Err(fail(
            ID,
            "second component does not break first-component ties",
        ));
    }

    // The exponent race: b^(e+1) > k * b^e for 1 <= k < b.
    let base = 2 + nd.choose(8) as u64; // 2..=9
    let exp = nd.choose(7); // 0..=6
    let k = 1 + nd.choose(base as usize - 1) as u64; // 1..b
    let lhs = BigNat::pow(base, exp + 1);
    let mut rhs = BigNat::pow(base, exp);
    rhs.mul_u64_assign(k);
    if lhs <= rhs {
        return Err(fail(ID, format!("{base}^{} !> {k}*{base}^{exp}", exp + 1)));
    }

    // frameScore drops strictly as the dot advances.
    let t = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
    let (pid, _) = {
        let i = nd.choose(t.grammar.num_productions());
        t.grammar.iter().nth(i).expect("production index in range")
    };
    let rhs_arc = t.grammar.rhs_arc(pid);
    if !rhs_arc.is_empty() {
        let dot = nd.choose(rhs_arc.len());
        let fbase = 1 + nd.choose(8) as u64; // >= 1 so b^e > 0
        let fexp = nd.choose(5);
        let before = frame_score(
            &costar::state::SuffixFrame {
                caller: None,
                rhs: rhs_arc.clone(),
                dot,
            },
            fbase,
            fexp,
        );
        let after = frame_score(
            &costar::state::SuffixFrame {
                caller: None,
                rhs: rhs_arc.clone(),
                dot: dot + 1,
            },
            fbase,
            fexp,
        );
        if after >= before {
            return Err(fail(
                ID,
                format!("frameScore did not drop when the dot advanced past {dot}"),
            ));
        }
    }

    // stackScore' really is the exponent-weighted sum, bottom frames
    // weighing one exponent more per level of depth.
    let height = 1 + nd.choose(3);
    let frames: Vec<costar::state::SuffixFrame> = (0..height)
        .map(|_| {
            let i = nd.choose(t.grammar.num_productions());
            let (pid, _) = t.grammar.iter().nth(i).expect("in range");
            let rhs = t.grammar.rhs_arc(pid);
            let dot = nd.choose(rhs.len() + 1);
            costar::state::SuffixFrame {
                caller: None,
                rhs,
                dot,
            }
        })
        .collect();
    let sbase = 1 + nd.choose(8) as u64;
    let sexp = nd.choose(4);
    let got = stack_score_prime(&frames, sbase, sexp);
    let mut want = BigNat::zero();
    for (depth_from_top, frame) in frames.iter().rev().enumerate() {
        want.add_assign(&frame_score(frame, sbase, sexp + depth_from_top));
    }
    if got != want {
        return Err(fail(ID, format!("stackScore' mismatch: {got} != {want}")));
    }
    Ok(())
}

/// `H-CACHE-BOUND` — §3.4 eviction safety plus the capacity contract:
///
/// * a capacity-capped cache (including capacity 0, "cache off") yields
///   outcomes identical to the unbounded cache, on fresh *and* reused
///   caches across consecutive words;
/// * once no prediction is in flight, re-enforcing the cap leaves at most
///   `cap` resident states;
/// * `LlOnly` prediction (no cache at all) agrees with `Adaptive` — the
///   §3.4 claim that the cache is a pure memo.
pub fn h_cache_bound<N: Nondet>(nd: &mut N, max_word: usize) -> Result<(), HarnessViolation> {
    const ID: &str = "H-CACHE-BOUND";
    let t = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
    let word1 = grammars::draw_word(nd, t, max_word);
    let word2 = grammars::draw_word(nd, t, max_word);
    let cap = nd.choose(5); // 0..=4

    let run = |word: &[Token], cache: &mut SllCache, mode: PredictionMode| -> ParseOutcome {
        Machine::with_mode(&t.grammar, &t.analysis, word, mode).run(cache)
    };

    // Unbounded baselines (fresh cache each, like CoStar as published).
    let mut fresh1 = SllCache::new();
    let base1 = run(&word1, &mut fresh1, PredictionMode::Adaptive);
    let mut fresh2 = SllCache::new();
    let base2 = run(&word2, &mut fresh2, PredictionMode::Adaptive);

    // One bounded cache reused across both words (the ANTLR-style policy).
    let mut bounded = SllCache::bounded(cap);
    let got1 = run(&word1, &mut bounded, PredictionMode::Adaptive);
    let got2 = run(&word2, &mut bounded, PredictionMode::Adaptive);
    if got1 != base1 {
        return Err(fail(
            ID,
            format!(
                "template {}, cap {cap}: bounded outcome diverged on word 1 ({got1:?} vs {base1:?})",
                t.name
            ),
        ));
    }
    if got2 != base2 {
        return Err(fail(
            ID,
            format!(
                "template {}, cap {cap}: bounded reused cache diverged on word 2 ({got2:?} vs {base2:?})",
                t.name
            ),
        ));
    }

    if cap == 0 {
        // Cache off: nothing is memoized, so nothing is ever served.
        let stats = bounded.stats();
        if stats.hits != 0 || stats.evictions != 0 {
            return Err(fail(
                ID,
                format!("disabled cache served hits or evicted: {stats:?}"),
            ));
        }
    } else {
        // With no prediction in flight, re-enforcing the cap must leave at
        // most `cap` resident states.
        bounded.set_capacity(Some(cap), None);
        let resident = bounded.stats().states;
        if resident > cap {
            return Err(fail(
                ID,
                format!("cap {cap} but {resident} states resident at rest"),
            ));
        }
    }

    // LL-only agrees with adaptive prediction on language membership,
    // ambiguity labeling, and the tree itself. (Reject *diagnostics* may
    // differ: the two strategies notice a dead end at different points.)
    let mut scratch = SllCache::new();
    let ll = run(&word1, &mut scratch, PredictionMode::LlOnly);
    let agree = match (&ll, &base1) {
        (ParseOutcome::Reject(_), ParseOutcome::Reject(_)) => true,
        _ => ll == base1,
    };
    if !agree {
        return Err(fail(
            ID,
            format!(
                "template {}: LlOnly diverged from Adaptive ({ll:?} vs {base1:?})",
                t.name
            ),
        ));
    }
    Ok(())
}

/// `H-STABLE-COMPLETE` — §3.5: for every nonterminal, the statically
/// computed [`StableFrames`](costar_grammar::analysis::StableFrames)
/// destinations equal a brute-force worklist enumeration of the
/// closure-reachable stable positions. Runs over a nondeterministically
/// chosen template *or* a small arbitrary grammar.
pub fn h_stable_complete<N: Nondet>(nd: &mut N) -> Result<(), HarnessViolation> {
    const ID: &str = "H-STABLE-COMPLETE";
    let (g, analysis);
    let owned;
    let owned_analysis;
    if nd.any_bool() {
        let t = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
        g = &t.grammar;
        analysis = &t.analysis;
    } else {
        owned = grammars::draw_random_grammar(nd);
        owned_analysis = GrammarAnalysis::compute(&owned);
        g = &owned;
        analysis = &owned_analysis;
    }
    for x in g.symbols().nonterminals() {
        let (want_positions, want_can_end) = brute_stable_dests(g, analysis, x);
        let got = analysis.stable_frames.dests(x);
        let got_positions: BTreeSet<Position> = got.positions.iter().copied().collect();
        if got_positions != want_positions || got.can_end != want_can_end {
            return Err(fail(
                ID,
                format!(
                    "stable dests for {} disagree with brute force: \
                     got {} positions (can_end {}), want {} (can_end {})",
                    g.symbols().nonterminal_name(x),
                    got_positions.len(),
                    got.can_end,
                    want_positions.len(),
                    want_can_end,
                ),
            ));
        }
    }
    Ok(())
}

/// `H-DECIDE-SOUND` — soundness of the static decision table's fast
/// path: for any non-left-recursive grammar (template or random) and any
/// input word,
///
/// * the parse with the precompiled LL(1) fast path enabled
///   (`PredictionMode::Adaptive`) and disabled
///   (`PredictionMode::AdaptiveNoStatic`) agree on the outcome variant
///   and, on accept, return byte-identical trees (reject *diagnostics*
///   may differ — the fast path notices a dead end at the decision
///   point, full prediction sometimes later);
/// * both agree with the [`count_trees`](costar_baselines::count_trees)
///   derivation-counting oracle on language membership.
///
/// Left-recursive random grammars are skipped: the paper's correctness
/// theorems (and hence the fast path's contract) presuppose the
/// non-left-recursion precondition, under which `Error` outcomes are
/// unreachable.
pub fn h_decide_sound<N: Nondet>(nd: &mut N, max_word: usize) -> Result<(), HarnessViolation> {
    const ID: &str = "H-DECIDE-SOUND";
    let owned;
    let owned_analysis;
    let (g, analysis, word): (&Grammar, &GrammarAnalysis, Vec<Token>);
    if nd.any_bool() {
        let t = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
        g = &t.grammar;
        analysis = &t.analysis;
        word = grammars::draw_word(nd, t, max_word);
    } else {
        owned = grammars::draw_random_grammar(nd);
        owned_analysis = GrammarAnalysis::compute(&owned);
        g = &owned;
        analysis = &owned_analysis;
        let alphabet: Vec<_> = g.symbols().terminals().collect();
        // A random grammar may use no terminal at all; the only word over
        // an empty alphabet is the empty word.
        let len = if alphabet.is_empty() {
            0
        } else {
            nd.choose(max_word + 1)
        };
        word = (0..len)
            .map(|_| {
                let a = alphabet[nd.choose(alphabet.len())];
                Token::new(a, g.symbols().terminal_name(a))
            })
            .collect();
    }
    if !analysis.left_recursion.is_grammar_safe() {
        return Ok(()); // outside the theorem's precondition
    }

    let run = |mode: PredictionMode| -> ParseOutcome {
        let mut cache = SllCache::new();
        Machine::with_mode(g, analysis, &word, mode).run(&mut cache)
    };
    let fast = run(PredictionMode::Adaptive);
    let full = run(PredictionMode::AdaptiveNoStatic);

    let agree = match (&fast, &full) {
        (ParseOutcome::Reject(_), ParseOutcome::Reject(_)) => true,
        _ => fast == full,
    };
    if !agree {
        return Err(fail(
            ID,
            format!("fast path diverged from full prediction: {fast:?} vs {full:?}"),
        ));
    }

    let oracle = costar_baselines::count_trees(g, &word);
    let expect_member = oracle.is_member();
    let got_member = matches!(fast, ParseOutcome::Unique(_) | ParseOutcome::Ambig(_));
    if expect_member != got_member {
        return Err(fail(
            ID,
            format!("membership disagrees with the oracle: parser {fast:?}, oracle {oracle:?}"),
        ));
    }
    Ok(())
}

/// `H-RECOVER-SOUND` — soundness of the syntax-error-recovery layer
/// (`Parser::parse_recovering`), over a nondeterministic template, an
/// arbitrary word, *and* a single-token corruption (delete / insert /
/// swap) of a known member word:
///
/// * **Identity on accepted words**: when `Parser::parse` accepts,
///   `parse_recovering` returns the *byte-identical* tree, zero
///   diagnostics, and the identical outcome — recovery never perturbs a
///   clean parse.
/// * **Recovery on rejected words**: when `Parser::parse` rejects,
///   `parse_recovering` terminates with at least one diagnostic, an
///   error-annotated tree whose yield (counting tokens absorbed into
///   error nodes) spells the entire input, and a `Reject` outcome
///   carrying the first diagnostic's reason.
/// * **Budget honored**: with `Budget::with_max_recoveries(k)` the
///   recovered parse never records more than `k` diagnostics, and any
///   abort is precisely `AbortReason::RecoveryLimit { limit: k }`.
pub fn h_recover_sound<N: Nondet>(nd: &mut N, max_word: usize) -> Result<(), HarnessViolation> {
    const ID: &str = "H-RECOVER-SOUND";
    let t = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
    let mut parser = Parser::with_analysis(t.grammar.clone(), t.analysis.clone());

    // Arbitrary word: half member words (exercising the identity leg),
    // half random words (exercising the recovery leg).
    let word = grammars::draw_word(nd, t, max_word);
    check_recovery_against_baseline(ID, &mut parser, &word)?;

    // Single-token corruption of a known member word — the deterministic
    // corpus-corruption tests writ nondeterministic.
    let member = t.member_word(nd.choose(t.num_members()));
    let corrupted = corrupt_word(nd, &t.grammar, &member);
    check_recovery_against_baseline(ID, &mut parser, &corrupted)?;

    // The recovery cap is a hard bound, whatever the input.
    let limit = nd.choose(3) as u64; // 0..=2
    let mut bounded = Parser::with_analysis(t.grammar.clone(), t.analysis.clone());
    bounded.set_budget(Budget::unlimited().with_max_recoveries(limit));
    let capped = bounded.parse_recovering(&corrupted);
    if capped.diagnostics.len() as u64 > limit {
        return Err(fail(
            ID,
            format!(
                "template {}: cap {limit} but {} diagnostics recorded",
                t.name,
                capped.diagnostics.len()
            ),
        ));
    }
    match &capped.outcome {
        ParseOutcome::Aborted(AbortReason::RecoveryLimit { limit: l }) if *l == limit => {}
        ParseOutcome::Aborted(other) => {
            return Err(fail(
                ID,
                format!(
                    "template {}: capped run aborted for the wrong reason: {other}",
                    t.name
                ),
            ));
        }
        _ => {} // finished within budget — equally fine
    }
    Ok(())
}

/// The shared obligation of `H-RECOVER-SOUND`: compare one word's plain
/// and recovering parses under an unlimited budget.
fn check_recovery_against_baseline(
    id: &'static str,
    parser: &mut Parser,
    word: &[Token],
) -> Result<(), HarnessViolation> {
    let baseline = parser.parse(word);
    let recovered = parser.parse_recovering(word);
    match &baseline {
        ParseOutcome::Unique(tree) | ParseOutcome::Ambig(tree) => {
            if !recovered.diagnostics.is_empty() {
                return Err(fail(
                    id,
                    format!(
                        "accepted word produced {} diagnostics",
                        recovered.diagnostics.len()
                    ),
                ));
            }
            if recovered.tree() != Some(tree) {
                return Err(fail(
                    id,
                    "accepted word: recovered tree is not byte-identical",
                ));
            }
            if recovered.outcome != baseline {
                return Err(fail(
                    id,
                    format!(
                        "accepted word: outcome diverged ({:?} vs {baseline:?})",
                        recovered.outcome
                    ),
                ));
            }
        }
        ParseOutcome::Reject(_) => {
            if recovered.diagnostics.is_empty() {
                return Err(fail(id, "rejected word produced no diagnostics"));
            }
            if !matches!(recovered.outcome, ParseOutcome::Reject(_)) {
                return Err(fail(
                    id,
                    format!(
                        "rejected word: recovered outcome is {:?}, not Reject",
                        recovered.outcome
                    ),
                ));
            }
            let tree = recovered
                .tree()
                .ok_or_else(|| fail(id, "rejected word recovered with no tree"))?;
            if !tree.has_errors() {
                return Err(fail(id, "recovered tree carries no error node"));
            }
            let yielded: Vec<Terminal> = tree.yield_tokens().iter().map(Token::terminal).collect();
            let want: Vec<Terminal> = word.iter().map(Token::terminal).collect();
            if yielded != want {
                return Err(fail(
                    id,
                    format!(
                        "recovered yield does not spell the input ({} vs {} tokens)",
                        yielded.len(),
                        want.len()
                    ),
                ));
            }
        }
        other => {
            return Err(fail(
                id,
                format!("plain parse returned {other:?} with an unlimited budget"),
            ));
        }
    }
    Ok(())
}

/// Applies one token-level mutation — delete, insert, or adjacent swap —
/// at a nondeterministic position. The result may or may not still be in
/// the language (an ambiguous grammar can absorb an insertion); the
/// harness branches on the plain parser's verdict, so both cases carry
/// their weight.
fn corrupt_word<N: Nondet>(nd: &mut N, g: &Grammar, word: &[Token]) -> Vec<Token> {
    let mut out = word.to_vec();
    let alphabet: Vec<Terminal> = g.symbols().terminals().collect();
    let fresh = |nd: &mut N, alphabet: &[Terminal]| {
        let a = alphabet[nd.choose(alphabet.len())];
        Token::new(a, g.symbols().terminal_name(a))
    };
    match nd.choose(3) {
        0 if !out.is_empty() => {
            out.remove(nd.choose(out.len()));
        }
        2 if out.len() >= 2 => {
            let i = nd.choose(out.len() - 1);
            out.swap(i, i + 1);
        }
        // Insertion is always possible, so it doubles as the fallback for
        // deleting from an empty word or swapping in a word of length < 2.
        _ => {
            let i = nd.choose(out.len() + 1);
            let tok = fresh(nd, &alphabet);
            out.insert(i, tok);
        }
    }
    out
}

/// `H-AUDIT-SOUND` — soundness of the grammar audit pass
/// (`costar audit` / the `costar-cert-v1` certificate), over a
/// nondeterministic template *or* a small arbitrary grammar:
///
/// * **Row coverage**: the audit table carries exactly one row per
///   multi-alternative nonterminal, and the decision-level bound is the
///   `None`-propagating maximum of its pair bounds.
/// * **Minimality**: every finite pair bound `k ≥ 1` carries a collide
///   witness of length `k - 1` after which *both* alternatives still
///   survive — replayed against the live grammar with
///   [`simulate_survivors`], the same primitive the cache loader uses.
///   A recorded resolve witness (length `k`) must leave at most one
///   survivor.
/// * **Sufficiency**: when the alphabet is small enough to enumerate,
///   *no* word of length `k` keeps both alternatives alive — the
///   universal half of "exact" that no single witness can carry (and the
///   reason a *deflated* bound is only caught dynamically, by the
///   engine's `on_certificate_check`).
/// * **Dead verdicts (L009)**: an independent bounded derivation search
///   over sentential forms agrees — an alternative flagged dead derives
///   no terminal word, and whenever the search exhausts conclusively
///   with no word, the audit flagged the alternative.
/// * **Shadowed verdicts (L010)**: every word the shadowed (later)
///   alternative derives within the sampling caps is also derivable by
///   its shadower, checked by an independent bounded membership search.
/// * **Round-trip**: the serialized certificate parses back to an equal
///   table and passes full witness replay ([`replay_certificate`]).
pub fn h_audit_sound<N: Nondet>(nd: &mut N, max_word: usize) -> Result<(), HarnessViolation> {
    const ID: &str = "H-AUDIT-SOUND";
    /// Alphabet^k ceiling for the exhaustive sufficiency check.
    const MAX_ENUM: usize = 256;
    let owned;
    let owned_analysis;
    let (g, analysis): (&Grammar, &GrammarAnalysis);
    if nd.any_bool() {
        let t = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
        g = &t.grammar;
        analysis = &t.analysis;
    } else {
        owned = grammars::draw_random_grammar(nd);
        owned_analysis = GrammarAnalysis::compute(&owned);
        g = &owned;
        analysis = &owned_analysis;
    }
    let audit = &analysis.audit;
    let sf = &analysis.stable_frames;
    let alphabet: Vec<Terminal> = g.symbols().terminals().collect();

    // Row coverage: exactly the multi-alternative nonterminals.
    for x in g.symbols().nonterminals() {
        let multi = g.alternatives(x).len() >= 2;
        if multi != audit.audit(x).is_some() {
            return Err(fail(
                ID,
                format!(
                    "audit row for {} {} but the nonterminal has {} alternatives",
                    g.symbols().nonterminal_name(x),
                    if multi { "missing" } else { "present" },
                    g.alternatives(x).len()
                ),
            ));
        }
    }

    for info in audit.iter() {
        let name = g.symbols().nonterminal_name(info.nonterminal);

        // Decision bound = None-propagating max of the pair bounds.
        let want_k = info
            .pairs
            .iter()
            .try_fold(0usize, |m, p| p.k.map(|k| m.max(k)));
        if info.k != want_k {
            return Err(fail(
                ID,
                format!(
                    "{name}: decision bound {:?} is not the max of its pair bounds {:?}",
                    info.k, want_k
                ),
            ));
        }

        for pair in &info.pairs {
            check_pair_bound(ID, g, analysis, name, pair, &alphabet, max_word, MAX_ENUM)?;
        }

        // Dead verdicts vs the derivation-search oracle.
        for &alt in g.alternatives(info.nonterminal) {
            let claimed_dead = info.dead.contains(&alt);
            let (words, exhaustive) = enumerate_derivable_words(g, g.production(alt).rhs(), 1);
            if claimed_dead && !words.is_empty() {
                return Err(fail(
                    ID,
                    format!(
                        "{name}: alternative {} flagged dead but derives a word of {} tokens",
                        alt.index(),
                        words[0].len()
                    ),
                ));
            }
            if !claimed_dead && exhaustive && words.is_empty() {
                return Err(fail(
                    ID,
                    format!(
                        "{name}: alternative {} derives no terminal word but was not flagged dead",
                        alt.index()
                    ),
                ));
            }
        }

        // Shadow verdicts: the later alternative's sampled words must all
        // be derivable by the earlier shadower.
        for &(shadower, shadowed) in &info.shadowed {
            let (words, _) = enumerate_derivable_words(g, g.production(shadowed).rhs(), 16);
            for w in &words {
                if !derives(g, g.production(shadower).rhs(), w) {
                    return Err(fail(
                        ID,
                        format!(
                            "{name}: alternative {} claimed to shadow {}, but the oracle \
                             derives a {}-token word only the later alternative admits",
                            shadower.index(),
                            shadowed.index(),
                            w.len()
                        ),
                    ));
                }
            }
        }
    }

    // The serialized certificate round-trips and replays in full.
    let text = to_cert_json(g, audit);
    let parsed = parse_cert_json(g, &text)
        .ok_or_else(|| fail(ID, "serialized certificate failed structural validation"))?;
    if &parsed != audit {
        return Err(fail(ID, "certificate round-trip changed the audit table"));
    }
    if !replay_certificate(g, sf, &analysis.productivity, &parsed) {
        return Err(fail(
            ID,
            "freshly computed certificate failed witness replay",
        ));
    }
    Ok(())
}

/// The per-pair obligations of `H-AUDIT-SOUND`: witness shapes, collide
/// minimality, resolve spot-check, and (when enumerable) exhaustive
/// sufficiency of the certified bound.
#[allow(clippy::too_many_arguments)]
fn check_pair_bound(
    id: &'static str,
    g: &Grammar,
    analysis: &GrammarAnalysis,
    name: &str,
    pair: &PairAudit,
    alphabet: &[Terminal],
    max_word: usize,
    max_enum: usize,
) -> Result<(), HarnessViolation> {
    let sf = &analysis.stable_frames;
    let alts = [pair.a, pair.b];
    let survives = |w: &[Terminal]| simulate_survivors(g, sf, &alts, w);
    let Some(k) = pair.k else {
        // Unbounded pairs carry no witnesses by construction.
        if pair.collide.is_some() || pair.resolve.is_some() {
            return Err(fail(
                id,
                format!("{name}: unbounded pair carries witnesses"),
            ));
        }
        return Ok(());
    };

    // Collide witness: present iff k >= 1, length k - 1, both alive.
    match &pair.collide {
        Some(w) => {
            if k == 0 || w.len() != k - 1 {
                return Err(fail(
                    id,
                    format!(
                        "{name}: collide witness has {} tokens for bound k = {k}",
                        w.len()
                    ),
                ));
            }
            let survivors = survives(w)
                .ok_or_else(|| fail(id, format!("{name}: collide replay hit a closure cap")))?;
            if !(survivors.contains(&pair.a) && survivors.contains(&pair.b)) {
                return Err(fail(
                    id,
                    format!(
                        "{name}: collide witness leaves only {} survivor(s) — \
                         the bound k = {k} is inflated",
                        survivors.len()
                    ),
                ));
            }
        }
        None if k >= 1 => {
            return Err(fail(
                id,
                format!("{name}: finite bound k = {k} without a collide witness"),
            ));
        }
        None => {}
    }

    // Resolve witness: length k, at most one survivor.
    if let Some(w) = &pair.resolve {
        if w.len() != k {
            return Err(fail(
                id,
                format!(
                    "{name}: resolve witness has {} tokens for bound k = {k}",
                    w.len()
                ),
            ));
        }
        let survivors = survives(w)
            .ok_or_else(|| fail(id, format!("{name}: resolve replay hit a closure cap")))?;
        if survivors.len() > 1 {
            return Err(fail(
                id,
                format!("{name}: resolve witness leaves both alternatives alive"),
            ));
        }
    }

    // Sufficiency: no word of length k keeps both alternatives alive.
    // Only enumerable alphabets are swept; the witnesses above always run.
    if k <= max_word {
        let total = alphabet
            .len()
            .checked_pow(u32::try_from(k).unwrap_or(u32::MAX));
        if total.is_some_and(|t| t <= max_enum) {
            for w in words_of_length(alphabet, k) {
                // A fresh per-word budget is strictly more generous than
                // the audit's shared graph budget, so a cap here cannot
                // mask a refutation the audit could have seen; skip it.
                let Some(survivors) = survives(&w) else {
                    continue;
                };
                if survivors.len() > 1 {
                    return Err(fail(
                        id,
                        format!(
                            "{name}: a {k}-token word keeps both alternatives alive — \
                             the bound k = {k} is deflated"
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// `H-COST-SOUND` — soundness of the static cost certificate
/// (`costar cost` / the `costar-cost-v1` certificate), over a
/// nondeterministic template *or* a small arbitrary grammar and an
/// arbitrary word:
///
/// * **Bound replay**: an unbudgeted accepting or rejecting parse of the
///   `n`-token word consumes `steps_taken ≤ CostModel::bound_for(n)`
///   metered steps, and the observer layer records exactly one cost
///   check against exactly that bound with zero violations.
/// * **Exact fuel**: re-running the same word under
///   `Budget::with_max_steps(bound_for(n))` — the `--max-steps auto`
///   budget — yields the byte-identical outcome, never an abort: the
///   certificate really is enough fuel.
/// * **Monotonicity**: `bound_for` is monotone in `n` (longer inputs
///   never certify smaller budgets), and every bound is positive (even
///   the empty input needs its final return and EOF check).
/// * **Round-trip**: the serialized `costar-cost-v1` certificate parses
///   back to an equal model and passes full replay validation
///   ([`replay_cost_certificate`]) — the same gate the grammar-cache
///   loader applies.
///
/// Left-recursive random grammars are skipped: the certificate's claim
/// (like the paper's correctness theorems) presupposes the
/// non-left-recursion precondition, under which `Error` outcomes are
/// unreachable.
pub fn h_cost_sound<N: Nondet>(nd: &mut N, max_word: usize) -> Result<StepKinds, HarnessViolation> {
    const ID: &str = "H-COST-SOUND";
    let owned;
    let owned_analysis;
    let (g, analysis, word): (&Grammar, &GrammarAnalysis, Vec<Token>);
    if nd.any_bool() {
        let t = grammars::template(nd.choose(grammars::NUM_TEMPLATES));
        g = &t.grammar;
        analysis = &t.analysis;
        word = grammars::draw_word(nd, t, max_word);
    } else {
        owned = grammars::draw_random_grammar(nd);
        owned_analysis = GrammarAnalysis::compute(&owned);
        g = &owned;
        analysis = &owned_analysis;
        let alphabet: Vec<Terminal> = g.symbols().terminals().collect();
        let len = if alphabet.is_empty() {
            0
        } else {
            nd.choose(max_word + 1)
        };
        word = (0..len)
            .map(|_| {
                let a = alphabet[nd.choose(alphabet.len())];
                Token::new(a, g.symbols().terminal_name(a))
            })
            .collect();
    }
    if !analysis.left_recursion.is_grammar_safe() {
        return Ok(StepKinds::default()); // outside the certificate's claim
    }
    check_cost_certificate(ID, g, analysis, &word)
}

/// The shared obligation of `H-COST-SOUND`, also replayed against the
/// bundled languages by the proptest suite: parse `word`, check the
/// metered step count against the certified bound, re-run under exactly
/// that fuel, and round-trip the serialized certificate.
pub fn check_cost_certificate(
    id: &'static str,
    g: &Grammar,
    analysis: &GrammarAnalysis,
    word: &[Token],
) -> Result<StepKinds, HarnessViolation> {
    let cost = &analysis.cost;
    let n = word.len() as u64;
    let bound = cost.bound_for(n);

    // Bound replay against a live metered parse.
    let mut cache = SllCache::new();
    let mut obs = MetricsObserver::new();
    let outcome = Machine::new(g, analysis, word).run_observed(&mut cache, &mut obs);
    let m = obs.into_metrics();
    let mut kinds = StepKinds {
        pushes: m.pushes,
        consumes: m.consumes,
        returns: m.returns,
        ..Default::default()
    };
    match &outcome {
        ParseOutcome::Unique(_) | ParseOutcome::Ambig(_) => kinds.accepts += 1,
        ParseOutcome::Reject(_) => kinds.rejects += 1,
        other => {
            return Err(fail(
                id,
                format!("unbudgeted parse of a safe grammar returned {other:?}"),
            ))
        }
    }
    if m.meter_steps > bound {
        return Err(fail(
            id,
            format!(
                "a {n}-token parse took {} metered steps, above the certified bound {bound} \
                 (a = {}, b = {}, linear = {})",
                m.meter_steps,
                cost.a,
                cost.b,
                cost.is_linear()
            ),
        ));
    }
    if m.cost_checks != 1 || m.cost_violations != 0 || m.predicted_steps != bound {
        return Err(fail(
            id,
            format!(
                "observer cost accounting is off: {} checks, {} violations, \
                 predicted {} (want 1, 0, {bound})",
                m.cost_checks, m.cost_violations, m.predicted_steps
            ),
        ));
    }

    // Exact fuel: the certified bound is itself a sufficient budget.
    let mut cache2 = SllCache::new();
    let budgeted = Machine::with_budget(
        g,
        analysis,
        word,
        PredictionMode::Adaptive,
        &Budget::unlimited().with_max_steps(bound),
    )
    .run(&mut cache2);
    if budgeted != outcome {
        return Err(fail(
            id,
            format!(
                "parsing under the certified fuel bound {bound} changed the outcome: \
                 {budgeted:?} vs {outcome:?}"
            ),
        ));
    }

    // Monotonicity and positivity of the closed form.
    if bound == 0 {
        return Err(fail(id, "certified bound is zero"));
    }
    if cost.bound_for(n.saturating_add(1)) < bound {
        return Err(fail(id, format!("bound_for is not monotone at n = {n}")));
    }

    // Round-trip and replay, the grammar-cache loader's gate.
    let text = to_cost_json(g, cost);
    let parsed = parse_cost_json(g, &text).ok_or_else(|| {
        fail(
            id,
            "serialized cost certificate failed structural validation",
        )
    })?;
    if &parsed != cost {
        return Err(fail(id, "cost certificate round-trip changed the model"));
    }
    if !replay_cost_certificate(
        g,
        &analysis.nullable,
        &analysis.left_recursion,
        &analysis.audit,
        &parsed,
    ) {
        return Err(fail(
            id,
            "freshly computed cost certificate failed replay validation",
        ));
    }
    Ok(kinds)
}

/// The two lexer templates `H-INCR-LEX-SOUND` draws from: a generic
/// idents/ints/brackets shape, and a maximal-munch operator shape where
/// `==` shadows `=` and `->` shadows `-` — the case where an edit between
/// two tokens can fuse them, so splice restart points earn their keep.
/// Compiled once; the session machinery treats them as immutable.
fn incr_lexers() -> &'static [costar_lexer::Lexer] {
    use std::sync::OnceLock;
    static LEXERS: OnceLock<Vec<costar_lexer::Lexer>> = OnceLock::new();
    LEXERS.get_or_init(|| {
        let mut out = Vec::new();
        let mut spec = costar_lexer::LexerSpec::new();
        spec.token("Ident", "[a-z]+")
            .token("Int", "[0-9]+")
            .token_literal("LParen", "(")
            .token_literal("RParen", ")")
            .skip("ws", "[ \t\r\n]+");
        let mut tab = costar_grammar::SymbolTable::new();
        out.push(costar_lexer::Lexer::compile(&spec, &mut tab).expect("incr template lexer 0"));
        let mut spec = costar_lexer::LexerSpec::new();
        spec.token_literal("EqEq", "==")
            .token_literal("Eq", "=")
            .token_literal("Arrow", "->")
            .token_literal("Minus", "-")
            .token("Ident", "[a-z]+")
            .skip("ws", "[ \n]+");
        let mut tab = costar_grammar::SymbolTable::new();
        out.push(costar_lexer::Lexer::compile(&spec, &mut tab).expect("incr template lexer 1"));
        out
    })
}

/// `H-INCR-LEX-SOUND` — soundness of the incremental lexer
/// ([`EditSession`], the substrate of `Parser::reparse_after_edit`), over
/// a nondeterministic lexer template, source, and edit:
///
/// * **Batch equivalence**: after a successful `apply`, the spliced token
///   vector is byte-identical — terminal, lexeme, *and* span — to a
///   from-scratch lex of the edited source. This is the oracle the
///   CLI's `costar edit --oracle` replays and the parse-reuse fast path
///   (`SessionReparse::reused`) relies on.
/// * **Honest `unchanged` flag**: `SpliceReport::unchanged` holds exactly
///   when the spliced vector equals the pre-edit vector — the soundness
///   condition for skipping the re-parse.
/// * **Partition accounting**: `tokens_relexed + tokens_reused` equals
///   the new vector's length, so reuse fractions cannot be gamed.
/// * **Error safety**: a rejected edit (unlexable replacement, bad range,
///   split char) leaves the session's source and tokens untouched.
pub fn h_incr_lex_sound<N: Nondet>(nd: &mut N, max_frags: usize) -> Result<(), HarnessViolation> {
    const ID: &str = "H-INCR-LEX-SOUND";
    let which = nd.choose(2);
    let lexer = &incr_lexers()[which];
    // Pure-ASCII fragment pools, so every byte offset is a char boundary
    // and edits can land anywhere — including mid-token and inside CRLF.
    let frags: &[&str] = if which == 0 {
        &["a", "ab", "7", "42", " ", "\n", "\r\n", "(", ")", "\t"]
    } else {
        &["x", "yz", "=", "==", "-", "->", " ", "\n"]
    };
    let n = nd.choose(max_frags + 1);
    let mut source = String::new();
    for _ in 0..n {
        source.push_str(frags[nd.choose(frags.len())]);
    }
    let mut session = EditSession::new(lexer, &source)
        .map_err(|e| fail(ID, format!("template source failed to lex: {e}")))?;

    let start = nd.choose(source.len() + 1);
    let end = start + nd.choose(source.len() - start + 1);
    let mut replacement = String::new();
    for _ in 0..nd.choose(3) {
        replacement.push_str(frags[nd.choose(frags.len())]);
    }
    // Occasionally unlexable: neither template has a rule matching '%',
    // so this exercises the error-safety leg.
    if nd.choose(8) == 0 {
        replacement.push('%');
    }
    check_incremental_edit(ID, lexer, &mut session, &Edit::new(start..end, replacement))
}

/// The shared obligation of `H-INCR-LEX-SOUND`, also replayed against the
/// bundled languages by the proptest suite: apply one edit and check the
/// splice against a from-scratch lex (or, on failure, that the session is
/// untouched).
pub fn check_incremental_edit(
    id: &'static str,
    lexer: &costar_lexer::Lexer,
    session: &mut EditSession,
    edit: &Edit,
) -> Result<(), HarnessViolation> {
    let before_tokens = session.tokens().to_vec();
    let before_source = session.source().to_owned();
    match session.apply(edit) {
        Ok(report) => {
            let oracle = lexer.tokenize(session.source()).map_err(|e| {
                fail(
                    id,
                    format!("spliced source no longer lexes from scratch: {e}"),
                )
            })?;
            if session.tokens() != oracle.as_slice() {
                return Err(fail(
                    id,
                    format!(
                        "spliced tokens diverge from a from-scratch lex after \
                         {:?} -> {:?}: {} spliced vs {} oracle tokens",
                        edit.range,
                        edit.replacement,
                        session.tokens().len(),
                        oracle.len()
                    ),
                ));
            }
            let identical = session.tokens() == before_tokens.as_slice();
            if report.unchanged != identical {
                return Err(fail(
                    id,
                    format!(
                        "unchanged flag is {} but token-vector identity is {identical}",
                        report.unchanged
                    ),
                ));
            }
            if report.tokens_relexed + report.tokens_reused != session.tokens().len() {
                return Err(fail(
                    id,
                    format!(
                        "splice accounting does not partition the vector: \
                         {} relexed + {} reused != {} tokens",
                        report.tokens_relexed,
                        report.tokens_reused,
                        session.tokens().len()
                    ),
                ));
            }
        }
        Err(
            EditError::Lex(_) | EditError::OutOfBounds { .. } | EditError::NotCharBoundary { .. },
        ) => {
            if session.source() != before_source || session.tokens() != before_tokens.as_slice() {
                return Err(fail(id, "a failed edit mutated the session"));
            }
        }
    }
    Ok(())
}

/// Independent language oracle for dead/shadow verdicts: breadth-first
/// derivation over sentential forms from `start`, collecting up to
/// `max_words` distinct terminal words. The flag reports whether the
/// search exhausted *every* derivation (no cap was hit and the word
/// budget was not the stopping reason) — only then does an empty result
/// prove the language empty.
fn enumerate_derivable_words(
    g: &Grammar,
    start: &[Symbol],
    max_words: usize,
) -> (Vec<Vec<Terminal>>, bool) {
    const MAX_FORM: usize = 12;
    const MAX_STEPS: usize = 4_000;
    let mut words: Vec<Vec<Terminal>> = Vec::new();
    let mut seen: BTreeSet<Vec<Symbol>> = BTreeSet::new();
    let mut queue: VecDeque<Vec<Symbol>> = VecDeque::new();
    queue.push_back(start.to_vec());
    let mut exhaustive = true;
    let mut steps = 0usize;
    while let Some(form) = queue.pop_front() {
        steps += 1;
        if steps > MAX_STEPS {
            exhaustive = false;
            break;
        }
        if !seen.insert(form.clone()) {
            continue;
        }
        let nt_at = form.iter().position(|s| matches!(s, Symbol::Nt(_)));
        match nt_at {
            None => {
                let word: Vec<Terminal> = form
                    .iter()
                    .filter_map(|s| match s {
                        Symbol::T(t) => Some(*t),
                        Symbol::Nt(_) => None,
                    })
                    .collect();
                words.push(word);
                if words.len() >= max_words {
                    exhaustive = false;
                    break;
                }
            }
            Some(i) => {
                let alts: &[ProdId] = match form[i] {
                    Symbol::Nt(y) => g.alternatives(y),
                    Symbol::T(_) => &[],
                };
                for &r in alts {
                    let mut nf = form[..i].to_vec();
                    nf.extend_from_slice(g.production(r).rhs());
                    nf.extend_from_slice(&form[i + 1..]);
                    if nf.len() > MAX_FORM {
                        exhaustive = false;
                        continue;
                    }
                    queue.push_back(nf);
                }
            }
        }
    }
    (words, exhaustive)
}

/// Bounded membership search: can the sentential form `start` derive
/// exactly `w`? Deliberately written independently of the audit's own
/// containment check (leftmost depth-first with a prefix-matched cursor)
/// so the two can disagree. Conservative: `false` on cap exhaustion.
fn derives(g: &Grammar, start: &[Symbol], w: &[Terminal]) -> bool {
    const MAX_STEPS: usize = 8_000;
    let mut seen: BTreeSet<(usize, Vec<Symbol>)> = BTreeSet::new();
    let mut stack: Vec<(usize, Vec<Symbol>)> = vec![(0, start.to_vec())];
    let mut steps = 0usize;
    while let Some((matched, form)) = stack.pop() {
        steps += 1;
        if steps > MAX_STEPS {
            return false;
        }
        if !seen.insert((matched, form.clone())) {
            continue;
        }
        match form.first().copied() {
            None => {
                if matched == w.len() {
                    return true;
                }
            }
            Some(Symbol::T(t)) => {
                if matched < w.len() && w[matched] == t {
                    stack.push((matched + 1, form[1..].to_vec()));
                }
            }
            Some(Symbol::Nt(y)) => {
                for &r in g.alternatives(y) {
                    let mut nf: Vec<Symbol> = g.production(r).rhs().to_vec();
                    nf.extend_from_slice(&form[1..]);
                    if nf.len() <= w.len() + 12 {
                        stack.push((matched, nf));
                    }
                }
            }
        }
    }
    false
}

/// All words of length exactly `k` over `alphabet`, in lexicographic
/// order. Callers cap `alphabet.len()^k` before asking.
fn words_of_length(alphabet: &[Terminal], k: usize) -> Vec<Vec<Terminal>> {
    let mut out: Vec<Vec<Terminal>> = vec![Vec::new()];
    for _ in 0..k {
        let mut next = Vec::with_capacity(out.len() * alphabet.len().max(1));
        for w in &out {
            for &t in alphabet {
                let mut w2 = w.clone();
                w2.push(t);
                next.push(w2);
            }
        }
        out = next;
    }
    out
}

/// Brute-force §3.5 closure: starting from every grammar position just
/// after an occurrence of `x`, follow return steps (at end of a
/// right-hand side, to every caller of its left-hand side), push steps
/// (into every alternative of the nonterminal at the dot), and nullable
/// skips, collecting each position whose dot sits before a terminal.
/// `can_end` records whether some chain runs off the end of a start
/// production (or `x` is itself the start symbol).
fn brute_stable_dests(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    x: NonTerminal,
) -> (BTreeSet<Position>, bool) {
    let mut stable = BTreeSet::new();
    let mut can_end = x == g.start();
    let mut seen = BTreeSet::new();
    let mut work: Vec<(costar_grammar::ProdId, usize)> = Vec::new();

    let push_continuations_of = |y: NonTerminal, work: &mut Vec<_>| {
        for (pid, p) in g.iter() {
            for (i, &s) in p.rhs().iter().enumerate() {
                if s == Symbol::Nt(y) {
                    work.push((pid, i + 1));
                }
            }
        }
    };
    push_continuations_of(x, &mut work);

    while let Some((pid, dot)) = work.pop() {
        if !seen.insert((pid.index(), dot)) {
            continue;
        }
        let p = g.production(pid);
        if dot == p.rhs().len() {
            // Return step: this production completes its left-hand side.
            let lhs = p.lhs();
            if lhs == g.start() {
                can_end = true;
            }
            push_continuations_of(lhs, &mut work);
            continue;
        }
        match p.rhs()[dot] {
            Symbol::T(_) => {
                stable.insert(Position {
                    production: pid,
                    dot: dot as u32,
                });
            }
            Symbol::Nt(z) => {
                // Push step into every alternative of z...
                for &alt in g.alternatives(z) {
                    work.push((alt, 0));
                }
                // ...and skip over z entirely when it is nullable.
                if analysis.nullable.contains(z) {
                    work.push((pid, dot + 1));
                }
            }
        }
    }
    (stable, can_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nondet::RngNondet;

    #[test]
    fn machine_harnesses_pass_across_seeds() {
        for seed in 0..64 {
            let mut nd = RngNondet::new(seed);
            h_stack_wf(&mut nd, 5).unwrap();
            let mut nd = RngNondet::new(seed);
            h_visited(&mut nd, 5).unwrap();
            let mut nd = RngNondet::new(seed);
            h_prefix_der(&mut nd, 5).unwrap();
            let mut nd = RngNondet::new(seed);
            h_measure_dec(&mut nd, 5).unwrap();
        }
    }

    #[test]
    fn algebra_and_analysis_harnesses_pass_across_seeds() {
        for seed in 0..64 {
            let mut nd = RngNondet::new(seed);
            h_measure_ord(&mut nd).unwrap();
            let mut nd = RngNondet::new(seed);
            h_cache_bound(&mut nd, 5).unwrap();
            let mut nd = RngNondet::new(seed);
            h_stable_complete(&mut nd).unwrap();
            let mut nd = RngNondet::new(seed);
            h_decide_sound(&mut nd, 5).unwrap();
            let mut nd = RngNondet::new(seed);
            h_recover_sound(&mut nd, 5).unwrap();
            let mut nd = RngNondet::new(seed);
            h_audit_sound(&mut nd, 5).unwrap();
            let mut nd = RngNondet::new(seed);
            h_cost_sound(&mut nd, 5).unwrap();
            let mut nd = RngNondet::new(seed);
            h_incr_lex_sound(&mut nd, 6).unwrap();
        }
    }

    #[test]
    fn audit_oracles_agree_on_hand_checked_cases() {
        // fig2's A: "a A" derives "a b", "b" derives only "b".
        let t = grammars::template(0);
        let g = &t.grammar;
        let a = g.symbols().lookup_nonterminal("A").unwrap();
        let alts = g.alternatives(a).to_vec();
        let (words, exhaustive) = enumerate_derivable_words(g, g.production(alts[1]).rhs(), 8);
        assert!(exhaustive, "finite language must enumerate exhaustively");
        assert_eq!(words, vec![vec![g.symbols().lookup_terminal("b").unwrap()]]);
        let b = g.symbols().lookup_terminal("b").unwrap();
        assert!(derives(g, g.production(alts[1]).rhs(), &[b]));
        assert!(!derives(g, g.production(alts[1]).rhs(), &[b, b]));
        // Words of length 2 over a 2-terminal alphabet: exactly 4.
        let two = [b, g.symbols().lookup_terminal("a").unwrap()];
        assert_eq!(words_of_length(&two, 2).len(), 4);
        assert_eq!(words_of_length(&two, 0), vec![Vec::new()]);
    }

    #[test]
    fn step_kinds_aggregate_and_cover() {
        let mut total = StepKinds::default();
        assert!(!total.covers_all_kinds());
        total.absorb(&StepKinds {
            pushes: 1,
            consumes: 2,
            returns: 3,
            accepts: 1,
            rejects: 0,
        });
        assert!(!total.covers_all_kinds(), "rejects still missing");
        total.absorb(&StepKinds {
            rejects: 1,
            ..Default::default()
        });
        assert!(total.covers_all_kinds());
        assert_eq!(total.consumes, 2);
    }

    #[test]
    fn brute_stable_matches_on_fig2_by_hand() {
        // Independent spot check against the worked example in the
        // stable-frames module docs: after A completes in Fig. 2, the
        // stable continuations are exactly "S -> A . c" and "S -> A . d".
        let t = grammars::template(0);
        let a = t.grammar.symbols().lookup_nonterminal("A").unwrap();
        let (positions, can_end) = brute_stable_dests(&t.grammar, &t.analysis, a);
        assert_eq!(positions.len(), 2);
        assert!(!can_end);
        for pos in &positions {
            assert_eq!(pos.dot, 1);
        }
    }

    #[test]
    fn violations_render_with_harness_id() {
        let v = fail("H-EXAMPLE", "something broke");
        assert_eq!(v.to_string(), "H-EXAMPLE violated: something broke");
    }
}
