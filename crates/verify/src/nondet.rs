//! The nondeterminism abstraction shared by both harness modes.
//!
//! Every harness body in [`crate::harness`] draws its inputs — which
//! template grammar, which word, which cache capacity — through the
//! [`Nondet`] trait instead of a concrete source. Two implementations
//! exist:
//!
//! * [`RngNondet`] (always available) draws pseudo-random values from a
//!   seeded [`SplitMix64`]; the proptest suites run each harness across
//!   many seeds, turning the body into a property test.
//! * `KaniNondet` (under `cfg(kani)` only, so rustdoc cannot link it)
//!   draws symbolic values from
//!   `kani::any()`, turning the *same body* into a bounded
//!   model-checking proof obligation — the `#[kani::proof]` entry points
//!   live in `crate::proofs`.
//!
//! Keeping one body per lemma is the point: the fuzzer and the model
//! checker cannot drift apart, because there is nothing to drift.

use costar::bignat::BigNat;
use costar_grammar::sampler::SplitMix64;

/// A source of nondeterministic values. See the module docs for the two
/// modes.
pub trait Nondet {
    /// An arbitrary 64-bit value.
    fn any_u64(&mut self) -> u64;

    /// An arbitrary boolean.
    fn any_bool(&mut self) -> bool;

    /// An arbitrary index in `0..n`. `n` must be at least 1.
    fn choose(&mut self, n: usize) -> usize;

    /// Constrains the value space. In Kani mode this calls
    /// `kani::assume(cond)` and returns `true` (the unsatisfying branch is
    /// pruned by the checker); in RNG mode it returns `cond`, and the
    /// caller must discard the case when it is `false`. Idiomatic use:
    ///
    /// ```ignore
    /// if !nd.assume(x < bound) {
    ///     return Ok(Default::default()); // vacuous case
    /// }
    /// ```
    fn assume(&mut self, cond: bool) -> bool;
}

/// Pseudo-random [`Nondet`]: the proptest/fuzzing side of the pairing.
#[derive(Debug, Clone)]
pub struct RngNondet {
    rng: SplitMix64,
}

impl RngNondet {
    /// A generator with the given seed; equal seeds replay identical
    /// harness scenarios.
    pub fn new(seed: u64) -> Self {
        RngNondet {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Nondet for RngNondet {
    fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn any_bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    fn choose(&mut self, n: usize) -> usize {
        assert!(n > 0, "choose requires a nonempty range");
        self.rng.below(n)
    }

    fn assume(&mut self, cond: bool) -> bool {
        cond
    }
}

/// Symbolic [`Nondet`]: the bounded-model-checking side of the pairing.
/// Only compiled by `cargo kani`.
#[cfg(kani)]
#[derive(Debug, Clone, Default)]
pub struct KaniNondet;

#[cfg(kani)]
impl Nondet for KaniNondet {
    fn any_u64(&mut self) -> u64 {
        kani::any()
    }

    fn any_bool(&mut self) -> bool {
        kani::any()
    }

    fn choose(&mut self, n: usize) -> usize {
        assert!(n > 0, "choose requires a nonempty range");
        let i: usize = kani::any();
        kani::assume(i < n);
        i
    }

    fn assume(&mut self, cond: bool) -> bool {
        kani::assume(cond);
        true
    }
}

/// An arbitrary [`BigNat`] with at most two limbs — the dual of
/// `costar::verify_hooks::any_bignat`, usable in both modes.
pub fn any_bignat<N: Nondet>(nd: &mut N) -> BigNat {
    let mut n = BigNat::from(nd.any_u64());
    if nd.any_bool() {
        // Shift into the second limb by multiplying through 2^32 twice,
        // then mix in a fresh low limb.
        n.mul_u64_assign(1 << 32);
        n.mul_u64_assign(1 << 32);
        n.add_assign(&BigNat::from(nd.any_u64()));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_nondet_is_deterministic_per_seed() {
        let mut a = RngNondet::new(7);
        let mut b = RngNondet::new(7);
        for _ in 0..16 {
            assert_eq!(a.any_u64(), b.any_u64());
            assert_eq!(a.choose(13), b.choose(13));
            assert_eq!(a.any_bool(), b.any_bool());
        }
    }

    #[test]
    fn choose_stays_in_range() {
        let mut nd = RngNondet::new(1);
        for n in 1..20 {
            for _ in 0..50 {
                assert!(nd.choose(n) < n);
            }
        }
    }

    #[test]
    fn assume_reflects_condition_in_rng_mode() {
        let mut nd = RngNondet::new(0);
        assert!(nd.assume(true));
        assert!(!nd.assume(false));
    }

    #[test]
    fn any_bignat_produces_multi_limb_values() {
        let mut nd = RngNondet::new(3);
        let mut saw_big = false;
        for _ in 0..32 {
            let n = any_bignat(&mut nd);
            if n > BigNat::from(u64::MAX) {
                saw_big = true;
            }
        }
        assert!(saw_big, "two-limb branch never taken across 32 draws");
    }
}
