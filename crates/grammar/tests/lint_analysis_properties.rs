//! Property tests for the linter's analyses: reachability and
//! productivity must agree with brute-force enumeration on small random
//! grammars, and the linter's findings must be internally consistent.
//!
//! The brute-force reference implementations here are deliberately naive
//! (exhaustive path / derivation search with an explicit depth bound
//! justified by a pumping-style shrinking argument) so that they share no
//! code — and no bugs — with the fixpoint computations under test.

// Tests are exempt from the analysis panic-freedom discipline.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::lint::{lint_grammar, DiagCode};
use costar_grammar::{Grammar, GrammarBuilder, NonTerminal, Symbol};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum SymSpec {
    T(usize),
    Nt(usize),
}

#[derive(Debug, Clone)]
struct GrammarSpec {
    num_terminals: usize,
    rules: Vec<Vec<Vec<SymSpec>>>,
}

impl GrammarSpec {
    fn build(&self) -> Grammar {
        let mut gb = GrammarBuilder::new();
        let nts: Vec<_> = (0..self.rules.len())
            .map(|i| gb.nonterminal(&format!("n{i}")))
            .collect();
        let ts: Vec<_> = (0..self.num_terminals)
            .map(|i| gb.terminal(&format!("T{i}")))
            .collect();
        for (i, alts) in self.rules.iter().enumerate() {
            for alt in alts {
                let rhs: Vec<Symbol> = alt
                    .iter()
                    .map(|s| match s {
                        SymSpec::T(k) => Symbol::T(ts[k % ts.len()]),
                        SymSpec::Nt(k) => Symbol::Nt(nts[k % nts.len()]),
                    })
                    .collect();
                gb.rule_syms(nts[i], rhs);
            }
        }
        gb.start_sym(nts[0]);
        gb.build().expect("well-formed")
    }
}

fn sym_spec() -> impl Strategy<Value = SymSpec> {
    prop_oneof![
        3 => (0usize..6).prop_map(SymSpec::T),
        2 => (0usize..6).prop_map(SymSpec::Nt),
    ]
}

fn grammar_spec() -> impl Strategy<Value = GrammarSpec> {
    (
        1usize..5,
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(sym_spec(), 0..4), 1..4),
            1..6,
        ),
    )
        .prop_map(|(num_terminals, rules)| GrammarSpec {
            num_terminals,
            rules,
        })
}

/// Brute-force reachability: `num_nonterminals` rounds of one-step
/// occurrence expansion. Any reachable nonterminal is reachable by an
/// occurrence chain with no repeated nonterminal, i.e. of length at most
/// `num_nonterminals`, so the bounded iteration is exact.
fn brute_reachable(g: &Grammar) -> Vec<bool> {
    let n = g.num_nonterminals();
    let mut seen = vec![false; n];
    seen[g.start().index()] = true;
    for _ in 0..n {
        let mut next = seen.clone();
        for (_, p) in g.iter() {
            if seen[p.lhs().index()] {
                for &s in p.rhs() {
                    if let Symbol::Nt(y) = s {
                        next[y.index()] = true;
                    }
                }
            }
        }
        seen = next;
    }
    seen
}

/// Brute-force productivity: can `x` derive a terminal string with a
/// derivation tree of height at most `depth`? If any terminal string is
/// derivable, a minimal derivation repeats no nonterminal on any
/// root-to-leaf path, so height `num_nonterminals + 1` is exact.
fn brute_derives(g: &Grammar, x: NonTerminal, depth: usize) -> bool {
    if depth == 0 {
        return false;
    }
    g.alternatives(x).iter().any(|&pid| {
        g.production(pid).rhs().iter().all(|&s| match s {
            Symbol::T(_) => true,
            Symbol::Nt(y) => brute_derives(g, y, depth - 1),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reachability_agrees_with_brute_force(spec in grammar_spec()) {
        let g = spec.build();
        let analysis = GrammarAnalysis::compute(&g);
        let brute = brute_reachable(&g);
        for x in g.symbols().nonterminals() {
            prop_assert_eq!(
                analysis.reachability.is_reachable(x),
                brute[x.index()],
                "reachability mismatch on {:?}", g.symbols().nonterminal_name(x)
            );
        }
    }

    #[test]
    fn productivity_agrees_with_brute_force(spec in grammar_spec()) {
        let g = spec.build();
        let analysis = GrammarAnalysis::compute(&g);
        let depth = g.num_nonterminals() + 1;
        for x in g.symbols().nonterminals() {
            if g.alternatives(x).is_empty() {
                continue; // no productions: out of scope for both sides
            }
            prop_assert_eq!(
                analysis.productivity.is_productive(x),
                brute_derives(&g, x, depth),
                "productivity mismatch on {:?}", g.symbols().nonterminal_name(x)
            );
        }
    }

    #[test]
    fn witness_paths_are_real_occurrence_chains(spec in grammar_spec()) {
        let g = spec.build();
        let analysis = GrammarAnalysis::compute(&g);
        for x in g.symbols().nonterminals() {
            let Some(path) = analysis.reachability.witness_path(x) else { continue };
            prop_assert_eq!(*path.first().unwrap(), g.start());
            prop_assert_eq!(*path.last().unwrap(), x);
            // Every consecutive pair must be a genuine rhs occurrence.
            for pair in path.windows(2) {
                let occurs = g.alternatives(pair[0]).iter().any(|&pid| {
                    g.production(pid)
                        .rhs()
                        .iter()
                        .any(|&s| s == Symbol::Nt(pair[1]))
                });
                prop_assert!(occurs, "bogus witness edge {:?}", pair);
            }
        }
    }

    #[test]
    fn lint_findings_are_consistent(spec in grammar_spec()) {
        let g = spec.build();
        let analysis = GrammarAnalysis::compute(&g);
        let diags = lint_grammar(&g, &analysis);
        for d in &diags {
            // Severity always matches the code.
            prop_assert_eq!(d.severity, d.code.severity());
            // Rendering never panics and always carries the code.
            let human = d.render_human(&g);
            prop_assert!(human.contains(d.code.as_str()));
            let json = d.to_json(&g);
            prop_assert!(json.contains(d.code.as_str()));
            match d.code {
                DiagCode::Unreachable => {
                    prop_assert!(!analysis.reachability.is_reachable(d.nonterminal));
                }
                DiagCode::Unproductive | DiagCode::EmptyLanguage => {
                    prop_assert!(!analysis.productivity.is_productive(d.nonterminal));
                }
                DiagCode::LeftRecursive => {
                    prop_assert!(analysis
                        .left_recursion
                        .is_left_recursive(d.nonterminal));
                    // The cycle witness must be replayable: consecutive
                    // nonterminals connected by a nullable-prefix edge.
                    let Some(costar_grammar::lint::Witness::Cycle(c)) = &d.witness else {
                        return Err(TestCaseError::fail("L001 without cycle witness"));
                    };
                    prop_assert!(c.len() >= 2);
                    prop_assert_eq!(c[0], d.nonterminal);
                    prop_assert_eq!(*c.last().unwrap(), d.nonterminal);
                    for pair in c.windows(2) {
                        let edge = g.alternatives(pair[0]).iter().any(|&pid| {
                            let rhs = g.production(pid).rhs();
                            for &s in rhs {
                                match s {
                                    Symbol::Nt(y) => {
                                        if y == pair[1] {
                                            return true;
                                        }
                                        if !analysis.nullable.contains(y) {
                                            return false;
                                        }
                                    }
                                    Symbol::T(_) => return false,
                                }
                            }
                            false
                        });
                        prop_assert!(edge, "bogus cycle edge {:?}", pair);
                    }
                }
                _ => {}
            }
        }
        // Sorted most-severe-first.
        let sevs: Vec<_> = diags.iter().map(|d| d.severity).collect();
        let mut sorted = sevs.clone();
        sorted.sort();
        prop_assert_eq!(sevs, sorted);
    }
}
