//! Allocation accounting for the token hot path.
//!
//! The parser clones one token per consumed input symbol (into the parse
//! tree's leaf). With `Arc<str>` lexemes that clone must be a pure
//! refcount bump: these tests pin the "no allocation per clone" property
//! with a counting global allocator, so a regression back to owned
//! strings shows up as a test failure rather than a silent slowdown.

use costar_grammar::{tokens, SymbolTable, Token};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let r = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (r, after - before)
}

#[test]
fn cloning_tokens_does_not_allocate() {
    let mut tab = SymbolTable::new();
    let word = tokens(
        &mut tab,
        &[("Int", "42"), ("Plus", "+"), ("Int", "1729"), ("Semi", ";")],
    );
    let (clones, allocs) = allocations_during(|| {
        let mut clones = Vec::with_capacity(1024);
        for _ in 0..256 {
            for t in &word {
                clones.push(t.clone());
            }
        }
        clones
    });
    assert_eq!(clones.len(), 1024);
    // The pre-sized Vec backing store is the only permitted allocation.
    assert!(
        allocs <= 1,
        "token clones must not allocate: {allocs} allocations for 1024 clones"
    );
}

#[test]
fn token_construction_allocates_once_per_lexeme() {
    let mut tab = SymbolTable::new();
    let int = tab.terminal("Int");
    let ((), allocs) = allocations_during(|| {
        let t = Token::new(int, "42");
        let _ = t.clone();
        let _ = t.clone();
        let _ = t.clone();
    });
    // One Arc<str> for the lexeme; clones add nothing.
    assert_eq!(
        allocs, 1,
        "expected a single lexeme allocation, got {allocs}"
    );
}
