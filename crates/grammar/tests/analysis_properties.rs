//! Property tests tying the static analyses to actual derivations:
//! every fact the fixpoints compute must be witnessed (or never
//! contradicted) by trees sampled from the grammar.

// Tests are exempt from the analysis panic-freedom discipline.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::sampler::{DerivationSampler, SplitMix64};
use costar_grammar::{Grammar, GrammarBuilder, NonTerminal, Symbol, Terminal, Tree};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum SymSpec {
    T(usize),
    Nt(usize),
}

#[derive(Debug, Clone)]
struct GrammarSpec {
    num_terminals: usize,
    rules: Vec<Vec<Vec<SymSpec>>>,
}

impl GrammarSpec {
    fn build(&self) -> Grammar {
        let mut gb = GrammarBuilder::new();
        let nts: Vec<_> = (0..self.rules.len())
            .map(|i| gb.nonterminal(&format!("n{i}")))
            .collect();
        let ts: Vec<_> = (0..self.num_terminals)
            .map(|i| gb.terminal(&format!("T{i}")))
            .collect();
        for (i, alts) in self.rules.iter().enumerate() {
            for alt in alts {
                let rhs: Vec<Symbol> = alt
                    .iter()
                    .map(|s| match s {
                        SymSpec::T(k) => Symbol::T(ts[k % ts.len()]),
                        SymSpec::Nt(k) => Symbol::Nt(nts[k % nts.len()]),
                    })
                    .collect();
                gb.rule_syms(nts[i], rhs);
            }
        }
        gb.start_sym(nts[0]);
        gb.build().expect("well-formed")
    }
}

fn sym_spec() -> impl Strategy<Value = SymSpec> {
    prop_oneof![
        3 => (0usize..6).prop_map(SymSpec::T),
        2 => (0usize..6).prop_map(SymSpec::Nt),
    ]
}

fn grammar_spec() -> impl Strategy<Value = GrammarSpec> {
    (
        1usize..5,
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(sym_spec(), 0..4), 1..4),
            1..5,
        ),
    )
        .prop_map(|(num_terminals, rules)| GrammarSpec {
            num_terminals,
            rules,
        })
}

/// Walks a tree collecting, for every interior node, the nonterminal and
/// its yield's first terminal (if any), plus (nonterminal, following
/// terminal) pairs read off the whole-tree token sequence.
fn collect_node_facts(
    tree: &Tree,
    facts: &mut Vec<(NonTerminal, Option<Terminal>, usize, usize)>,
    at: usize,
) -> usize {
    match tree {
        Tree::Leaf(_) => at + 1,
        Tree::Node(x, children) => {
            let mut pos = at;
            for c in children {
                pos = collect_node_facts(c, facts, pos);
            }
            let toks = tree.yield_tokens();
            facts.push((*x, toks.first().map(|t| t.terminal()), at, pos));
            pos
        }
        // Sampled derivations never contain recovery error nodes.
        Tree::Error(e) => at + e.skipped.len(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness of the analyses against sampled derivations:
    /// * a node with an empty yield ⇒ its nonterminal is nullable;
    /// * a node's first yielded terminal ∈ FIRST(its nonterminal);
    /// * the terminal right after a node's yield ∈ FOLLOW(its
    ///   nonterminal), and end-of-input after the yield ⇒ the FOLLOW
    ///   analysis flags EOF.
    #[test]
    fn analyses_agree_with_sampled_trees(spec in grammar_spec(), seed in any::<u64>()) {
        let g = spec.build();
        let an = GrammarAnalysis::compute(&g);
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..8 {
            let Some(tree) = sampler.sample_tree(&mut rng, 8) else { return Ok(()); };
            let word = tree.yield_tokens();
            let mut facts = Vec::new();
            collect_node_facts(&tree, &mut facts, 0);
            for (x, first_term, start, end) in facts {
                if start == end {
                    prop_assert!(an.nullable.contains(x), "{x} derived ε but not nullable");
                }
                if let Some(t) = first_term {
                    prop_assert!(an.first.first(x).contains(t), "FIRST misses {t} for {x}");
                }
                match word.get(end) {
                    Some(next) => prop_assert!(
                        an.follow.follow(x).contains(next.terminal()),
                        "FOLLOW misses successor for {x}"
                    ),
                    None if end == word.len() => prop_assert!(
                        an.follow.eof_follows(x),
                        "EOF follows {x} in a derivation but analysis disagrees"
                    ),
                    None => {}
                }
            }
        }
    }

    /// Completeness of nullability: the analysis never claims more than
    /// derivations deliver. For every nullable nonterminal reachable from
    /// the start, some grammar production chain witnesses ε — checked by
    /// running the sampler on a copy of the grammar restarted at that
    /// nonterminal.
    #[test]
    fn nullable_claims_are_witnessed(spec in grammar_spec()) {
        let g = spec.build();
        let an = GrammarAnalysis::compute(&g);
        for x in g.symbols().nonterminals() {
            if g.alternatives(x).is_empty() || !an.nullable.contains(x) {
                continue;
            }
            // Rebuild with x as start and sample until an ε-yield shows
            // up; nullable implies a finite ε-derivation exists, and the
            // budget-bounded sampler preferring minimal productions finds
            // it within a small budget almost surely — we verify
            // constructively with an explicit search instead of sampling.
            prop_assert!(derives_epsilon(&g, x), "{x} flagged nullable without witness");
        }
    }
}

/// Explicit ε-derivability search (independent of the analysis code).
fn derives_epsilon(g: &Grammar, x: NonTerminal) -> bool {
    fn go(g: &Grammar, x: NonTerminal, path: &mut HashSet<NonTerminal>) -> bool {
        if !path.insert(x) {
            return false; // cycle without progress
        }
        let ok = g.alternatives(x).iter().any(|&pid| {
            g.production(pid).rhs().iter().all(|&s| match s {
                Symbol::T(_) => false,
                Symbol::Nt(y) => go(g, y, path),
            })
        });
        path.remove(&x);
        ok
    }
    go(g, x, &mut HashSet::new())
}
