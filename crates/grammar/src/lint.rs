//! Diagnostics-grade grammar linter.
//!
//! CoStar's correctness theorems come with static preconditions — above
//! all, that the grammar is not left-recursive (paper §5) — and its
//! prediction machinery rests on static analyses (§3.5). This module
//! turns those analyses into *user-facing diagnostics*: structured
//! [`Diagnostic`] values with a stable code, a severity, a message, and a
//! machine-checkable [`Witness`] (the left-recursion cycle, the LL(1)
//! conflict pair), so third-party grammars get actionable feedback before
//! the first parse. The `costar lint` CLI subcommand renders these in
//! human or JSON form.
//!
//! ## Codes
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `L001` | error | left-recursive nonterminal — the paper's theorem precondition fails |
//! | `L002` | error | the start symbol derives no terminal string — the language is empty |
//! | `L003` | warning | unproductive nonterminal — predicting into it can never complete |
//! | `L004` | warning | unreachable nonterminal — dead grammar weight |
//! | `L005` | warning | duplicate production — every use is ambiguous |
//! | `L006` | note | LL(1) conflict — ALL(*) resolves it, but lookahead work is done here |
//! | `L007` | error | statically ambiguous decision pair — two alternatives derive a common word (witnessed) |
//! | `L008` | note | SLL-safe nonterminal — SLL prediction provably never conflicts, LL failover is dead weight |
//! | `L009` | error | dead alternative — its right-hand side derives no terminal word, so no input ever selects it |
//! | `L010` | warning | shadowed alternative — an earlier alternative's language covers it, so it can never win |
//! | `L011` | note | lookahead bound exceeds the `--max-lookahead` threshold (audit-only, see [`audit_findings`]) |
//! | `L012` | warning | superlinear-prediction risk — an unbounded-`k` decision point is reachable from a token-free cycle (cost-only, see [`cost_findings`]) |
//! | `L013` | note | certified cost bound exceeds the `--max-steps-per-token` threshold (cost-only) |
//!
//! `L006` and `L007` are driven by the static
//! [`DecisionTable`](crate::analysis::DecisionTable) and together are the
//! exact complement of its `Ll1` class: a multi-alternative nonterminal
//! is classified `Ll1` if and only if the linter reports neither code for
//! it (each conflicting pair yields `L007` when a common derivable word
//! proves it ambiguous, `L006` otherwise). A unit test enforces the
//! partition. `L009` and `L010` are driven by the audit pass
//! ([`AuditTable`](crate::analysis::AuditTable)); `L011` needs the
//! caller's lookahead threshold, so it is only produced by
//! [`audit_findings`] (the engine behind `costar audit`), never by plain
//! [`lint_grammar`]. `L012` and `L013` are driven by the static cost
//! model ([`CostModel`](crate::analysis::CostModel)) and only produced by
//! [`cost_findings`] (the engine behind `costar cost`), keeping plain
//! lint output stable.

use crate::analysis::{DecisionClass, GrammarAnalysis};
use crate::grammar::{Grammar, ProdId};
use crate::symbol::{NonTerminal, Terminal};
use std::collections::HashMap;
use std::fmt;

/// How severe a finding is. `Error` findings void the paper's correctness
/// guarantees or make the grammar useless; `Warning` findings indicate
/// defects a parse can run into; `Note` findings are performance or style
/// observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Correctness-voiding defect.
    Error,
    /// Likely defect.
    Warning,
    /// Observation.
    Note,
}

impl Severity {
    /// Lowercase name, as rendered in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Stable diagnostic codes (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagCode {
    /// `L001`: left-recursive nonterminal.
    LeftRecursive,
    /// `L002`: the start symbol is unproductive (empty language).
    EmptyLanguage,
    /// `L003`: unproductive nonterminal.
    Unproductive,
    /// `L004`: unreachable nonterminal.
    Unreachable,
    /// `L005`: duplicate production.
    DuplicateProduction,
    /// `L006`: LL(1) conflict between two alternatives.
    Ll1Conflict,
    /// `L007`: statically ambiguous decision pair (a common derivable
    /// word witnesses two distinct parse trees).
    StaticAmbiguous,
    /// `L008`: SLL-safe nonterminal (LL failover provably unreachable).
    SllSafe,
    /// `L009`: dead alternative — no token word ever selects it.
    DeadAlternative,
    /// `L010`: shadowed alternative — an earlier alternative's language
    /// covers it, so the engine's min-alternative ambiguity resolution
    /// never picks it.
    ShadowedAlternative,
    /// `L011`: certified lookahead bound exceeds the caller's threshold
    /// (or no finite bound exists).
    LookaheadBound,
    /// `L012`: superlinear-prediction risk — an unbounded-lookahead
    /// decision point is reachable from a token-free cycle (left
    /// recursion or a nullable-closure cycle), so prediction can rescan
    /// input that is not being consumed.
    SuperlinearPrediction,
    /// `L013`: the certified cost bound exceeds the caller's
    /// steps-per-token threshold (or no linear bound exists).
    CostBound,
}

impl DiagCode {
    /// The stable code string (`L001`…).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::LeftRecursive => "L001",
            DiagCode::EmptyLanguage => "L002",
            DiagCode::Unproductive => "L003",
            DiagCode::Unreachable => "L004",
            DiagCode::DuplicateProduction => "L005",
            DiagCode::Ll1Conflict => "L006",
            DiagCode::StaticAmbiguous => "L007",
            DiagCode::SllSafe => "L008",
            DiagCode::DeadAlternative => "L009",
            DiagCode::ShadowedAlternative => "L010",
            DiagCode::LookaheadBound => "L011",
            DiagCode::SuperlinearPrediction => "L012",
            DiagCode::CostBound => "L013",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::LeftRecursive
            | DiagCode::EmptyLanguage
            | DiagCode::StaticAmbiguous
            | DiagCode::DeadAlternative => Severity::Error,
            DiagCode::Unproductive
            | DiagCode::Unreachable
            | DiagCode::DuplicateProduction
            | DiagCode::ShadowedAlternative
            | DiagCode::SuperlinearPrediction => Severity::Warning,
            DiagCode::Ll1Conflict
            | DiagCode::SllSafe
            | DiagCode::LookaheadBound
            | DiagCode::CostBound => Severity::Note,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The evidence backing a diagnostic — concrete enough that a reader (or a
/// test) can replay it against the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// A derivation cycle `x ⇒ … ⇒ x` (left recursion), start and end
    /// both `x`.
    Cycle(Vec<NonTerminal>),
    /// Two productions of the same nonterminal selectable on the same
    /// lookahead (`None` = both alternatives are nullable, conflicting on
    /// every FOLLOW terminal and end-of-input).
    Ll1Pair {
        /// First conflicting production.
        a: ProdId,
        /// Second conflicting production.
        b: ProdId,
        /// A terminal in both select sets, if one exists.
        lookahead: Option<Terminal>,
    },
    /// Two syntactically identical productions.
    Duplicate {
        /// First copy.
        a: ProdId,
        /// Second copy.
        b: ProdId,
    },
    /// Two productions of the same nonterminal deriving the same terminal
    /// word — exact proof the decision pair is ambiguous.
    AmbiguousWord {
        /// First alternative.
        a: ProdId,
        /// Second alternative.
        b: ProdId,
        /// The common word (possibly empty: both alternatives derive ε).
        word: Vec<Terminal>,
    },
    /// A production whose right-hand side derives no terminal word.
    DeadAlt {
        /// The dead alternative.
        production: ProdId,
    },
    /// A later alternative whose language an earlier one covers.
    Shadowed {
        /// The covering (earlier) alternative.
        earlier: ProdId,
        /// The covered (later) alternative — never selected.
        later: ProdId,
    },
    /// A certified lookahead bound beyond the caller's threshold.
    LookaheadBound {
        /// The certified bound; `None` = no finite bound exists.
        k: Option<usize>,
        /// The caller's `--max-lookahead` threshold.
        max: usize,
    },
    /// An unbounded-lookahead decision point reachable from a token-free
    /// cycle — the combination that lets prediction work grow faster
    /// than consumed input.
    Superlinear {
        /// `true` when the grammar also carries a nullable-closure
        /// cycle hazard (the other source of token-free re-entry besides
        /// left recursion).
        nullable_hazard: bool,
    },
    /// A certified cost bound beyond the caller's steps-per-token
    /// threshold.
    CostBound {
        /// The certified steps-per-token coefficient; `None` = no
        /// linear bound exists.
        steps_per_token: Option<u64>,
        /// The caller's `--max-steps-per-token` threshold.
        max: u64,
    },
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The nonterminal the finding is about.
    pub nonterminal: NonTerminal,
    /// Human-readable one-line description.
    pub message: String,
    /// Replayable evidence, when the defect has a finite witness.
    pub witness: Option<Witness>,
}

impl Diagnostic {
    /// Renders the witness with grammar symbol names, e.g.
    /// `S ⇒ A ⇒ S` or `` `E -> E x` / `E -> y` on lookahead `y` ``.
    pub fn render_witness(&self, g: &Grammar) -> Option<String> {
        let tab = g.symbols();
        self.witness.as_ref().map(|w| match w {
            Witness::Cycle(cycle) => cycle
                .iter()
                .map(|&x| tab.nonterminal_name(x))
                .collect::<Vec<_>>()
                .join(" \u{21d2} "),
            Witness::Ll1Pair { a, b, lookahead } => {
                let la = match lookahead {
                    Some(t) => format!("lookahead `{}`", tab.terminal_name(*t)),
                    None => "empty input (both alternatives nullable)".to_owned(),
                };
                format!(
                    "`{}` / `{}` on {la}",
                    g.render_production(*a),
                    g.render_production(*b)
                )
            }
            Witness::Duplicate { a, b: _ } => {
                format!("`{}` appears twice", g.render_production(*a))
            }
            Witness::AmbiguousWord { a, b, word } => {
                let rendered = if word.is_empty() {
                    "the empty word".to_owned()
                } else {
                    format!(
                        "`{}`",
                        word.iter()
                            .map(|&t| tab.terminal_name(t))
                            .collect::<Vec<_>>()
                            .join(" ")
                    )
                };
                format!(
                    "`{}` / `{}` both derive {rendered}",
                    g.render_production(*a),
                    g.render_production(*b)
                )
            }
            Witness::DeadAlt { production } => {
                format!(
                    "`{}` contains an unproductive nonterminal",
                    g.render_production(*production)
                )
            }
            Witness::Shadowed { earlier, later } => {
                format!(
                    "`{}` is covered by the earlier `{}`",
                    g.render_production(*later),
                    g.render_production(*earlier)
                )
            }
            Witness::LookaheadBound { k, max } => match k {
                Some(k) => format!("certified bound k = {k} exceeds threshold {max}"),
                None => format!("no finite bound exists (threshold {max})"),
            },
            Witness::Superlinear { nullable_hazard } => {
                if *nullable_hazard {
                    "unbounded lookahead reachable from a token-free cycle \
                     (left recursion or nullable-closure cycle)"
                        .to_owned()
                } else {
                    "unbounded lookahead reachable from a left-recursive cycle".to_owned()
                }
            }
            Witness::CostBound {
                steps_per_token,
                max,
            } => match steps_per_token {
                Some(a) => format!("certified bound a = {a} steps/token exceeds threshold {max}"),
                None => format!("no linear bound exists (threshold {max})"),
            },
        })
    }

    /// Renders the finding as one human-readable block, `cargo`-style.
    pub fn render_human(&self, g: &Grammar) -> String {
        let mut out = format!(
            "{}[{}]: {}",
            self.severity.as_str(),
            self.code.as_str(),
            self.message
        );
        if let Some(w) = self.render_witness(g) {
            out.push_str("\n  witness: ");
            out.push_str(&w);
        }
        out
    }

    /// Renders the finding as one JSON object.
    pub fn to_json(&self, g: &Grammar) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code.as_str()));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity.as_str()));
        out.push_str(&format!(
            ",\"nonterminal\":{}",
            json_string(g.symbols().nonterminal_name(self.nonterminal))
        ));
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        match self.render_witness(g) {
            Some(w) => out.push_str(&format!(",\"witness\":{}", json_string(&w))),
            None => out.push_str(",\"witness\":null"),
        }
        out.push('}');
        out
    }
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs every lint over the grammar, most severe findings first (ties
/// broken by code, then by nonterminal index, so output is deterministic).
pub fn lint_grammar(g: &Grammar, analysis: &GrammarAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let tab = g.symbols();

    // L001: left recursion, with the cycle as witness.
    for x in analysis.left_recursion.left_recursive_set().iter() {
        let cycle = analysis.left_recursion.witness_cycle(x);
        out.push(Diagnostic {
            code: DiagCode::LeftRecursive,
            severity: DiagCode::LeftRecursive.severity(),
            nonterminal: x,
            message: format!(
                "nonterminal `{}` is left-recursive; CoStar's correctness theorems \
                 require a non-left-recursive grammar (rewrite it, or run \
                 `costar check --eliminate-lr`)",
                tab.nonterminal_name(x)
            ),
            witness: cycle.map(Witness::Cycle),
        });
    }

    // L002: empty language (start symbol unproductive).
    if !analysis.productivity.is_productive(g.start()) {
        out.push(Diagnostic {
            code: DiagCode::EmptyLanguage,
            severity: DiagCode::EmptyLanguage.severity(),
            nonterminal: g.start(),
            message: format!(
                "start symbol `{}` cannot derive any terminal string; the grammar's \
                 language is empty and every parse will reject or diverge",
                tab.nonterminal_name(g.start())
            ),
            witness: None,
        });
    }

    // L003: unproductive nonterminals (other than the start symbol, which
    // L002 already covers more loudly).
    for x in analysis.productivity.unproductive(g) {
        if x == g.start() {
            continue;
        }
        out.push(Diagnostic {
            code: DiagCode::Unproductive,
            severity: DiagCode::Unproductive.severity(),
            nonterminal: x,
            message: format!(
                "nonterminal `{}` cannot derive any terminal string; a prediction \
                 that commits to it can never complete",
                tab.nonterminal_name(x)
            ),
            witness: None,
        });
    }

    // L004: unreachable nonterminals.
    for x in analysis.reachability.unreachable(g) {
        out.push(Diagnostic {
            code: DiagCode::Unreachable,
            severity: DiagCode::Unreachable.severity(),
            nonterminal: x,
            message: format!(
                "nonterminal `{}` is unreachable from the start symbol `{}`; its \
                 productions can never participate in a parse",
                tab.nonterminal_name(x),
                tab.nonterminal_name(g.start())
            ),
            witness: None,
        });
    }

    // L005: duplicate productions — identical (lhs, rhs) pairs make every
    // use of the nonterminal ambiguous.
    let mut seen: HashMap<(NonTerminal, &[crate::symbol::Symbol]), ProdId> = HashMap::new();
    for (pid, p) in g.iter() {
        if let Some(&first) = seen.get(&(p.lhs(), p.rhs())) {
            out.push(Diagnostic {
                code: DiagCode::DuplicateProduction,
                severity: DiagCode::DuplicateProduction.severity(),
                nonterminal: p.lhs(),
                message: format!(
                    "duplicate production for `{}`; every word using it parses \
                     ambiguously",
                    tab.nonterminal_name(p.lhs())
                ),
                witness: Some(Witness::Duplicate { a: first, b: pid }),
            });
        } else {
            seen.insert((p.lhs(), p.rhs()), pid);
        }
    }

    // L006/L007/L008: decision-point findings, driven by the static
    // decision table so the linter and the parser's fast path share one
    // definition of LL(1)-ness. One diagnostic per code per nonterminal
    // (the first qualifying pair), since a single shared prefix typically
    // produces a quadratic blow-up of pairs that all say the same thing.
    //
    // Together L006 and L007 are the exact complement of the `Ll1`
    // decision class: every conflicting pair yields exactly one of them
    // (L007 when a common derivable word proves it ambiguous, L006
    // otherwise), so a multi-alternative nonterminal draws neither code
    // iff it is classified `Ll1` — the partition a unit test enforces.
    for d in analysis.decisions.iter() {
        let x = d.nonterminal;
        if let Some((c, word)) = d
            .conflicts
            .iter()
            .find_map(|c| c.ambiguous_word.as_ref().map(|w| (c, w)))
        {
            out.push(Diagnostic {
                code: DiagCode::StaticAmbiguous,
                severity: DiagCode::StaticAmbiguous.severity(),
                nonterminal: x,
                message: format!(
                    "two alternatives of `{}` derive the same word; every parse \
                     that reaches this decision on such input is ambiguous",
                    tab.nonterminal_name(x)
                ),
                witness: Some(Witness::AmbiguousWord {
                    a: c.a,
                    b: c.b,
                    word: word.clone(),
                }),
            });
        }
        if let Some(c) = d.conflicts.iter().find(|c| c.ambiguous_word.is_none()) {
            out.push(Diagnostic {
                code: DiagCode::Ll1Conflict,
                severity: DiagCode::Ll1Conflict.severity(),
                nonterminal: x,
                message: format!(
                    "alternatives of `{}` are not LL(1)-separable; ALL(*) \
                     prediction resolves this with multi-token lookahead",
                    tab.nonterminal_name(x)
                ),
                witness: Some(Witness::Ll1Pair {
                    a: c.a,
                    b: c.b,
                    lookahead: c.lookahead,
                }),
            });
        }
        if d.class == DecisionClass::SllSafe {
            out.push(Diagnostic {
                code: DiagCode::SllSafe,
                severity: DiagCode::SllSafe.severity(),
                nonterminal: x,
                message: format!(
                    "`{}` is SLL-safe: SLL prediction provably never conflicts \
                     here, so the LL failover path is unreachable for this \
                     decision",
                    tab.nonterminal_name(x)
                ),
                witness: None,
            });
        }
    }

    // L009/L010: audit-pass findings (dead and shadowed alternatives).
    push_audit_diags(g, analysis, None, &mut out);

    sort_diags(&mut out);
    out
}

/// Audit-centric findings: L009 (dead alternative), L010 (shadowed
/// alternative), and — when `max_lookahead` is given — L011 for every
/// decision whose certified bound exceeds the threshold (or has no
/// finite bound at all). This is the diagnostic engine behind
/// `costar audit`; plain [`lint_grammar`] also reports L009/L010 but
/// never L011, which is meaningless without a threshold.
pub fn audit_findings(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    max_lookahead: Option<usize>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    push_audit_diags(g, analysis, max_lookahead, &mut out);
    sort_diags(&mut out);
    out
}

/// Cost-centric findings: L012 for every unbounded decision point
/// reachable from a token-free cycle (the superlinear-prediction risk
/// set of the [`CostModel`](crate::analysis::CostModel)), and — when
/// `max_steps_per_token` is given — L013 when the certified bound
/// exceeds the threshold (a grammar with no linear bound exceeds every
/// threshold). This is the diagnostic engine behind `costar cost`;
/// plain [`lint_grammar`] emits neither code, keeping its output stable.
pub fn cost_findings(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    max_steps_per_token: Option<u64>,
) -> Vec<Diagnostic> {
    let tab = g.symbols();
    let cost = &analysis.cost;
    let mut out = Vec::new();
    for &x in &cost.superlinear {
        out.push(Diagnostic {
            code: DiagCode::SuperlinearPrediction,
            severity: DiagCode::SuperlinearPrediction.severity(),
            nonterminal: x,
            message: format!(
                "deciding `{}` has no certified lookahead bound and is reachable \
                 from a token-free cycle; prediction work can grow faster than \
                 the input being consumed",
                tab.nonterminal_name(x)
            ),
            witness: Some(Witness::Superlinear {
                nullable_hazard: cost.nullable_hazard,
            }),
        });
    }
    if let Some(max) = max_steps_per_token {
        let exceeds = match cost.steps_per_token() {
            Some(a) => a > max,
            None => true,
        };
        if exceeds {
            let bound = match cost.steps_per_token() {
                Some(a) => format!("a = {a} steps per token"),
                None => "no linear bound".to_owned(),
            };
            out.push(Diagnostic {
                code: DiagCode::CostBound,
                severity: DiagCode::CostBound.severity(),
                nonterminal: g.start(),
                message: format!(
                    "the certified cost bound is {bound}, beyond the requested \
                     --max-steps-per-token {max}"
                ),
                witness: Some(Witness::CostBound {
                    steps_per_token: cost.steps_per_token(),
                    max,
                }),
            });
        }
    }
    sort_diags(&mut out);
    out
}

fn sort_diags(out: &mut [Diagnostic]) {
    out.sort_by(|a, b| {
        (a.severity, a.code, a.nonterminal.index()).cmp(&(
            b.severity,
            b.code,
            b.nonterminal.index(),
        ))
    });
}

/// Shared L009/L010/L011 emission, one diagnostic per code per
/// nonterminal (first qualifying alternative or pair). L009 is skipped
/// for unproductive nonterminals: there *every* alternative is dead and
/// L002/L003 already report the defect at the right granularity.
fn push_audit_diags(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    max_lookahead: Option<usize>,
    out: &mut Vec<Diagnostic>,
) {
    let tab = g.symbols();
    for info in analysis.audit.iter() {
        let x = info.nonterminal;
        let dead_first = info
            .dead
            .first()
            .filter(|_| analysis.productivity.is_productive(x));
        if let Some(&p) = dead_first {
            out.push(Diagnostic {
                code: DiagCode::DeadAlternative,
                severity: DiagCode::DeadAlternative.severity(),
                nonterminal: x,
                message: format!(
                    "an alternative of `{}` derives no terminal string; no \
                     input ever selects it",
                    tab.nonterminal_name(x)
                ),
                witness: Some(Witness::DeadAlt { production: p }),
            });
        }
        if let Some(&(earlier, later)) = info.shadowed.first() {
            out.push(Diagnostic {
                code: DiagCode::ShadowedAlternative,
                severity: DiagCode::ShadowedAlternative.severity(),
                nonterminal: x,
                message: format!(
                    "a later alternative of `{}` is wholly covered by an earlier \
                     one; ambiguity resolution always prefers the earlier \
                     alternative, so the later can never win",
                    tab.nonterminal_name(x)
                ),
                witness: Some(Witness::Shadowed { earlier, later }),
            });
        }
        if let Some(max) = max_lookahead {
            let exceeds = match info.k {
                Some(k) => k > max,
                None => true,
            };
            if exceeds {
                let bound = match info.k {
                    Some(k) => format!("k = {k}"),
                    None => "no finite bound".to_owned(),
                };
                out.push(Diagnostic {
                    code: DiagCode::LookaheadBound,
                    severity: DiagCode::LookaheadBound.severity(),
                    nonterminal: x,
                    message: format!(
                        "deciding `{}` needs {bound} of lookahead, beyond the \
                         requested --max-lookahead {max}",
                        tab.nonterminal_name(x)
                    ),
                    witness: Some(Witness::LookaheadBound { k: info.k, max }),
                });
            }
        }
    }
}

/// The worst severity among `diags`, or `None` when the list is empty —
/// what the CLI folds into its exit code.
pub fn worst_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn lint(build: impl FnOnce(&mut GrammarBuilder)) -> (Grammar, Vec<Diagnostic>) {
        let mut gb = GrammarBuilder::new();
        build(&mut gb);
        let g = gb.build().unwrap();
        let analysis = GrammarAnalysis::compute(&g);
        let diags = lint_grammar(&g, &analysis);
        (g, diags)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_grammar_has_no_findings() {
        let (_, diags) = lint(|gb| {
            gb.rule("S", &["A", "c"]);
            gb.rule("S", &["b", "d"]);
            gb.rule("A", &["a"]);
            gb.start("S");
        });
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn left_recursion_reported_with_cycle() {
        let (g, diags) = lint(|gb| {
            gb.rule("E", &["E", "plus", "Int"]);
            gb.rule("E", &["Int"]);
            gb.start("E");
        });
        // Besides L001, the two alternatives share FIRST on `Int`, so an
        // LL(1) note rides along — the error must sort first.
        assert_eq!(codes(&diags), vec!["L001", "L006"]);
        let d = &diags[0];
        assert_eq!(d.severity, Severity::Error);
        let w = d.render_witness(&g).unwrap();
        assert_eq!(w, "E \u{21d2} E");
        assert!(d.render_human(&g).contains("error[L001]"));
    }

    #[test]
    fn hidden_left_recursion_through_nullable_prefix() {
        let (g, diags) = lint(|gb| {
            gb.rule("S", &["N", "S", "x"]);
            gb.rule("S", &["y"]);
            gb.rule("N", &[]);
            gb.rule("N", &["n"]);
            gb.start("S");
        });
        assert!(codes(&diags).contains(&"L001"), "{diags:?}");
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::LeftRecursive)
            .unwrap();
        assert_eq!(g.symbols().nonterminal_name(d.nonterminal), "S");
    }

    #[test]
    fn empty_language_beats_unproductive_for_start() {
        let (_, diags) = lint(|gb| {
            gb.rule("S", &["S", "a"]); // no base case anywhere
            gb.start("S");
        });
        let c = codes(&diags);
        assert!(c.contains(&"L002"), "{c:?}");
        assert!(!c.contains(&"L003"), "start covered by L002 only: {c:?}");
    }

    #[test]
    fn unproductive_and_unreachable_reported() {
        let (g, diags) = lint(|gb| {
            gb.rule("S", &["ok"]);
            gb.rule("Pit", &["a", "Pit"]); // unproductive AND unreachable
            gb.rule("Dead", &["b"]); // merely unreachable
            gb.start("S");
        });
        let c = codes(&diags);
        assert!(c.contains(&"L003"), "{c:?}");
        assert!(c.contains(&"L004"), "{c:?}");
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::Unreachable)
            .map(|d| g.symbols().nonterminal_name(d.nonterminal))
            .collect();
        assert!(unreachable.contains(&"Dead"));
        assert!(unreachable.contains(&"Pit"));
    }

    #[test]
    fn duplicate_production_reported_once() {
        let (g, diags) = lint(|gb| {
            gb.rule("S", &["a"]);
            gb.rule("S", &["a"]);
            gb.start("S");
        });
        let dups: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::DuplicateProduction)
            .collect();
        assert_eq!(dups.len(), 1);
        assert!(dups[0]
            .render_witness(&g)
            .unwrap()
            .contains("appears twice"));
        // The identical pair must not *also* show up as an LL(1) note.
        assert!(!codes(&diags).contains(&"L006"), "{diags:?}");
    }

    #[test]
    fn ll1_conflict_notes_the_pair_and_lookahead() {
        // Fig. 2 of the paper: S -> A c | A d shares FIRST(A) = {a, b}.
        let (g, diags) = lint(|gb| {
            gb.rule("S", &["A", "c"]);
            gb.rule("S", &["A", "d"]);
            gb.rule("A", &["a", "A"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        });
        // S also proves SLL-safe (the c/d suffix always separates the
        // alternatives), so an L008 note rides along after the L006.
        assert_eq!(codes(&diags), vec!["L006", "L008"]);
        let d = &diags[0];
        assert_eq!(d.severity, Severity::Note);
        let w = d.render_witness(&g).unwrap();
        assert!(w.contains("lookahead"), "{w}");
        assert!(w.contains("S -> A c") || w.contains("A c"), "{w}");
        let sll = &diags[1];
        assert_eq!(sll.severity, Severity::Note);
        assert!(sll.message.contains("SLL-safe"), "{}", sll.message);
    }

    #[test]
    fn nullable_nullable_ambiguity_witnessed_by_empty_word() {
        // A -> ε and A -> B with B -> ε both derive the empty word: not
        // just an LL(1) conflict but a proven ambiguity, so the decision
        // analysis upgrades the finding to L007 with the empty word as
        // witness (and no L006 rides along for the same pair).
        let (g, diags) = lint(|gb| {
            gb.rule("S", &["A"]);
            gb.rule("A", &[]);
            gb.rule("A", &["B"]);
            gb.rule("B", &[]);
            gb.start("S");
        });
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::StaticAmbiguous)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        let Some(Witness::AmbiguousWord { word, .. }) = &d.witness else {
            panic!("expected an ambiguous-word witness");
        };
        assert!(word.is_empty());
        assert!(d.render_witness(&g).unwrap().contains("empty word"));
        assert!(!codes(&diags).contains(&"L006"), "{diags:?}");
    }

    #[test]
    fn ambiguous_pair_reported_with_word_witness() {
        // Paper Fig. 6 shape: S -> X | Y with X, Y -> a. The common word
        // "a" is exact proof of ambiguity: L007 at error severity.
        let (g, diags) = lint(|gb| {
            gb.rule("S", &["X"]);
            gb.rule("S", &["Y"]);
            gb.rule("X", &["a"]);
            gb.rule("Y", &["a"]);
            gb.start("S");
        });
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::StaticAmbiguous)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        let w = d.render_witness(&g).unwrap();
        assert!(w.contains("both derive `a`"), "{w}");
        // Errors sort before everything else.
        assert_eq!(diags[0].code, DiagCode::StaticAmbiguous);
    }

    #[test]
    fn dead_alternative_reported_as_error() {
        // U derives nothing, so `S -> U x` is dead while S stays live.
        let (g, diags) = lint(|gb| {
            gb.rule("S", &["a"]);
            gb.rule("S", &["U", "x"]);
            gb.rule("U", &["u", "U"]);
            gb.start("S");
        });
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::DeadAlternative)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(g.symbols().nonterminal_name(d.nonterminal), "S");
        let w = d.render_witness(&g).unwrap();
        assert!(w.contains("S -> U x"), "{w}");
        // U itself draws L003, not L009: every alternative of an
        // unproductive nonterminal is dead, and that defect already has
        // a code at the right granularity.
        assert!(
            !diags.iter().any(|d| d.code == DiagCode::DeadAlternative
                && g.symbols().nonterminal_name(d.nonterminal) == "U"),
            "{diags:?}"
        );
    }

    #[test]
    fn shadowed_alternative_reported_as_warning() {
        // lang(S -> a) = {a} ⊆ lang(S -> A) = {a, b}.
        let (g, diags) = lint(|gb| {
            gb.rule("S", &["A"]);
            gb.rule("S", &["a"]);
            gb.rule("A", &["a"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        });
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::ShadowedAlternative)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        let w = d.render_witness(&g).unwrap();
        assert!(
            w.contains("`S -> a` is covered by the earlier `S -> A`"),
            "{w}"
        );
    }

    #[test]
    fn audit_findings_reports_l011_only_with_threshold() {
        // S -> a b c | a b d certifies k = 3.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "b", "c"]);
        gb.rule("S", &["a", "b", "d"]);
        gb.start("S");
        let g = gb.build().unwrap();
        let analysis = GrammarAnalysis::compute(&g);
        assert!(
            !lint_grammar(&g, &analysis)
                .iter()
                .any(|d| d.code == DiagCode::LookaheadBound),
            "plain lint never emits L011"
        );
        let none = audit_findings(&g, &analysis, None);
        assert!(!none.iter().any(|d| d.code == DiagCode::LookaheadBound));
        let within = audit_findings(&g, &analysis, Some(3));
        assert!(!within.iter().any(|d| d.code == DiagCode::LookaheadBound));
        let over = audit_findings(&g, &analysis, Some(2));
        let d = over
            .iter()
            .find(|d| d.code == DiagCode::LookaheadBound)
            .unwrap();
        assert_eq!(d.severity, Severity::Note);
        let w = d.render_witness(&g).unwrap();
        assert!(w.contains("k = 3"), "{w}");
        // Unbounded decisions always exceed any threshold.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S");
        let g = gb.build().unwrap();
        let analysis = GrammarAnalysis::compute(&g);
        let diags = audit_findings(&g, &analysis, Some(1_000_000));
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::LookaheadBound)
            .unwrap();
        assert!(d.render_witness(&g).unwrap().contains("no finite bound"));
    }

    #[test]
    fn cost_findings_reports_l012_for_superlinear_decisions() {
        // E -> E plus int | int: E is left-recursive, so its unbounded
        // decision sits on a token-free cycle — the L012 combination.
        let mut gb = GrammarBuilder::new();
        gb.rule("E", &["E", "plus", "int"]);
        gb.rule("E", &["int"]);
        gb.start("E");
        let g = gb.build().unwrap();
        let analysis = GrammarAnalysis::compute(&g);
        let e = g.symbols().lookup_nonterminal("E").unwrap();
        assert_eq!(analysis.audit.k_bound(e), None, "E must audit unbounded");
        let diags = cost_findings(&g, &analysis, None);
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::SuperlinearPrediction)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.nonterminal, e);
        assert!(d
            .render_witness(&g)
            .unwrap()
            .contains("left-recursive cycle"));
        // Plain lint never emits the cost codes — its output is pinned by
        // other tests and must not change.
        assert!(!lint_grammar(&g, &analysis).iter().any(|d| matches!(
            d.code,
            DiagCode::SuperlinearPrediction | DiagCode::CostBound
        )));
        // Fig. 2's unbounded decision has no token-free cycle: no L012.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S");
        let g = gb.build().unwrap();
        let analysis = GrammarAnalysis::compute(&g);
        assert!(!cost_findings(&g, &analysis, None)
            .iter()
            .any(|d| d.code == DiagCode::SuperlinearPrediction));
    }

    #[test]
    fn cost_findings_reports_l013_only_with_threshold() {
        // S -> a S | b certifies the linear bound a = 5 steps/token.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "S"]);
        gb.rule("S", &["b"]);
        gb.start("S");
        let g = gb.build().unwrap();
        let analysis = GrammarAnalysis::compute(&g);
        assert_eq!(analysis.cost.steps_per_token(), Some(5));
        assert!(cost_findings(&g, &analysis, None).is_empty());
        assert!(cost_findings(&g, &analysis, Some(5)).is_empty());
        let over = cost_findings(&g, &analysis, Some(4));
        let d = over.iter().find(|d| d.code == DiagCode::CostBound).unwrap();
        assert_eq!(d.severity, Severity::Note);
        let w = d.render_witness(&g).unwrap();
        assert!(w.contains("a = 5 steps/token"), "{w}");
        // A grammar with no linear bound exceeds every threshold.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S");
        let g = gb.build().unwrap();
        let analysis = GrammarAnalysis::compute(&g);
        let diags = cost_findings(&g, &analysis, Some(u64::MAX));
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::CostBound)
            .unwrap();
        assert!(d.render_witness(&g).unwrap().contains("no linear bound"));
    }

    #[test]
    fn ll1_class_partitions_decision_points_with_l006_l007() {
        // The contract behind the parser's static fast path: a
        // multi-alternative nonterminal is classified `Ll1` exactly when
        // the linter reports neither L006 nor L007 for it. The audit
        // codes partition the same way: L009 fires exactly for live
        // nonterminals with a dead alternative, L010 exactly for
        // decisions with a shadowed alternative, and each appears at
        // most once per nonterminal.
        let builders: Vec<fn(&mut GrammarBuilder)> = vec![
            |gb| {
                // Fig. 2: A is LL(1), S conflicts (SLL-safe).
                gb.rule("S", &["A", "c"]);
                gb.rule("S", &["A", "d"]);
                gb.rule("A", &["a", "A"]);
                gb.rule("A", &["b"]);
                gb.start("S");
            },
            |gb| {
                // Fig. 6: genuinely ambiguous S.
                gb.rule("S", &["X"]);
                gb.rule("S", &["Y"]);
                gb.rule("X", &["a"]);
                gb.rule("Y", &["a"]);
                gb.start("S");
            },
            |gb| {
                // Duplicate (ambiguous) and nullable-nullable decisions.
                gb.rule("S", &["A"]);
                gb.rule("S", &["A"]);
                gb.rule("A", &[]);
                gb.rule("A", &["B"]);
                gb.rule("B", &["b"]);
                gb.start("S");
            },
            |gb| {
                // Left recursion: conflicting but not provably ambiguous.
                gb.rule("E", &["E", "plus", "int"]);
                gb.rule("E", &["int"]);
                gb.start("E");
            },
            |gb| {
                // Clean LL(1) decisions everywhere.
                gb.rule("S", &["A", "c"]);
                gb.rule("S", &["b", "d"]);
                gb.rule("A", &["a"]);
                gb.rule("A", &[]);
                gb.start("S");
            },
            |gb| {
                // Dead alternative: U is unproductive, S stays live.
                gb.rule("S", &["a"]);
                gb.rule("S", &["U", "x"]);
                gb.rule("U", &["u", "U"]);
                gb.start("S");
            },
            |gb| {
                // Shadowed alternative: lang(S -> a) ⊆ lang(S -> A).
                gb.rule("S", &["A"]);
                gb.rule("S", &["a"]);
                gb.rule("A", &["a"]);
                gb.rule("A", &["b"]);
                gb.start("S");
            },
        ];
        for build in builders {
            let mut gb = GrammarBuilder::new();
            build(&mut gb);
            let g = gb.build().unwrap();
            let analysis = GrammarAnalysis::compute(&g);
            let diags = lint_grammar(&g, &analysis);
            for x in g.symbols().nonterminals() {
                if g.alternatives(x).len() < 2 {
                    continue;
                }
                let is_ll1 = analysis
                    .decisions
                    .decision(x)
                    .is_some_and(|d| d.class == DecisionClass::Ll1);
                let flagged = diags.iter().any(|d| {
                    d.nonterminal == x
                        && matches!(d.code, DiagCode::Ll1Conflict | DiagCode::StaticAmbiguous)
                });
                assert_eq!(
                    is_ll1,
                    !flagged,
                    "partition violated for `{}`",
                    g.symbols().nonterminal_name(x)
                );
                // Audit-code partition: L009 iff a live nonterminal has a
                // dead alternative, L010 iff one is shadowed; at most one
                // diagnostic per code per nonterminal.
                let audit = analysis.audit.audit(x).unwrap();
                let want_dead = !audit.dead.is_empty() && analysis.productivity.is_productive(x);
                let dead_count = diags
                    .iter()
                    .filter(|d| d.nonterminal == x && d.code == DiagCode::DeadAlternative)
                    .count();
                assert_eq!(dead_count, usize::from(want_dead));
                let shadow_count = diags
                    .iter()
                    .filter(|d| d.nonterminal == x && d.code == DiagCode::ShadowedAlternative)
                    .count();
                assert_eq!(shadow_count, usize::from(!audit.shadowed.is_empty()));
            }
        }
    }

    #[test]
    fn ordering_is_severity_then_code() {
        let (_, diags) = lint(|gb| {
            gb.rule("S", &["E", "x"]);
            gb.rule("S", &["y"]);
            gb.rule("E", &["E", "z"]); // left-recursive AND unproductive
            gb.rule("Dead", &["d"]); // unreachable
            gb.start("S");
        });
        let c = codes(&diags);
        assert_eq!(c[0], "L001", "{c:?}");
        let sevs: Vec<_> = diags.iter().map(|d| d.severity).collect();
        let mut sorted = sevs.clone();
        sorted.sort();
        assert_eq!(sevs, sorted);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let (g, diags) = lint(|gb| {
            gb.rule("E", &["E", "x"]);
            gb.rule("E", &["y"]);
            gb.start("E");
        });
        let json = diags[0].to_json(&g);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"code\":\"L001\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"witness\":\"E \u{21d2} E\""), "{json}");
    }

    #[test]
    fn worst_severity_folds() {
        assert_eq!(worst_severity(&[]), None);
        let (_, diags) = lint(|gb| {
            gb.rule("S", &["a"]);
            gb.rule("Dead", &["b"]);
            gb.start("S");
        });
        assert_eq!(worst_severity(&diags), Some(Severity::Warning));
    }
}
