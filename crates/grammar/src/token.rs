//! Tokens: the parser's input alphabet.
//!
//! A token `t ::= (a, l)` (paper Fig. 1) pairs a [`Terminal`] with the
//! literal string it matched. CoStar parses pre-tokenized input, so a word
//! `w` is simply a sequence of tokens.

use crate::symbol::Terminal;
use std::fmt;
use std::sync::Arc;

/// A token: a terminal symbol plus the matched literal.
///
/// The lexeme is an `Arc<str>`, so cloning a token — which the parser's
/// hot consume path does once per matched token to build the leaf of the
/// parse tree — is a reference-count bump, not a string allocation.
/// Equality and hashing compare lexeme *content*, not pointers.
///
/// # Examples
///
/// ```
/// use costar_grammar::{SymbolTable, Token};
/// let mut tab = SymbolTable::new();
/// let int = tab.terminal("Int");
/// let t = Token::new(int, "42");
/// assert_eq!(t.terminal(), int);
/// assert_eq!(t.lexeme(), "42");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    terminal: Terminal,
    lexeme: Arc<str>,
    /// Byte offset of the lexeme in the source text, when known.
    offset: usize,
}

impl Token {
    /// Creates a token with no source position.
    pub fn new(terminal: Terminal, lexeme: &str) -> Self {
        Token {
            terminal,
            lexeme: lexeme.into(),
            offset: 0,
        }
    }

    /// Creates a token recording the byte offset of the lexeme in its
    /// source text.
    pub fn with_offset(terminal: Terminal, lexeme: &str, offset: usize) -> Self {
        Token {
            terminal,
            lexeme: lexeme.into(),
            offset,
        }
    }

    /// The terminal symbol this token was classified as.
    pub fn terminal(&self) -> Terminal {
        self.terminal
    }

    /// The literal text the token matched.
    pub fn lexeme(&self) -> &str {
        &self.lexeme
    }

    /// Byte offset of the lexeme in the source text (0 when unknown).
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {:?})", self.terminal, &*self.lexeme)
    }
}

/// Builds a token sequence from `(terminal-name, lexeme)` pairs, interning
/// terminal names in `tab`. A convenience for tests and examples.
///
/// # Examples
///
/// ```
/// use costar_grammar::{tokens, SymbolTable};
/// let mut tab = SymbolTable::new();
/// let word = tokens(&mut tab, &[("Int", "1"), ("Plus", "+"), ("Int", "2")]);
/// assert_eq!(word.len(), 3);
/// ```
pub fn tokens(tab: &mut crate::SymbolTable, pairs: &[(&str, &str)]) -> Vec<Token> {
    pairs
        .iter()
        .map(|&(name, lexeme)| Token::new(tab.terminal(name), lexeme))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolTable;

    #[test]
    fn token_accessors() {
        let mut tab = SymbolTable::new();
        let t = Token::with_offset(tab.terminal("Int"), "42", 10);
        assert_eq!(t.lexeme(), "42");
        assert_eq!(t.offset(), 10);
        assert_eq!(tab.terminal_name(t.terminal()), "Int");
    }

    #[test]
    fn tokens_helper_interns_terminals() {
        let mut tab = SymbolTable::new();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("a", "a2")]);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].terminal(), w[2].terminal());
        assert_ne!(w[0].terminal(), w[1].terminal());
        assert_eq!(w[2].lexeme(), "a2");
    }

    #[test]
    fn display_contains_lexeme() {
        let mut tab = SymbolTable::new();
        let t = Token::new(tab.terminal("Int"), "42");
        assert!(format!("{t}").contains("42"));
    }

    #[test]
    fn clones_share_the_lexeme_allocation() {
        let mut tab = SymbolTable::new();
        let t = Token::new(tab.terminal("Int"), "42");
        let c = t.clone();
        assert_eq!(t, c);
        assert!(std::ptr::eq(t.lexeme().as_ptr(), c.lexeme().as_ptr()));
        // Content equality, not pointer equality.
        assert_eq!(t, Token::new(tab.terminal("Int"), "42"));
    }
}
