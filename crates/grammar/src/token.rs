//! Tokens: the parser's input alphabet.
//!
//! A token `t ::= (a, l)` (paper Fig. 1) pairs a [`Terminal`] with the
//! literal string it matched. CoStar parses pre-tokenized input, so a word
//! `w` is simply a sequence of tokens.

use crate::symbol::Terminal;
use std::fmt;
use std::sync::Arc;

/// A source location: byte offset and length of a lexeme, plus its
/// 1-based line and column. Line/column 0 means "unknown" — tokens built
/// without a source text (tests, `--tokens` mode) carry unknown
/// positions, and diagnostics fall back to byte offsets or token indices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the lexeme in the source text.
    pub offset: usize,
    /// Byte length of the lexeme (0 for synthesized tokens).
    pub len: usize,
    /// 1-based source line (0 = unknown).
    pub line: u32,
    /// 1-based source column, in bytes from the line start (0 = unknown).
    pub col: u32,
}

impl Span {
    /// A span with full position information.
    pub fn new(offset: usize, len: usize, line: u32, col: u32) -> Self {
        Span {
            offset,
            len,
            line,
            col,
        }
    }

    /// A span recording only a byte offset (line/column unknown).
    pub fn at_offset(offset: usize) -> Self {
        Span {
            offset,
            ..Span::default()
        }
    }

    /// `true` when line/column information is present.
    pub fn has_position(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.has_position() {
            write!(f, "line {}, column {}", self.line, self.col)
        } else {
            write!(f, "byte offset {}", self.offset)
        }
    }
}

/// A token: a terminal symbol plus the matched literal.
///
/// The lexeme is an `Arc<str>`, so cloning a token — which the parser's
/// hot consume path does once per matched token to build the leaf of the
/// parse tree — is a reference-count bump, not a string allocation.
/// Equality and hashing compare lexeme *content*, not pointers.
///
/// # Examples
///
/// ```
/// use costar_grammar::{SymbolTable, Token};
/// let mut tab = SymbolTable::new();
/// let int = tab.terminal("Int");
/// let t = Token::new(int, "42");
/// assert_eq!(t.terminal(), int);
/// assert_eq!(t.lexeme(), "42");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    terminal: Terminal,
    lexeme: Arc<str>,
    /// Source location of the lexeme, when known.
    span: Span,
}

impl Token {
    /// Creates a token with no source position.
    pub fn new(terminal: Terminal, lexeme: &str) -> Self {
        Token {
            terminal,
            lexeme: lexeme.into(),
            span: Span::default(),
        }
    }

    /// Creates a token recording the byte offset of the lexeme in its
    /// source text (line/column unknown).
    pub fn with_offset(terminal: Terminal, lexeme: &str, offset: usize) -> Self {
        Token {
            terminal,
            lexeme: lexeme.into(),
            span: Span::at_offset(offset),
        }
    }

    /// Creates a token with a full source span.
    pub fn with_span(terminal: Terminal, lexeme: &str, span: Span) -> Self {
        Token {
            terminal,
            lexeme: lexeme.into(),
            span,
        }
    }

    /// Creates a token that shares an already-allocated lexeme. Lexers
    /// intern fixed spellings (keywords, punctuation) once per grammar and
    /// hand out reference-count bumps here instead of allocating a fresh
    /// `Arc<str>` per occurrence.
    pub fn with_shared_lexeme(terminal: Terminal, lexeme: Arc<str>, span: Span) -> Self {
        Token {
            terminal,
            lexeme,
            span,
        }
    }

    /// The terminal symbol this token was classified as.
    pub fn terminal(&self) -> Terminal {
        self.terminal
    }

    /// The literal text the token matched.
    pub fn lexeme(&self) -> &str {
        &self.lexeme
    }

    /// Byte offset of the lexeme in the source text (0 when unknown).
    pub fn offset(&self) -> usize {
        self.span.offset
    }

    /// Source location of the lexeme.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Replaces the token's span in place, keeping terminal and lexeme.
    /// Incremental lexing rebases every downstream token after a splice
    /// this way — an O(1) span update instead of a token rebuild.
    pub fn set_span(&mut self, span: Span) {
        self.span = span;
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {:?})", self.terminal, &*self.lexeme)
    }
}

/// Builds a token sequence from `(terminal-name, lexeme)` pairs, interning
/// terminal names in `tab`. A convenience for tests and examples.
///
/// # Examples
///
/// ```
/// use costar_grammar::{tokens, SymbolTable};
/// let mut tab = SymbolTable::new();
/// let word = tokens(&mut tab, &[("Int", "1"), ("Plus", "+"), ("Int", "2")]);
/// assert_eq!(word.len(), 3);
/// ```
pub fn tokens(tab: &mut crate::SymbolTable, pairs: &[(&str, &str)]) -> Vec<Token> {
    pairs
        .iter()
        .map(|&(name, lexeme)| Token::new(tab.terminal(name), lexeme))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolTable;

    #[test]
    fn token_accessors() {
        let mut tab = SymbolTable::new();
        let t = Token::with_offset(tab.terminal("Int"), "42", 10);
        assert_eq!(t.lexeme(), "42");
        assert_eq!(t.offset(), 10);
        assert_eq!(tab.terminal_name(t.terminal()), "Int");
    }

    #[test]
    fn tokens_helper_interns_terminals() {
        let mut tab = SymbolTable::new();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("a", "a2")]);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].terminal(), w[2].terminal());
        assert_ne!(w[0].terminal(), w[1].terminal());
        assert_eq!(w[2].lexeme(), "a2");
    }

    #[test]
    fn spans_carry_line_and_column() {
        let mut tab = SymbolTable::new();
        let sp = Span::new(12, 3, 2, 5);
        let t = Token::with_span(tab.terminal("Id"), "foo", sp);
        assert_eq!(t.span(), sp);
        assert_eq!(t.offset(), 12);
        assert!(sp.has_position());
        assert_eq!(sp.to_string(), "line 2, column 5");
        // Offset-only spans display the byte offset fallback.
        let off = Span::at_offset(7);
        assert!(!off.has_position());
        assert_eq!(off.to_string(), "byte offset 7");
        // Tokens without positions default to the unknown span.
        assert_eq!(Token::new(tab.terminal("Id"), "x").span(), Span::default());
    }

    #[test]
    fn display_contains_lexeme() {
        let mut tab = SymbolTable::new();
        let t = Token::new(tab.terminal("Int"), "42");
        assert!(format!("{t}").contains("42"));
    }

    #[test]
    fn clones_share_the_lexeme_allocation() {
        let mut tab = SymbolTable::new();
        let t = Token::new(tab.terminal("Int"), "42");
        let c = t.clone();
        assert_eq!(t, c);
        assert!(std::ptr::eq(t.lexeme().as_ptr(), c.lexeme().as_ptr()));
        // Content equality, not pointer equality.
        assert_eq!(t, Token::new(tab.terminal("Int"), "42"));
    }
}
