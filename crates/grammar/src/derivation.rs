//! Executable derivation relation (paper Fig. 3).
//!
//! CoStar's correctness specification is the mutually inductive pair of
//! judgments `s -v-> w` ("symbol `s` derives word `w`, producing tree `v`")
//! and `γ -f-> w` (for sentential forms and forests). In Coq these are
//! relations used in proofs; here they become *checkers*: given a tree the
//! parser produced, [`check_tree`] decides whether the derivation judgment
//! holds. Together with the Earley oracle in `costar-baselines`, this is
//! how the soundness theorems (5.1 and 5.6) are validated in tests.

use crate::grammar::Grammar;
use crate::symbol::{NonTerminal, Symbol};
use crate::token::Token;
use crate::tree::{forest_roots, Tree};
use std::fmt;

/// Why a tree failed the derivation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivationError {
    /// A leaf's terminal does not match the token at its position in the
    /// word, or the word ended early / has leftover tokens.
    LeafMismatch {
        /// Index in the word where the mismatch occurred.
        at: usize,
    },
    /// A node `Node(X, f)` whose children's roots spell a sentential form
    /// that is not a right-hand side of `X` in the grammar
    /// (the `X → γ ∈ G` premise of DerNonterminal).
    NoSuchProduction {
        /// The offending node's nonterminal.
        lhs: NonTerminal,
    },
    /// The root of the tree is not the expected start symbol.
    WrongRoot,
    /// The tree's yield is not the input word.
    YieldMismatch,
    /// The tree contains a recovery [`Tree::Error`] node — by definition
    /// not part of any derivation.
    ErrorNode {
        /// Index in the word where the error node sits.
        at: usize,
    },
}

impl fmt::Display for DerivationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerivationError::LeafMismatch { at } => {
                write!(f, "leaf token mismatch at word position {at}")
            }
            DerivationError::NoSuchProduction { lhs } => {
                write!(
                    f,
                    "node for {lhs} uses a right-hand side not in the grammar"
                )
            }
            DerivationError::WrongRoot => write!(f, "tree root is not the start symbol"),
            DerivationError::YieldMismatch => {
                write!(f, "tree yield differs from the input word")
            }
            DerivationError::ErrorNode { at } => {
                write!(f, "tree contains a recovery error node at position {at}")
            }
        }
    }
}

impl std::error::Error for DerivationError {}

/// Checks the judgment `X -Node(X,f)-> w`: the tree is a well-formed parse
/// tree for word `w` rooted at `root` with respect to grammar `g`.
///
/// This is the executable form of the paper's Theorem 5.1 / 5.6 conclusion
/// "v is a correct parse tree rooted at S for w".
///
/// # Errors
///
/// Returns the first [`DerivationError`] found in a pre-order walk.
///
/// # Examples
///
/// ```
/// use costar_grammar::{check_tree, GrammarBuilder, Token, Tree};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a"]);
/// let g = gb.start("S").build()?;
/// let a = g.symbols().lookup_terminal("a").unwrap();
/// let s = g.symbols().lookup_nonterminal("S").unwrap();
/// let word = vec![Token::new(a, "a")];
/// let tree = Tree::Node(s, vec![Tree::Leaf(word[0].clone())]);
/// assert!(check_tree(&g, s, &word, &tree).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_tree(
    g: &Grammar,
    root: NonTerminal,
    word: &[Token],
    tree: &Tree,
) -> Result<(), DerivationError> {
    if tree.root_symbol() != Some(Symbol::Nt(root)) {
        return Err(DerivationError::WrongRoot);
    }
    let consumed = check_sym(g, tree, word, 0)?;
    if consumed != word.len() {
        return Err(DerivationError::YieldMismatch);
    }
    Ok(())
}

/// Checks a subtree starting at word position `at`; returns the position
/// after the subtree's yield.
fn check_sym(
    g: &Grammar,
    tree: &Tree,
    word: &[Token],
    at: usize,
) -> Result<usize, DerivationError> {
    match tree {
        Tree::Leaf(t) => match word.get(at) {
            Some(w) if w.terminal() == t.terminal() => Ok(at + 1),
            _ => Err(DerivationError::LeafMismatch { at }),
        },
        Tree::Node(x, children) => {
            // An error child means this node was patched by recovery; say
            // so rather than blaming the (damaged) form for not being a
            // production.
            let mut epos = at;
            for c in children {
                if matches!(c, Tree::Error(_)) {
                    return Err(DerivationError::ErrorNode { at: epos });
                }
                epos += c.leaf_count();
            }
            let form = forest_roots(children);
            if !has_production(g, *x, &form) {
                return Err(DerivationError::NoSuchProduction { lhs: *x });
            }
            let mut pos = at;
            for c in children {
                pos = check_sym(g, c, word, pos)?;
            }
            Ok(pos)
        }
        Tree::Error(_) => Err(DerivationError::ErrorNode { at }),
    }
}

/// Does grammar `g` contain the production `x → form`?
pub fn has_production(g: &Grammar, x: NonTerminal, form: &[Symbol]) -> bool {
    g.alternatives(x)
        .iter()
        .any(|&pid| g.production(pid).rhs() == form)
}

/// Resolves which production a tree node instantiates: the unique
/// production of the node's nonterminal whose right-hand side equals the
/// children's root symbols. Returns `None` for leaves or nodes that do
/// not correspond to any production (e.g. hand-built trees).
///
/// Parse trees do not record production identities (paper Fig. 1's
/// `Node(X, f)` carries only the nonterminal), so semantic analyses that
/// dispatch on productions recover them with this lookup; it is O(#
/// alternatives of X).
///
/// # Examples
///
/// ```
/// use costar_grammar::{production_of_node, GrammarBuilder, Token, Tree};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a"]);
/// gb.rule("S", &["b"]);
/// let g = gb.start("S").build()?;
/// let b = g.symbols().lookup_terminal("b").unwrap();
/// let s = g.symbols().lookup_nonterminal("S").unwrap();
/// let node = Tree::Node(s, vec![Tree::Leaf(Token::new(b, "b"))]);
/// let pid = production_of_node(&g, &node).unwrap();
/// assert_eq!(g.render_production(pid), "S -> b");
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
pub fn production_of_node(g: &Grammar, node: &Tree) -> Option<crate::ProdId> {
    let Tree::Node(x, children) = node else {
        return None;
    };
    let form = forest_roots(children);
    g.alternatives(*x)
        .iter()
        .copied()
        .find(|&pid| g.production(pid).rhs() == form)
}

/// Checks the *recognition* judgment `s → w` (the two-place variant of the
/// derivation relation, paper §5.1) for terminal-only sentential forms.
/// This cheap special case is used by invariant checkers; the general
/// recognizer is the Earley oracle in `costar-baselines`.
pub fn terminal_form_matches(form: &[Symbol], word: &[Token]) -> bool {
    form.len() == word.len()
        && form.iter().zip(word).all(|(&s, t)| match s {
            Symbol::T(a) => a == t.terminal(),
            Symbol::Nt(_) => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;
    use crate::token::tokens;

    /// Fig. 2 of the paper: S → A c | A d ; A → a A | b, word "abd".
    fn fig2() -> (Grammar, Vec<Token>, Tree) {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        let g = gb.start("S").build().unwrap();
        let mut tab = g.symbols().clone();
        let word = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        let tree = Tree::Node(
            s,
            vec![
                Tree::Node(
                    a_nt,
                    vec![
                        Tree::Leaf(word[0].clone()),
                        Tree::Node(a_nt, vec![Tree::Leaf(word[1].clone())]),
                    ],
                ),
                Tree::Leaf(word[2].clone()),
            ],
        );
        (g, word, tree)
    }

    #[test]
    fn fig2_tree_derives_abd() {
        let (g, word, tree) = fig2();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        assert_eq!(check_tree(&g, s, &word, &tree), Ok(()));
    }

    #[test]
    fn wrong_root_detected() {
        let (g, word, tree) = fig2();
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        assert_eq!(
            check_tree(&g, a_nt, &word, &tree),
            Err(DerivationError::WrongRoot)
        );
    }

    #[test]
    fn yield_mismatch_detected() {
        let (g, word, tree) = fig2();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        // Word longer than the tree's yield.
        let mut longer = word.clone();
        longer.push(word[0].clone());
        assert_eq!(
            check_tree(&g, s, &longer, &tree),
            Err(DerivationError::YieldMismatch)
        );
        // Word shorter than the yield: a leaf runs off the end.
        assert!(matches!(
            check_tree(&g, s, &word[..2], &tree),
            Err(DerivationError::LeafMismatch { .. })
        ));
    }

    #[test]
    fn bogus_production_detected() {
        let (g, word, _) = fig2();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        // S -> a b d is not a production.
        let bogus = Tree::Node(
            s,
            vec![
                Tree::Leaf(word[0].clone()),
                Tree::Leaf(word[1].clone()),
                Tree::Leaf(word[2].clone()),
            ],
        );
        assert_eq!(
            check_tree(&g, s, &word, &bogus),
            Err(DerivationError::NoSuchProduction { lhs: s })
        );
    }

    #[test]
    fn leaf_terminal_mismatch_detected() {
        let (g, word, tree) = fig2();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        // Swap the last token's terminal (d -> c position mismatch).
        let mut bad_word = word.clone();
        bad_word.swap(0, 2);
        assert!(matches!(
            check_tree(&g, s, &bad_word, &tree),
            Err(DerivationError::LeafMismatch { .. })
        ));
    }

    #[test]
    fn epsilon_node_checks() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "a"]);
        gb.rule("A", &[]);
        let g = gb.start("S").build().unwrap();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        let a = g.symbols().lookup_terminal("a").unwrap();
        let word = vec![Token::new(a, "a")];
        let tree = Tree::Node(
            s,
            vec![Tree::Node(a_nt, vec![]), Tree::Leaf(word[0].clone())],
        );
        assert_eq!(check_tree(&g, s, &word, &tree), Ok(()));
    }

    #[test]
    fn terminal_form_matcher() {
        let (g, word, _) = fig2();
        let a = g.symbols().lookup_terminal("a").unwrap();
        let b = g.symbols().lookup_terminal("b").unwrap();
        let d = g.symbols().lookup_terminal("d").unwrap();
        let form: Vec<Symbol> = vec![a.into(), b.into(), d.into()];
        assert!(terminal_form_matches(&form, &word));
        assert!(!terminal_form_matches(&form[..2], &word));
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let with_nt: Vec<Symbol> = vec![a.into(), Symbol::Nt(s), d.into()];
        assert!(!terminal_form_matches(&with_nt, &word));
    }

    #[test]
    fn production_resolution() {
        let (g, word, tree) = fig2();
        // Root: S -> A d (the second S alternative).
        let pid = production_of_node(&g, &tree).unwrap();
        assert_eq!(g.render_production(pid), "S -> A d");
        // Leaves resolve to nothing.
        assert!(production_of_node(&g, &Tree::Leaf(word[0].clone())).is_none());
        // A node with a bogus shape resolves to nothing.
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let bogus = Tree::Node(s, vec![Tree::Leaf(word[0].clone())]);
        assert!(production_of_node(&g, &bogus).is_none());
    }

    #[test]
    fn error_nodes_fail_derivation() {
        use crate::tree::ErrorNode;
        let (g, word, _) = fig2();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        // A recovered tree: the A subtree was abandoned and replaced by an
        // error node that swallowed the first two tokens.
        let recovered = Tree::Node(
            s,
            vec![
                Tree::Node(
                    a_nt,
                    vec![Tree::Error(ErrorNode {
                        span: crate::Span::default(),
                        skipped: vec![word[0].clone(), word[1].clone()],
                        reason: "test".to_owned(),
                    })],
                ),
                Tree::Leaf(word[2].clone()),
            ],
        );
        assert_eq!(
            check_tree(&g, s, &word, &recovered),
            Err(DerivationError::ErrorNode { at: 0 })
        );
        // A bare error node at the root is a WrongRoot (no root symbol).
        let bare = Tree::Error(ErrorNode {
            span: crate::Span::default(),
            skipped: vec![],
            reason: "test".to_owned(),
        });
        assert_eq!(
            check_tree(&g, s, &word, &bare),
            Err(DerivationError::WrongRoot)
        );
    }

    #[test]
    fn has_production_checks_exact_rhs() {
        let (g, _, _) = fig2();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        let c = g.symbols().lookup_terminal("c").unwrap();
        assert!(has_production(&g, s, &[Symbol::Nt(a_nt), c.into()]));
        assert!(!has_production(&g, s, &[Symbol::Nt(a_nt)]));
    }
}
