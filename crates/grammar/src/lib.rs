//! Grammar substrate for the CoStar ALL(*) parser reproduction.
//!
//! This crate provides everything the parser in the `costar` crate is
//! parameterized over (paper Fig. 1, "Basic definitions"):
//!
//! * interned [`Terminal`] / [`NonTerminal`] / [`Symbol`] values and the
//!   [`SymbolTable`] they live in;
//! * [`Token`]s `(a, l)` and parse [`Tree`]s / forests;
//! * indexed BNF [`Grammar`]s built with [`GrammarBuilder`];
//! * static analyses in [`analysis`]: nullability, FIRST/FOLLOW, the
//!   left-recursion decision procedure (the paper's §8 future work),
//!   reachability/productivity, and the SLL stable-return-frame
//!   computation (§3.5);
//! * a diagnostics-grade grammar linter in [`lint`], turning the analyses
//!   into structured findings with stable codes and witnesses;
//! * the executable derivation relation ([`check_tree`]) that serves as the
//!   correctness specification (paper Fig. 3).
//!
//! # Example
//!
//! Build the grammar from Fig. 2 of the paper and check a hand-made tree
//! against the derivation relation:
//!
//! ```
//! use costar_grammar::{check_tree, GrammarBuilder, Token, Tree};
//!
//! let mut gb = GrammarBuilder::new();
//! gb.rule("S", &["A", "c"]);
//! gb.rule("S", &["A", "d"]);
//! gb.rule("A", &["a", "A"]);
//! gb.rule("A", &["b"]);
//! let g = gb.start("S").build()?;
//!
//! let s = g.symbols().lookup_nonterminal("S").unwrap();
//! let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
//! let tok = |name: &str| Token::new(g.symbols().lookup_terminal(name).unwrap(), name);
//! let word = vec![tok("a"), tok("b"), tok("d")];
//!
//! let tree = Tree::Node(s, vec![
//!     Tree::Node(a_nt, vec![
//!         Tree::Leaf(word[0].clone()),
//!         Tree::Node(a_nt, vec![Tree::Leaf(word[1].clone())]),
//!     ]),
//!     Tree::Leaf(word[2].clone()),
//! ]);
//! assert!(check_tree(&g, s, &word, &tree).is_ok());
//! # Ok::<(), costar_grammar::GrammarError>(())
//! ```

#![warn(missing_docs)]
// The panic-freedom discipline (clippy.toml `disallowed_*` config) is
// opted into per module: the analysis module tree re-enables these lints
// with a module-level `#![warn(..)]`; everything else (builders,
// samplers, transforms, tests) is exempt by this crate-level allow.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

pub mod analysis;
mod derivation;
mod grammar;
mod json;
pub mod lint;
pub mod sampler;
mod sets;
mod symbol;
mod token;
pub mod transform;
mod tree;

pub use derivation::{
    check_tree, has_production, production_of_node, terminal_form_matches, DerivationError,
};
pub use grammar::{Grammar, GrammarBuilder, GrammarError, ProdId, Production};
pub use sets::{BitSet, NtSet, TermSet};
pub use symbol::{NonTerminal, Symbol, SymbolTable, Terminal};
pub use token::{tokens, Span, Token};
pub use tree::{forest_roots, forest_yield, ErrorNode, Forest, Tree};
