//! BNF grammars: productions, indexed lookup, and the builder.
//!
//! A grammar `G ::= • | X → γ, G` (paper Fig. 1) is a list of productions.
//! CoStar is parameterized over a grammar that it interprets at parse time,
//! so [`Grammar`] is a first-class runtime value, not generated code.

use crate::symbol::{NonTerminal, Symbol, SymbolTable, Terminal};
use std::fmt;
use std::sync::Arc;

/// Identifier of a production within its [`Grammar`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProdId(pub(crate) u32);

impl ProdId {
    /// Dense index of the production in [`Grammar::productions`] order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a production id from a dense index previously obtained
    /// from [`ProdId::index`]. The caller is responsible for the index
    /// having come from the same grammar.
    pub fn from_index(index: usize) -> Self {
        ProdId(index as u32)
    }
}

/// A single production `X → γ`.
#[derive(Debug, Clone)]
pub struct Production {
    lhs: NonTerminal,
    /// Shared right-hand side; suffix-stack frames alias it cheaply.
    rhs: Arc<[Symbol]>,
}

impl Production {
    /// The left-hand side nonterminal `X`.
    pub fn lhs(&self) -> NonTerminal {
        self.lhs
    }

    /// The right-hand side sentential form `γ`.
    pub fn rhs(&self) -> &[Symbol] {
        &self.rhs
    }

    /// A cheap shared handle on the right-hand side.
    pub fn rhs_arc(&self) -> Arc<[Symbol]> {
        Arc::clone(&self.rhs)
    }
}

/// Errors detected while validating a grammar.
///
/// CoStar's top-level theorems assume a well-formedness condition on the
/// grammar; [`GrammarBuilder::build`] enforces the structural parts of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// The grammar has no productions at all.
    Empty,
    /// A nonterminal is reachable (or used on a right-hand side) but has no
    /// productions, so no finite derivation can complete through it.
    UndefinedNonterminal(NonTerminal),
    /// The declared start symbol has no productions.
    UndefinedStart(NonTerminal),
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Empty => write!(f, "grammar has no productions"),
            GrammarError::UndefinedNonterminal(x) => {
                write!(f, "nonterminal {x} is used but has no productions")
            }
            GrammarError::UndefinedStart(x) => {
                write!(f, "start symbol {x} has no productions")
            }
        }
    }
}

impl std::error::Error for GrammarError {}

/// An immutable, indexed BNF grammar together with its symbol table and
/// start symbol.
///
/// Construct one with a [`GrammarBuilder`]. All lookups the parser needs on
/// its hot path — the alternatives of a nonterminal, a production's
/// right-hand side — are O(1) array indexing.
///
/// # Examples
///
/// ```
/// use costar_grammar::GrammarBuilder;
/// // Paper Fig. 2 grammar: S → A d | A c ;  A → a A | b
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["A", "c"]);
/// gb.rule("S", &["A", "d"]);
/// gb.rule("A", &["a", "A"]);
/// gb.rule("A", &["b"]);
/// let g = gb.start("S").build()?;
/// assert_eq!(g.num_productions(), 4);
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Grammar {
    symbols: SymbolTable,
    start: NonTerminal,
    productions: Vec<Production>,
    /// Productions grouped by left-hand side, indexed by `NonTerminal::index`.
    by_lhs: Vec<Vec<ProdId>>,
    max_rhs_len: usize,
}

impl Grammar {
    /// The start symbol `S`.
    pub fn start(&self) -> NonTerminal {
        self.start
    }

    /// The symbol table the grammar's symbols were interned in.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// All productions, in insertion order.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// The production with the given id.
    pub fn production(&self, id: ProdId) -> &Production {
        &self.productions[id.index()]
    }

    /// The alternatives (production ids) for nonterminal `x`, in grammar
    /// order. ALL(*) prediction launches one subparser per element.
    pub fn alternatives(&self, x: NonTerminal) -> &[ProdId] {
        &self.by_lhs[x.index()]
    }

    /// Right-hand side of a production as a cheap shared slice.
    pub fn rhs_arc(&self, id: ProdId) -> Arc<[Symbol]> {
        self.productions[id.index()].rhs_arc()
    }

    /// Number of productions (`|P|` in Fig. 8).
    pub fn num_productions(&self) -> usize {
        self.productions.len()
    }

    /// Number of nonterminals (`|N|` in Fig. 8).
    pub fn num_nonterminals(&self) -> usize {
        self.symbols.num_nonterminals()
    }

    /// Number of terminals (`|T|` in Fig. 8).
    pub fn num_terminals(&self) -> usize {
        self.symbols.num_terminals()
    }

    /// The maximum right-hand-side length, used as `maxRhsLen(G)` in the
    /// `stackScore` termination measure (paper §4.3).
    pub fn max_rhs_len(&self) -> usize {
        self.max_rhs_len
    }

    /// Iterates over `(ProdId, &Production)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProdId, &Production)> {
        self.productions
            .iter()
            .enumerate()
            .map(|(i, p)| (ProdId(i as u32), p))
    }

    /// Renders a production as `X -> a B c` using the grammar's symbol names.
    pub fn render_production(&self, id: ProdId) -> String {
        let p = self.production(id);
        let mut out = String::from(self.symbols.nonterminal_name(p.lhs()));
        out.push_str(" ->");
        if p.rhs().is_empty() {
            out.push_str(" ε");
        }
        for &s in p.rhs() {
            out.push(' ');
            out.push_str(self.symbols.symbol_name(s));
        }
        out
    }
}

/// Incrementally assembles a [`Grammar`] from named rules.
///
/// Rule references use a naming convention borrowed from ANTLR: a symbol
/// name starting with an uppercase letter (or any non-lowercase character)
/// denotes a terminal; a name starting with a lowercase letter denotes a
/// nonterminal — unless it appears as some rule's left-hand side, in which
/// case it is always a nonterminal. For full control, use
/// [`GrammarBuilder::rule_syms`] with explicit [`Symbol`]s.
#[derive(Debug, Default)]
pub struct GrammarBuilder {
    symbols: SymbolTable,
    /// (lhs, rhs names) collected until `build`, when name resolution runs.
    named_rules: Vec<(String, Vec<String>)>,
    /// Rules added with explicit symbols.
    sym_rules: Vec<(NonTerminal, Vec<Symbol>)>,
    start: Option<String>,
    start_sym: Option<NonTerminal>,
}

impl GrammarBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule `lhs -> rhs`, with right-hand-side symbols given by
    /// name. Name resolution (terminal vs. nonterminal) happens at
    /// [`build`](GrammarBuilder::build) time: any name that appears as a
    /// left-hand side is a nonterminal; every other name is a terminal.
    pub fn rule(&mut self, lhs: &str, rhs: &[&str]) -> &mut Self {
        self.named_rules.push((
            lhs.to_owned(),
            rhs.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Adds a rule with pre-interned symbols from
    /// [`symbols_mut`](GrammarBuilder::symbols_mut).
    pub fn rule_syms(&mut self, lhs: NonTerminal, rhs: Vec<Symbol>) -> &mut Self {
        self.sym_rules.push((lhs, rhs));
        self
    }

    /// Declares the start symbol by name.
    pub fn start(&mut self, name: &str) -> &mut Self {
        self.start = Some(name.to_owned());
        self
    }

    /// Declares the start symbol with a pre-interned nonterminal.
    pub fn start_sym(&mut self, x: NonTerminal) -> &mut Self {
        self.start_sym = Some(x);
        self
    }

    /// Mutable access to the symbol table, for interning symbols used with
    /// [`rule_syms`](GrammarBuilder::rule_syms).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Interns a terminal by name (convenience passthrough).
    pub fn terminal(&mut self, name: &str) -> Terminal {
        self.symbols.terminal(name)
    }

    /// Interns a nonterminal by name (convenience passthrough).
    pub fn nonterminal(&mut self, name: &str) -> NonTerminal {
        self.symbols.nonterminal(name)
    }

    /// Resolves names, validates the grammar, and produces it.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError`] if the grammar is empty, the start symbol is
    /// undefined, or some right-hand side mentions a nonterminal with no
    /// productions.
    pub fn build(&mut self) -> Result<Grammar, GrammarError> {
        if self.named_rules.is_empty() && self.sym_rules.is_empty() {
            return Err(GrammarError::Empty);
        }

        // Pass 1: every named LHS becomes a nonterminal.
        for (lhs, _) in &self.named_rules {
            self.symbols.nonterminal(lhs);
        }
        // The named start symbol is a nonterminal even if it has no rules
        // (that is then reported as UndefinedStart).
        if let Some(start) = self.start.clone() {
            self.symbols.nonterminal(&start);
        }

        // Pass 2: resolve RHS names. A name that is a known nonterminal
        // resolves to it; otherwise it is interned as a terminal.
        let mut productions: Vec<Production> = Vec::new();
        let named = std::mem::take(&mut self.named_rules);
        for (lhs, rhs_names) in &named {
            let lhs = self.symbols.nonterminal(lhs);
            let rhs: Vec<Symbol> = rhs_names
                .iter()
                .map(|name| match self.symbols.lookup_nonterminal(name) {
                    Some(x) => Symbol::Nt(x),
                    None => Symbol::T(self.symbols.terminal(name)),
                })
                .collect();
            productions.push(Production {
                lhs,
                rhs: rhs.into(),
            });
        }
        for (lhs, rhs) in std::mem::take(&mut self.sym_rules) {
            productions.push(Production {
                lhs,
                rhs: rhs.into(),
            });
        }

        let start = match (&self.start, self.start_sym) {
            (Some(name), _) => self.symbols.nonterminal(name),
            (None, Some(x)) => x,
            // Default: the LHS of the first production.
            (None, None) => productions[0].lhs(),
        };

        let num_nts = self.symbols.num_nonterminals();
        let mut by_lhs: Vec<Vec<ProdId>> = vec![Vec::new(); num_nts];
        let mut max_rhs_len = 0usize;
        for (i, p) in productions.iter().enumerate() {
            by_lhs[p.lhs().index()].push(ProdId(i as u32));
            max_rhs_len = max_rhs_len.max(p.rhs().len());
        }

        if by_lhs[start.index()].is_empty() {
            return Err(GrammarError::UndefinedStart(start));
        }
        // Every nonterminal used on an RHS must have productions, otherwise
        // the parser could push a symbol it can never expand.
        for p in &productions {
            for &s in p.rhs() {
                if let Symbol::Nt(x) = s {
                    if by_lhs[x.index()].is_empty() {
                        return Err(GrammarError::UndefinedNonterminal(x));
                    }
                }
            }
        }

        Ok(Grammar {
            symbols: std::mem::take(&mut self.symbols),
            start,
            productions,
            by_lhs,
            max_rhs_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_grammar() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    #[test]
    fn builds_fig2_grammar() {
        let g = fig2_grammar();
        assert_eq!(g.num_productions(), 4);
        assert_eq!(g.num_nonterminals(), 2);
        assert_eq!(g.num_terminals(), 4);
        assert_eq!(g.max_rhs_len(), 2);
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        assert_eq!(g.start(), s);
        assert_eq!(g.alternatives(s).len(), 2);
    }

    #[test]
    fn lhs_names_resolve_as_nonterminals_in_rhs() {
        let g = fig2_grammar();
        let a = g.symbols().lookup_nonterminal("A").unwrap();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let first = g.production(g.alternatives(s)[0]);
        assert_eq!(first.rhs()[0], Symbol::Nt(a));
        assert!(first.rhs()[1].is_terminal());
    }

    #[test]
    fn empty_grammar_rejected() {
        let mut gb = GrammarBuilder::new();
        assert_eq!(gb.build().unwrap_err(), GrammarError::Empty);
    }

    #[test]
    fn undefined_start_rejected() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a"]);
        let err = gb.start("T").build().unwrap_err();
        assert!(matches!(err, GrammarError::UndefinedStart(_)));
    }

    #[test]
    fn undefined_rhs_nonterminal_rejected() {
        let mut gb = GrammarBuilder::new();
        // "b" appears as an LHS nowhere, but we force it to be a
        // nonterminal via rule_syms.
        let b = gb.nonterminal("B");
        let s = gb.nonterminal("S");
        gb.rule_syms(s, vec![Symbol::Nt(b)]);
        gb.start_sym(s);
        let err = gb.build().unwrap_err();
        assert!(matches!(err, GrammarError::UndefinedNonterminal(_)));
    }

    #[test]
    fn default_start_is_first_lhs() {
        let mut gb = GrammarBuilder::new();
        gb.rule("expr", &["Int"]);
        gb.rule("other", &["expr"]);
        let g = gb.build().unwrap();
        assert_eq!(g.start(), g.symbols().lookup_nonterminal("expr").unwrap());
    }

    #[test]
    fn epsilon_rhs_allowed() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &[]);
        let g = gb.start("S").build().unwrap();
        assert_eq!(g.production(ProdId(0)).rhs().len(), 0);
        assert_eq!(g.max_rhs_len(), 0);
        assert!(g.render_production(ProdId(0)).contains('ε'));
    }

    #[test]
    fn render_production_uses_names() {
        let g = fig2_grammar();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let rendered = g.render_production(g.alternatives(s)[0]);
        assert_eq!(rendered, "S -> A c");
    }

    #[test]
    fn iter_visits_all_productions() {
        let g = fig2_grammar();
        assert_eq!(g.iter().count(), 4);
        for (id, p) in g.iter() {
            assert_eq!(g.production(id).lhs(), p.lhs());
        }
    }

    #[test]
    fn rhs_arc_is_shared() {
        let g = fig2_grammar();
        let id = ProdId(0);
        let a1 = g.rhs_arc(id);
        let a2 = g.rhs_arc(id);
        assert!(Arc::ptr_eq(&a1, &a2));
    }
}
