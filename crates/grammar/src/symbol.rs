//! Grammar symbols and the symbol table.
//!
//! CoStar (Fig. 1 of the paper) works with terminals `a, b ∈ T`,
//! nonterminals `X, Y ∈ N`, and symbols `s ::= a | X`. We intern both kinds
//! of symbol as dense `u32` indices so that the parser's hot paths (symbol
//! comparison, set membership, map lookup) are integer operations. The paper
//! observes (§6.1) that symbol comparisons dominate CoStar's running time on
//! large grammars; interning is the standard engineering answer.

use std::collections::HashMap;
use std::fmt;

/// An interned terminal symbol.
///
/// Terminals are what tokens are classified as; a [`crate::Token`] carries a
/// `Terminal` plus the matched literal. Use a [`SymbolTable`] to create
/// terminals from names and to recover names for display.
///
/// # Examples
///
/// ```
/// use costar_grammar::SymbolTable;
/// let mut tab = SymbolTable::new();
/// let int = tab.terminal("Int");
/// assert_eq!(tab.terminal_name(int), "Int");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Terminal(pub(crate) u32);

/// An interned nonterminal symbol.
///
/// Nonterminals are grammar left-hand sides. They are created through a
/// [`SymbolTable`], which guarantees that equal names map to equal indices.
///
/// # Examples
///
/// ```
/// use costar_grammar::SymbolTable;
/// let mut tab = SymbolTable::new();
/// let s = tab.nonterminal("S");
/// assert_eq!(tab.nonterminal_name(s), "S");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NonTerminal(pub(crate) u32);

impl Terminal {
    /// The dense index of this terminal, suitable for indexing
    /// `0..table.num_terminals()` arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a terminal from a dense index previously obtained from
    /// [`Terminal::index`].
    ///
    /// The caller is responsible for the index having come from the same
    /// [`SymbolTable`]; this is a plain data constructor, not a checked one.
    pub fn from_index(index: usize) -> Self {
        Terminal(index as u32)
    }
}

impl NonTerminal {
    /// The dense index of this nonterminal, suitable for indexing
    /// `0..table.num_nonterminals()` arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a nonterminal from a dense index previously obtained from
    /// [`NonTerminal::index`].
    pub fn from_index(index: usize) -> Self {
        NonTerminal(index as u32)
    }
}

/// A grammar symbol: either a terminal or a nonterminal (`s ::= a | X`).
///
/// # Examples
///
/// ```
/// use costar_grammar::{Symbol, SymbolTable};
/// let mut tab = SymbolTable::new();
/// let sym = Symbol::Nt(tab.nonterminal("Expr"));
/// assert!(sym.is_nonterminal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symbol {
    /// A terminal symbol.
    T(Terminal),
    /// A nonterminal symbol.
    Nt(NonTerminal),
}

impl Symbol {
    /// Returns `true` if this symbol is a terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, Symbol::T(_))
    }

    /// Returns `true` if this symbol is a nonterminal.
    pub fn is_nonterminal(self) -> bool {
        matches!(self, Symbol::Nt(_))
    }

    /// The terminal inside, if any.
    pub fn as_terminal(self) -> Option<Terminal> {
        match self {
            Symbol::T(t) => Some(t),
            Symbol::Nt(_) => None,
        }
    }

    /// The nonterminal inside, if any.
    pub fn as_nonterminal(self) -> Option<NonTerminal> {
        match self {
            Symbol::Nt(x) => Some(x),
            Symbol::T(_) => None,
        }
    }
}

impl From<Terminal> for Symbol {
    fn from(t: Terminal) -> Self {
        Symbol::T(t)
    }
}

impl From<NonTerminal> for Symbol {
    fn from(x: NonTerminal) -> Self {
        Symbol::Nt(x)
    }
}

/// Interner mapping symbol names to dense [`Terminal`] / [`NonTerminal`]
/// indices and back.
///
/// Terminal and nonterminal namespaces are independent: `tab.terminal("X")`
/// and `tab.nonterminal("X")` coexist and are unrelated symbols.
///
/// # Examples
///
/// ```
/// use costar_grammar::SymbolTable;
/// let mut tab = SymbolTable::new();
/// let a = tab.terminal("a");
/// let a2 = tab.terminal("a");
/// assert_eq!(a, a2);
/// assert_eq!(tab.num_terminals(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    terminal_names: Vec<String>,
    nonterminal_names: Vec<String>,
    terminals: HashMap<String, Terminal>,
    nonterminals: HashMap<String, NonTerminal>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or looks up) a terminal by name.
    pub fn terminal(&mut self, name: &str) -> Terminal {
        if let Some(&t) = self.terminals.get(name) {
            return t;
        }
        let t = Terminal(self.terminal_names.len() as u32);
        self.terminal_names.push(name.to_owned());
        self.terminals.insert(name.to_owned(), t);
        t
    }

    /// Interns (or looks up) a nonterminal by name.
    pub fn nonterminal(&mut self, name: &str) -> NonTerminal {
        if let Some(&x) = self.nonterminals.get(name) {
            return x;
        }
        let x = NonTerminal(self.nonterminal_names.len() as u32);
        self.nonterminal_names.push(name.to_owned());
        self.nonterminals.insert(name.to_owned(), x);
        x
    }

    /// Looks up a terminal by name without interning it.
    pub fn lookup_terminal(&self, name: &str) -> Option<Terminal> {
        self.terminals.get(name).copied()
    }

    /// Looks up a nonterminal by name without interning it.
    pub fn lookup_nonterminal(&self, name: &str) -> Option<NonTerminal> {
        self.nonterminals.get(name).copied()
    }

    /// The name this terminal was interned under.
    ///
    /// # Panics
    ///
    /// Panics if `t` did not come from this table.
    pub fn terminal_name(&self, t: Terminal) -> &str {
        &self.terminal_names[t.index()]
    }

    /// The name this nonterminal was interned under.
    ///
    /// # Panics
    ///
    /// Panics if `x` did not come from this table.
    pub fn nonterminal_name(&self, x: NonTerminal) -> &str {
        &self.nonterminal_names[x.index()]
    }

    /// A human-readable name for any symbol.
    pub fn symbol_name(&self, s: Symbol) -> &str {
        match s {
            Symbol::T(t) => self.terminal_name(t),
            Symbol::Nt(x) => self.nonterminal_name(x),
        }
    }

    /// Number of distinct terminals interned so far (`|T|` in Fig. 8).
    pub fn num_terminals(&self) -> usize {
        self.terminal_names.len()
    }

    /// Number of distinct nonterminals interned so far (`|N|` in Fig. 8).
    pub fn num_nonterminals(&self) -> usize {
        self.nonterminal_names.len()
    }

    /// Iterates over all interned terminals.
    pub fn terminals(&self) -> impl Iterator<Item = Terminal> + '_ {
        (0..self.terminal_names.len()).map(|i| Terminal(i as u32))
    }

    /// Iterates over all interned nonterminals.
    pub fn nonterminals(&self) -> impl Iterator<Item = NonTerminal> + '_ {
        (0..self.nonterminal_names.len()).map(|i| NonTerminal(i as u32))
    }

    /// Generates a nonterminal with a name not currently in the table,
    /// derived from `base` (used by EBNF desugaring to create fresh
    /// nonterminals).
    pub fn fresh_nonterminal(&mut self, base: &str) -> NonTerminal {
        if !self.nonterminals.contains_key(base) {
            return self.nonterminal(base);
        }
        let mut n = 1usize;
        loop {
            let candidate = format!("{base}_{n}");
            if !self.nonterminals.contains_key(&candidate) {
                return self.nonterminal(&candidate);
            }
            n += 1;
        }
    }
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for NonTerminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::T(t) => t.fmt(f),
            Symbol::Nt(x) => x.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut tab = SymbolTable::new();
        let a = tab.terminal("a");
        let b = tab.terminal("b");
        assert_ne!(a, b);
        assert_eq!(tab.terminal("a"), a);
        assert_eq!(tab.num_terminals(), 2);
    }

    #[test]
    fn terminal_and_nonterminal_namespaces_are_disjoint() {
        let mut tab = SymbolTable::new();
        let t = tab.terminal("X");
        let n = tab.nonterminal("X");
        assert_eq!(tab.terminal_name(t), "X");
        assert_eq!(tab.nonterminal_name(n), "X");
        assert_eq!(t.index(), 0);
        assert_eq!(n.index(), 0);
    }

    #[test]
    fn names_round_trip() {
        let mut tab = SymbolTable::new();
        for name in ["If", "Then", "Else", "Int"] {
            let t = tab.terminal(name);
            assert_eq!(tab.terminal_name(t), name);
        }
        for name in ["S", "Stmt", "Expr"] {
            let x = tab.nonterminal(name);
            assert_eq!(tab.nonterminal_name(x), name);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut tab = SymbolTable::new();
        assert!(tab.lookup_terminal("a").is_none());
        let a = tab.terminal("a");
        assert_eq!(tab.lookup_terminal("a"), Some(a));
        assert!(tab.lookup_nonterminal("a").is_none());
    }

    #[test]
    fn fresh_nonterminal_avoids_collisions() {
        let mut tab = SymbolTable::new();
        let s = tab.nonterminal("S");
        let f1 = tab.fresh_nonterminal("S");
        let f2 = tab.fresh_nonterminal("S");
        assert_ne!(s, f1);
        assert_ne!(f1, f2);
        assert_eq!(tab.nonterminal_name(f1), "S_1");
        assert_eq!(tab.nonterminal_name(f2), "S_2");
    }

    #[test]
    fn symbol_accessors() {
        let mut tab = SymbolTable::new();
        let a: Symbol = tab.terminal("a").into();
        let x: Symbol = tab.nonterminal("X").into();
        assert!(a.is_terminal() && !a.is_nonterminal());
        assert!(x.is_nonterminal() && !x.is_terminal());
        assert!(a.as_terminal().is_some() && a.as_nonterminal().is_none());
        assert!(x.as_nonterminal().is_some() && x.as_terminal().is_none());
    }

    #[test]
    fn index_round_trip() {
        let t = Terminal::from_index(7);
        assert_eq!(t.index(), 7);
        let n = NonTerminal::from_index(3);
        assert_eq!(n.index(), 3);
    }

    #[test]
    fn iterators_cover_all_symbols() {
        let mut tab = SymbolTable::new();
        tab.terminal("a");
        tab.terminal("b");
        tab.nonterminal("X");
        assert_eq!(tab.terminals().count(), 2);
        assert_eq!(tab.nonterminals().count(), 1);
    }
}
