//! Grammar transformations: left-recursion elimination and cleanup.
//!
//! The paper (§4.1) notes that "ANTLR is able to avoid most instances of
//! [left-recursion-induced non-termination] by rewriting the grammar to
//! eliminate common forms of left recursion", and explicitly leaves "the
//! task of verifying such grammar-rewriting steps for future work". This
//! module implements those rewrites; the cross-crate test suite validates
//! them the way everything else here is validated — by checking language
//! preservation against the Earley oracle on sampled and random words.
//!
//! Two transformations are provided:
//!
//! * [`remove_useless`] — drops unproductive and unreachable
//!   nonterminals (a prerequisite: Paull's algorithm can loop on
//!   unproductive rules);
//! * [`eliminate_left_recursion`] — the classic Paull/Greibach-style
//!   rewrite: substitute away indirect left recursion in a fixed
//!   nonterminal order, then replace direct left recursion
//!   `A → A α | β` with right-recursive tail rules
//!   `A → β A'`, `A' → α A' | ε`.
//!
//! The rewrite preserves the *language*, not the parse trees: derived
//! trees mention fresh tail nonterminals. That is the same contract as
//! ANTLR's rewriting (and as the EBNF desugarer in `costar-ebnf`).

use crate::analysis::NullableSet;
use crate::grammar::{Grammar, GrammarBuilder, GrammarError};
use crate::sets::NtSet;
use crate::symbol::{NonTerminal, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// Errors from grammar transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The start symbol derives no finite word, so no useful grammar
    /// remains after cleanup.
    StartUnproductive,
    /// A nonterminal has a cyclic nullable left-recursion that the
    /// rewrite cannot break (e.g. `A → A`): the grammar's language is
    /// unchanged by such a production, so it is dropped; this error is
    /// returned only if dropping it leaves a nonterminal with no
    /// productions.
    Degenerate(NonTerminal),
    /// Rebuilding the grammar failed validation.
    Grammar(GrammarError),
    /// The rewrite blew past the size budget. Paull's algorithm is
    /// worst-case exponential; rather than exhaust memory on adversarial
    /// grammars, the transform gives up beyond a fixed production count.
    TooLarge,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::StartUnproductive => {
                write!(f, "start symbol derives no finite word")
            }
            TransformError::Degenerate(x) => {
                write!(f, "nonterminal {x} has only self-cyclic productions")
            }
            TransformError::Grammar(e) => write!(f, "rebuilt grammar invalid: {e}"),
            TransformError::TooLarge => {
                write!(f, "left-recursion elimination exceeded the size budget")
            }
        }
    }
}

impl std::error::Error for TransformError {}

impl From<GrammarError> for TransformError {
    fn from(e: GrammarError) -> Self {
        TransformError::Grammar(e)
    }
}

/// A mutable working copy of a grammar's rules, keyed by nonterminal
/// names (so fresh nonterminals are easy to mint).
struct Workspace {
    /// (lhs name, rhs symbol names) — names survive the round-trip
    /// through [`GrammarBuilder`].
    rules: Vec<(String, Vec<String>)>,
    start: String,
}

impl Workspace {
    fn of(g: &Grammar) -> Workspace {
        let symbols = g.symbols();
        let rules = g
            .iter()
            .map(|(_, p)| {
                (
                    symbols.nonterminal_name(p.lhs()).to_owned(),
                    p.rhs()
                        .iter()
                        .map(|&s| symbols.symbol_name(s).to_owned())
                        .collect(),
                )
            })
            .collect();
        Workspace {
            rules,
            start: symbols.nonterminal_name(g.start()).to_owned(),
        }
    }

    fn build(&self, original: &Grammar) -> Result<Grammar, TransformError> {
        let mut gb = GrammarBuilder::new();
        // Keep terminal identities stable: re-intern all original
        // terminal names first, then declare nonterminals explicitly so
        // name resolution cannot misclassify.
        for t in original.symbols().terminals() {
            gb.terminal(original.symbols().terminal_name(t));
        }
        let nts: BTreeSet<&str> = self.rules.iter().map(|(l, _)| l.as_str()).collect();
        for name in &nts {
            gb.nonterminal(name);
        }
        for (lhs, rhs) in &self.rules {
            let lhs_nt = gb.nonterminal(lhs);
            let mut syms = Vec::with_capacity(rhs.len());
            // Resolve each name against the declared nonterminals first.
            for name in rhs {
                let sym = if nts.contains(name.as_str()) {
                    Symbol::Nt(gb.nonterminal(name))
                } else {
                    Symbol::T(gb.terminal(name))
                };
                syms.push(sym);
            }
            gb.rule_syms(lhs_nt, syms);
        }
        let start = gb.nonterminal(&self.start);
        gb.start_sym(start);
        Ok(gb.build()?)
    }
}

/// Removes unproductive and unreachable nonterminals (and the rules that
/// mention them).
///
/// # Errors
///
/// Returns [`TransformError::StartUnproductive`] if the start symbol
/// itself derives no finite word.
///
/// # Examples
///
/// ```
/// use costar_grammar::{transform::remove_useless, GrammarBuilder};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a"]);
/// gb.rule("dead", &["dead", "x"]); // unproductive and unreachable
/// let g = gb.start("S").build()?;
/// let cleaned = remove_useless(&g)?;
/// assert_eq!(cleaned.num_productions(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn remove_useless(g: &Grammar) -> Result<Grammar, TransformError> {
    // Productive nonterminals: least fixpoint.
    let n = g.num_nonterminals();
    let mut productive = NtSet::with_capacity(n);
    let mut changed = true;
    while changed {
        changed = false;
        for (_, p) in g.iter() {
            if productive.contains(p.lhs()) {
                continue;
            }
            let ok = p.rhs().iter().all(|&s| match s {
                Symbol::T(_) => true,
                Symbol::Nt(x) => productive.contains(x),
            });
            if ok {
                productive.insert(p.lhs());
                changed = true;
            }
        }
    }
    if !productive.contains(g.start()) {
        return Err(TransformError::StartUnproductive);
    }
    // Reachable nonterminals through productive rules.
    let mut reachable = NtSet::with_capacity(n);
    reachable.insert(g.start());
    let mut work = vec![g.start()];
    while let Some(x) = work.pop() {
        for &pid in g.alternatives(x) {
            let p = g.production(pid);
            if !p.rhs().iter().all(|&s| match s {
                Symbol::T(_) => true,
                Symbol::Nt(y) => productive.contains(y),
            }) {
                continue;
            }
            for &s in p.rhs() {
                if let Symbol::Nt(y) = s {
                    if reachable.insert(y) {
                        work.push(y);
                    }
                }
            }
        }
    }

    let mut ws = Workspace::of(g);
    let keep = |name: &str| {
        g.symbols()
            .lookup_nonterminal(name)
            .is_some_and(|x| productive.contains(x) && reachable.contains(x))
    };
    ws.rules.retain(|(lhs, rhs)| {
        keep(lhs)
            && rhs.iter().all(|name| {
                g.symbols()
                    .lookup_nonterminal(name)
                    .is_none_or(|x| productive.contains(x) && reachable.contains(x))
            })
    });
    ws.build(g)
}

/// Eliminates left recursion (direct, indirect, and — via nullable-prefix
/// expansion — hidden) from a grammar, producing an equivalent grammar
/// that CoStar's theorems cover.
///
/// The rewrite runs [`remove_useless`] first, expands nullable leading
/// nonterminals enough to expose hidden left recursion, then applies
/// Paull's ordering-based substitution and the classic direct-recursion
/// rewrite.
///
/// # Errors
///
/// Returns a [`TransformError`] if the grammar collapses (unproductive
/// start, or a nonterminal whose every production is self-cyclic).
///
/// # Examples
///
/// ```
/// use costar_grammar::analysis::GrammarAnalysis;
/// use costar_grammar::transform::eliminate_left_recursion;
/// use costar_grammar::GrammarBuilder;
/// let mut gb = GrammarBuilder::new();
/// gb.rule("expr", &["expr", "Plus", "Int"]); // left-recursive
/// gb.rule("expr", &["Int"]);
/// let g = gb.start("expr").build()?;
/// let rewritten = eliminate_left_recursion(&g)?;
/// assert!(GrammarAnalysis::compute(&rewritten).left_recursion.is_grammar_safe());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn eliminate_left_recursion(g: &Grammar) -> Result<Grammar, TransformError> {
    let mut current = remove_useless(g)?;
    // Iterate: the rewrite can expose new hidden recursion through
    // nullable prefixes, so repeat until the analysis is clean (bounded:
    // each pass strictly reduces the left-recursive SCC structure; cap
    // defensively).
    for _ in 0..8 {
        let nullable = NullableSet::compute(&current);
        let lr = crate::analysis::LeftRecursion::compute(&current, &nullable);
        if lr.is_grammar_safe() {
            return Ok(current);
        }
        current = one_pass(&current)?;
    }
    // One final check.
    let nullable = NullableSet::compute(&current);
    let lr = crate::analysis::LeftRecursion::compute(&current, &nullable);
    if lr.is_grammar_safe() {
        Ok(current)
    } else {
        Err(TransformError::Degenerate(
            lr.left_recursive_set()
                .iter()
                .next()
                .expect("unsafe grammar names a culprit"),
        ))
    }
}

/// Production-count ceiling for the rewrite (Paull's algorithm is
/// worst-case exponential).
const MAX_RULES: usize = 4_096;

/// One Paull pass over the grammar.
fn one_pass(g: &Grammar) -> Result<Grammar, TransformError> {
    let symbols = g.symbols();
    let nullable = NullableSet::compute(g);
    let order: Vec<NonTerminal> = symbols
        .nonterminals()
        .filter(|&x| !g.alternatives(x).is_empty())
        .collect();
    let index_of = |x: NonTerminal| order.iter().position(|&y| y == x).expect("ordered");

    // Working rules as name vectors.
    let mut rules: Vec<(String, Vec<String>)> = Workspace::of(g).rules;
    let name_of = |x: NonTerminal| symbols.nonterminal_name(x).to_owned();
    let mut fresh_counter = 0usize;

    for (i, &ai) in order.iter().enumerate() {
        let ai_name = name_of(ai);
        // Substitute A_j-leading productions for j < i, including through
        // nullable prefixes (hidden left recursion): expand the leading
        // nullable chain one symbol at a time.
        let mut stable = false;
        let mut guard = 0;
        while !stable && guard < 64 {
            guard += 1;
            stable = true;
            let mut next_rules = Vec::with_capacity(rules.len());
            for (lhs, rhs) in rules.drain(..) {
                if lhs != ai_name {
                    next_rules.push((lhs, rhs));
                    continue;
                }
                // Find the first symbol that is a lower-ordered
                // nonterminal reachable through a nullable prefix.
                let mut expand_at: Option<usize> = None;
                for (k, name) in rhs.iter().enumerate() {
                    match symbols.lookup_nonterminal(name) {
                        Some(y) if !g.alternatives(y).is_empty() => {
                            if index_of(y) < i {
                                expand_at = Some(k);
                                break;
                            }
                            if nullable.contains(y) {
                                continue; // skip nullable, keep scanning
                            }
                            break;
                        }
                        _ => break,
                    }
                }
                match expand_at {
                    None => next_rules.push((lhs, rhs)),
                    Some(k) => {
                        stable = false;
                        let y_name = rhs[k].clone();
                        // Replace rhs[k] by each of y's productions.
                        for (cl, crhs) in &g
                            .alternatives(symbols.lookup_nonterminal(&y_name).expect("nt"))
                            .iter()
                            .map(|&pid| {
                                let p = g.production(pid);
                                (
                                    symbols.nonterminal_name(p.lhs()).to_owned(),
                                    p.rhs()
                                        .iter()
                                        .map(|&s| symbols.symbol_name(s).to_owned())
                                        .collect::<Vec<_>>(),
                                )
                            })
                            .collect::<Vec<_>>()
                        {
                            let _ = cl;
                            let mut expanded = rhs[..k].to_vec();
                            expanded.extend(crhs.iter().cloned());
                            expanded.extend(rhs[k + 1..].iter().cloned());
                            next_rules.push((lhs.clone(), expanded));
                        }
                    }
                }
            }
            rules = next_rules;
            if rules.len() > MAX_RULES {
                return Err(TransformError::TooLarge);
            }
        }

        // Direct recursion on ai: split into recursive (A → A α, with the
        // leading A possibly behind nullable prefixes already expanded
        // away) and non-recursive productions.
        let mut alphas: Vec<Vec<String>> = Vec::new();
        let mut betas: Vec<Vec<String>> = Vec::new();
        for (lhs, rhs) in rules.iter().filter(|(l, _)| *l == ai_name) {
            let _ = lhs;
            if rhs.first() == Some(&ai_name) {
                let alpha = rhs[1..].to_vec();
                if alpha.is_empty() {
                    // A → A contributes nothing to the language: drop.
                    continue;
                }
                alphas.push(alpha);
            } else {
                betas.push(rhs.clone());
            }
        }
        if alphas.is_empty() {
            // Drop any A → A rules that were skipped above.
            rules.retain(|(l, r)| !(l == &ai_name && r.first() == Some(&ai_name) && r.len() == 1));
            continue;
        }
        if betas.is_empty() {
            return Err(TransformError::Degenerate(ai));
        }
        fresh_counter += 1;
        let tail = format!("{ai_name}__lr{fresh_counter}");
        rules.retain(|(l, _)| l != &ai_name);
        for beta in betas {
            let mut rhs = beta;
            rhs.push(tail.clone());
            rules.push((ai_name.clone(), rhs));
        }
        for alpha in alphas {
            let mut rhs = alpha;
            rhs.push(tail.clone());
            rules.push((tail.clone(), rhs));
        }
        rules.push((tail.clone(), Vec::new()));
    }

    let ws = Workspace {
        rules,
        start: name_of(g.start()),
    };
    ws.build(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GrammarAnalysis;
    use crate::grammar::GrammarBuilder;
    use crate::sampler::{DerivationSampler, SplitMix64};

    fn safe(g: &Grammar) -> bool {
        GrammarAnalysis::compute(g).left_recursion.is_grammar_safe()
    }

    #[test]
    fn direct_left_recursion_eliminated() {
        let mut gb = GrammarBuilder::new();
        gb.rule("e", &["e", "Plus", "Int"]);
        gb.rule("e", &["Int"]);
        let g = gb.start("e").build().unwrap();
        assert!(!safe(&g));
        let r = eliminate_left_recursion(&g).unwrap();
        assert!(safe(&r));
    }

    #[test]
    fn indirect_left_recursion_eliminated() {
        let mut gb = GrammarBuilder::new();
        gb.rule("a", &["b", "x"]);
        gb.rule("b", &["c", "y"]);
        gb.rule("c", &["a", "z"]);
        gb.rule("c", &["w"]);
        let g = gb.start("a").build().unwrap();
        assert!(!safe(&g));
        let r = eliminate_left_recursion(&g).unwrap();
        assert!(safe(&r));
    }

    #[test]
    fn hidden_left_recursion_eliminated() {
        // S -> N S x | y with nullable N.
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["n", "s", "x"]);
        gb.rule("s", &["y"]);
        gb.rule("n", &[]);
        gb.rule("n", &["m"]);
        gb.rule("m", &["q"]);
        let g = gb.start("s").build().unwrap();
        assert!(!safe(&g));
        let r = eliminate_left_recursion(&g).unwrap();
        assert!(safe(&r));
    }

    #[test]
    fn unit_self_loop_dropped() {
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["s"]);
        gb.rule("s", &["a"]);
        let g = gb.start("s").build().unwrap();
        let r = eliminate_left_recursion(&g).unwrap();
        assert!(safe(&r));
        // Language is just {a}.
        let sampler = DerivationSampler::new(&r);
        let mut rng = SplitMix64::new(1);
        let (word, _) = sampler.sample_word(&mut rng, 6).unwrap();
        assert_eq!(word.len(), 1);
    }

    #[test]
    fn already_safe_grammar_unchanged_language() {
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["a", "s"]);
        gb.rule("s", &["b"]);
        let g = gb.start("s").build().unwrap();
        let r = eliminate_left_recursion(&g).unwrap();
        assert_eq!(r.num_productions(), g.num_productions());
    }

    #[test]
    fn useless_symbols_removed() {
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["a"]);
        gb.rule("s", &["u", "a"]); // u unproductive: rule dies
        gb.rule("u", &["u", "x"]);
        gb.rule("island", &["y"]); // unreachable
        let g = gb.start("s").build().unwrap();
        let r = remove_useless(&g).unwrap();
        assert_eq!(r.num_productions(), 1);
    }

    #[test]
    fn unproductive_start_is_an_error() {
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["s", "x"]);
        let g = gb.start("s").build().unwrap();
        assert_eq!(
            remove_useless(&g).unwrap_err(),
            TransformError::StartUnproductive
        );
    }

    #[test]
    fn purely_cyclic_nonterminal_is_degenerate() {
        // e's only non-self production still starts with e.
        let mut gb = GrammarBuilder::new();
        gb.rule("s", &["e", "x"]);
        gb.rule("s", &["x"]);
        gb.rule("e", &["e", "y"]);
        let g = gb.start("s").build().unwrap();
        // remove_useless already drops e (unproductive), so elimination
        // succeeds with e gone.
        let r = eliminate_left_recursion(&g).unwrap();
        assert!(safe(&r));
        assert!(
            r.symbols().lookup_nonterminal("e").is_none()
                || r.alternatives(r.symbols().lookup_nonterminal("e").unwrap())
                    .is_empty()
        );
    }

    #[test]
    fn classic_expression_grammar_end_to_end() {
        // The textbook left-recursive expression grammar.
        let mut gb = GrammarBuilder::new();
        gb.rule("e", &["e", "Plus", "t"]);
        gb.rule("e", &["t"]);
        gb.rule("t", &["t", "Star", "f"]);
        gb.rule("t", &["f"]);
        gb.rule("f", &["LParen", "e", "RParen"]);
        gb.rule("f", &["Int"]);
        let g = gb.start("e").build().unwrap();
        assert!(!safe(&g));
        let r = eliminate_left_recursion(&g).unwrap();
        assert!(safe(&r));
        // The rewritten grammar still derives plausible words.
        let sampler = DerivationSampler::new(&r);
        let mut rng = SplitMix64::new(9);
        for _ in 0..20 {
            assert!(sampler.sample_word(&mut rng, 10).is_some());
        }
    }
}
