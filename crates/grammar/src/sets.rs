//! Compact bitsets over interned symbols.
//!
//! The machine state's visited-nonterminal set (paper §4.1) and the
//! FIRST/FOLLOW analyses need fast set operations over a dense symbol
//! universe; a `u64`-word bitset gives O(1) insert/contains and cheap
//! union/clear without any external dependency.

use crate::symbol::{NonTerminal, Terminal};
use std::fmt;

/// A dense bitset over indices `0..capacity`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Inserts `i`, growing the set if needed. Returns `true` if `i` was
    /// not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    /// Removes `i`. Returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        self.len -= 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Removes all elements (keeps capacity).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no elements are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        let mut len = 0usize;
        for (i, w) in self.words.iter_mut().enumerate() {
            let merged = *w | other.words.get(i).copied().unwrap_or(0);
            if merged != *w {
                changed = true;
                *w = merged;
            }
            len += w.count_ones() as usize;
        }
        self.len = len;
        changed
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::default();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

macro_rules! symbol_set {
    ($(#[$doc:meta])* $name:ident, $sym:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, Hash, Default)]
        pub struct $name(BitSet);

        impl $name {
            /// Creates an empty set sized for a universe of `capacity` symbols.
            pub fn with_capacity(capacity: usize) -> Self {
                $name(BitSet::with_capacity(capacity))
            }

            /// Inserts a symbol; returns `true` if newly added.
            pub fn insert(&mut self, s: $sym) -> bool {
                self.0.insert(s.index())
            }

            /// Removes a symbol; returns `true` if it was present.
            pub fn remove(&mut self, s: $sym) -> bool {
                self.0.remove(s.index())
            }

            /// Membership test.
            pub fn contains(&self, s: $sym) -> bool {
                self.0.contains(s.index())
            }

            /// Removes all elements.
            pub fn clear(&mut self) {
                self.0.clear()
            }

            /// Number of elements.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// `true` if empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Unions `other` into `self`; `true` if `self` changed.
            pub fn union_with(&mut self, other: &Self) -> bool {
                self.0.union_with(&other.0)
            }

            /// Iterates over elements in index order.
            pub fn iter(&self) -> impl Iterator<Item = $sym> + '_ {
                self.0.iter().map($sym::from_index)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_set().entries(self.iter()).finish()
            }
        }

        impl FromIterator<$sym> for $name {
            fn from_iter<I: IntoIterator<Item = $sym>>(iter: I) -> Self {
                let mut s = Self::default();
                for x in iter {
                    s.insert(x);
                }
                s
            }
        }

        impl Extend<$sym> for $name {
            fn extend<I: IntoIterator<Item = $sym>>(&mut self, iter: I) {
                for x in iter {
                    self.insert(x);
                }
            }
        }
    };
}

symbol_set!(
    /// A set of nonterminals, e.g. the machine's visited set `V` (paper
    /// §4.1) or the universe difference `U \ V` in `stackScore` (§4.3).
    NtSet,
    NonTerminal
);

symbol_set!(
    /// A set of terminals, e.g. a FIRST or FOLLOW set.
    TermSet,
    Terminal
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::with_capacity(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_beyond_capacity() {
        let mut s = BitSet::with_capacity(1);
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn union_reports_change() {
        let a: BitSet = [1usize, 2, 3].into_iter().collect();
        let mut b: BitSet = [3usize].into_iter().collect();
        assert!(b.union_with(&a));
        assert_eq!(b.len(), 3);
        assert!(!b.union_with(&a));
    }

    #[test]
    fn iter_in_order() {
        let s: BitSet = [70usize, 3, 64, 5].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![3, 5, 64, 70]);
    }

    #[test]
    fn clear_keeps_working() {
        let mut s: BitSet = [1usize, 2].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        assert!(s.insert(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nt_set_roundtrip() {
        let mut s = NtSet::with_capacity(4);
        let x = NonTerminal::from_index(2);
        assert!(s.insert(x));
        assert!(s.contains(x));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![x]);
        assert!(s.remove(x));
        assert!(s.is_empty());
    }

    #[test]
    fn term_set_union() {
        let a: TermSet = (0..5).map(Terminal::from_index).collect();
        let mut b = TermSet::default();
        assert!(b.union_with(&a));
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn debug_formats_as_set() {
        let s: BitSet = [1usize].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
    }
}
