//! Random derivation sampling: generating words *from* a grammar.
//!
//! The completeness theorems (paper 5.11/5.12) quantify over words that
//! *have* a parse tree. To test them we need inputs known to be in the
//! language, together with a witness tree; this module derives such words
//! by walking the grammar top-down with a seeded PRNG, steering toward
//! low-height productions as a depth budget runs out so that sampling
//! terminates even on heavily recursive grammars.
//!
//! The sampler is deliberately dependency-free (a SplitMix64 generator)
//! so that test utilities and benchmark workload generators across the
//! workspace can share it.

use crate::grammar::{Grammar, ProdId};
use crate::symbol::{NonTerminal, Symbol};
use crate::token::Token;
use crate::tree::Tree;

/// A small, fast, seedable PRNG (SplitMix64). Not cryptographic; used
/// only to drive sampling decisions reproducibly.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Samples derivations from a grammar.
#[derive(Debug)]
pub struct DerivationSampler<'g> {
    grammar: &'g Grammar,
    /// Minimum derivation-tree height per nonterminal (usize::MAX if the
    /// nonterminal derives no finite word).
    min_height: Vec<usize>,
}

impl<'g> DerivationSampler<'g> {
    /// Prepares a sampler by computing, for every nonterminal, the height
    /// of its shortest derivation tree (the classic "productivity"
    /// fixpoint).
    pub fn new(grammar: &'g Grammar) -> Self {
        let n = grammar.num_nonterminals();
        let mut min_height = vec![usize::MAX; n];
        let mut changed = true;
        while changed {
            changed = false;
            for (_, p) in grammar.iter() {
                let mut worst = 0usize;
                let mut productive = true;
                for &s in p.rhs() {
                    match s {
                        Symbol::T(_) => worst = worst.max(1),
                        Symbol::Nt(x) => {
                            let h = min_height[x.index()];
                            if h == usize::MAX {
                                productive = false;
                                break;
                            }
                            worst = worst.max(h);
                        }
                    }
                }
                if productive {
                    let candidate = worst + 1;
                    let cur = &mut min_height[p.lhs().index()];
                    if candidate < *cur {
                        *cur = candidate;
                        changed = true;
                    }
                }
            }
        }
        DerivationSampler {
            grammar,
            min_height,
        }
    }

    /// `true` if `x` derives at least one finite word.
    pub fn is_productive(&self, x: NonTerminal) -> bool {
        self.min_height[x.index()] != usize::MAX
    }

    /// Minimum derivation height of `x`, if productive.
    pub fn min_height(&self, x: NonTerminal) -> Option<usize> {
        match self.min_height[x.index()] {
            usize::MAX => None,
            h => Some(h),
        }
    }

    fn min_prod_height(&self, pid: ProdId) -> usize {
        let p = self.grammar.production(pid);
        let mut worst = 0usize;
        for &s in p.rhs() {
            match s {
                Symbol::T(_) => worst = worst.max(1),
                Symbol::Nt(x) => match self.min_height[x.index()] {
                    usize::MAX => return usize::MAX,
                    h => worst = worst.max(h),
                },
            }
        }
        worst.saturating_add(1)
    }

    /// Samples a derivation tree rooted at the grammar's start symbol.
    /// Returns `None` if the start symbol derives no finite word.
    ///
    /// `budget` bounds the tree height: while the budget lasts, random
    /// alternatives are chosen uniformly; once the subtree's minimum
    /// height exceeds the remaining budget minus one, only
    /// height-minimal alternatives are eligible, so the walk always
    /// terminates.
    pub fn sample_tree(&self, rng: &mut SplitMix64, budget: usize) -> Option<Tree> {
        self.sample_nt(self.grammar.start(), rng, budget)
    }

    /// Samples a word (token sequence) from the start symbol, together
    /// with its witness tree.
    pub fn sample_word(&self, rng: &mut SplitMix64, budget: usize) -> Option<(Vec<Token>, Tree)> {
        let tree = self.sample_tree(rng, budget)?;
        Some((tree.yield_tokens(), tree))
    }

    fn sample_nt(&self, x: NonTerminal, rng: &mut SplitMix64, budget: usize) -> Option<Tree> {
        if !self.is_productive(x) {
            return None;
        }
        let alts = self.grammar.alternatives(x);
        // Eligible alternatives: those whose minimal expansion fits the
        // remaining budget; if none fit (tiny budget), fall back to the
        // globally minimal one so sampling still terminates.
        let eligible: Vec<ProdId> = alts
            .iter()
            .copied()
            .filter(|&q| self.min_prod_height(q) <= budget)
            .collect();
        let pid = if eligible.is_empty() {
            alts.iter()
                .copied()
                .min_by_key(|&q| self.min_prod_height(q))
                .expect("productive nonterminal has alternatives")
        } else {
            eligible[rng.below(eligible.len())]
        };
        let p = self.grammar.production(pid);
        let child_budget = budget.saturating_sub(1);
        let mut children = Vec::with_capacity(p.rhs().len());
        for &s in p.rhs() {
            match s {
                Symbol::T(t) => {
                    let name = self.grammar.symbols().terminal_name(t).to_owned();
                    children.push(Tree::Leaf(Token::new(t, &name)));
                }
                Symbol::Nt(y) => children.push(self.sample_nt(y, rng, child_budget)?),
            }
        }
        Some(Tree::Node(x, children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivation::check_tree;
    use crate::grammar::GrammarBuilder;

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn min_heights() {
        let g = fig2();
        let s = DerivationSampler::new(&g);
        let s_nt = g.symbols().lookup_nonterminal("S").unwrap();
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        // A -> b has height 2 (leaf + node); S -> A c has height 3.
        assert_eq!(s.min_height(a_nt), Some(2));
        assert_eq!(s.min_height(s_nt), Some(3));
    }

    #[test]
    fn unproductive_nonterminal_detected() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["U"]);
        gb.rule("U", &["U", "x"]); // U never bottoms out
        let g = gb.start("S").build().unwrap();
        let s = DerivationSampler::new(&g);
        assert!(!s.is_productive(g.start()));
        let mut rng = SplitMix64::new(1);
        assert!(s.sample_tree(&mut rng, 10).is_none());
    }

    #[test]
    fn sampled_trees_satisfy_derivation_relation() {
        let g = fig2();
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            let (word, tree) = sampler.sample_word(&mut rng, 12).expect("productive");
            assert!(check_tree(&g, g.start(), &word, &tree).is_ok());
        }
    }

    #[test]
    fn budget_bounds_height() {
        let g = fig2();
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(99);
        for _ in 0..100 {
            let tree = sampler.sample_tree(&mut rng, 8).unwrap();
            assert!(tree.height() <= 8, "height {} > 8", tree.height());
        }
    }

    #[test]
    fn tiny_budget_still_terminates() {
        let g = fig2();
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(5);
        // Budget below the minimal height: falls back to minimal
        // productions and still yields a valid tree.
        let tree = sampler.sample_tree(&mut rng, 1).unwrap();
        assert!(check_tree(&g, g.start(), &tree.yield_tokens(), &tree).is_ok());
    }

    #[test]
    fn larger_budgets_reach_longer_words() {
        let g = fig2();
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(3);
        let mut max_len = 0;
        for _ in 0..200 {
            let (word, _) = sampler.sample_word(&mut rng, 30).unwrap();
            max_len = max_len.max(word.len());
        }
        assert!(max_len > 5, "expected some long samples, got {max_len}");
    }
}
