//! A minimal JSON reader for the grammar-analysis cache.
//!
//! The workspace deliberately carries no serialization dependency: every
//! JSON *writer* (lint reports, analyze output, parse stats) is
//! hand-rolled. The grammar cache is the first feature that must *read*
//! JSON back, so this module provides the smallest parser that can
//! round-trip what we write: objects, arrays, strings with `\"`/`\\`/`\n`
//! style escapes, unsigned integers, booleans, and `null`.
//!
//! It is intentionally strict rather than forgiving — a cache file is
//! either exactly what we wrote or it is garbage to be recomputed — and
//! total: malformed input yields `None`, never a panic.

/// A parsed JSON value. Numbers are restricted to unsigned integers
/// because that is all the cache writer emits; anything else fails the
/// parse (and thereby invalidates the cache file).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    Num(u64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub(crate) fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer inside, if this is a number.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer as a usize, if this is a number that fits.
    pub(crate) fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The string inside, if this is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub(crate) fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean inside, if this is a boolean.
    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub(crate) fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Parses a complete JSON document. Trailing non-whitespace, unsupported
/// constructs (floats, negative numbers, duplicate-meaningful escapes we
/// don't emit), or any syntax error yield `None`.
pub(crate) fn parse_json(input: &str) -> Option<JsonValue> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

/// Nesting cap: cache files are machine-written with shallow structure;
/// a deeply nested file is corrupt (and would otherwise recurse unboundedly).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Option<()> {
        let end = self.pos.checked_add(lit.len())?;
        if self.bytes.get(self.pos..end)? == lit.as_bytes() {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        if self.depth >= MAX_DEPTH {
            return None;
        }
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(JsonValue::Str),
            b'0'..=b'9' => self.number(),
            b't' => self.eat_literal("true").map(|_| JsonValue::Bool(true)),
            b'f' => self.eat_literal("false").map(|_| JsonValue::Bool(false)),
            b'n' => self.eat_literal("null").map(|_| JsonValue::Null),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Some(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
        self.depth -= 1;
        Some(JsonValue::Obj(fields))
    }

    fn array(&mut self) -> Option<JsonValue> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Some(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => break,
                _ => return None,
            }
        }
        self.depth -= 1;
        Some(JsonValue::Arr(items))
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let end = self.pos.checked_add(4)?;
                        let hex = std::str::from_utf8(self.bytes.get(self.pos..end)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        // Surrogates are not emitted by our writers.
                        out.push(char::from_u32(code)?);
                        self.pos = end;
                    }
                    _ => return None,
                },
                b => {
                    // Resynchronize on UTF-8 boundaries: collect the full
                    // multi-byte sequence this byte begins.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return None,
                        };
                        let start = self.pos - 1;
                        let end = start.checked_add(width)?;
                        let s = std::str::from_utf8(self.bytes.get(start..end)?).ok()?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // Floats/exponents are never written by the cache; reject them so
        // a corrupt file fails cleanly.
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return None;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse::<u64>().ok().map(JsonValue::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null"), Some(JsonValue::Null));
        assert_eq!(parse_json("true"), Some(JsonValue::Bool(true)));
        assert_eq!(parse_json("false"), Some(JsonValue::Bool(false)));
        assert_eq!(parse_json("42"), Some(JsonValue::Num(42)));
        assert_eq!(
            parse_json("\"hi\\n\\\"x\\\"\""),
            Some(JsonValue::Str("hi\n\"x\"".to_owned()))
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a":[1,2,{"b":null}],"c":"d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("d"));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "1.5",
            "-3",
            "1e9",
            "nul",
            "\"\\q\"",
            "[1] extra",
            "{\"a\":}",
        ] {
            assert_eq!(parse_json(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(parse_json(&deep), None);
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse_json(&ok).is_some());
    }

    #[test]
    fn unicode_strings_round_trip() {
        let v = parse_json("\"héllo → ∀\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → ∀"));
        let v = parse_json("\"\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("A"));
    }

    #[test]
    fn whitespace_tolerated_everywhere() {
        let v = parse_json(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_arr).unwrap().len(), 2);
    }
}
