//! Reachability analysis: which nonterminals can appear in a sentential
//! form derived from the start symbol.
//!
//! An unreachable nonterminal is dead grammar weight: its productions can
//! never participate in a parse, and defects hiding inside them (left
//! recursion, LL(1) conflicts) are latent rather than live. The linter
//! reports unreachable nonterminals so grammar authors can delete them or
//! notice a mis-spelled reference; the analysis itself is a plain BFS over
//! the "appears on a right-hand side" graph rooted at the start symbol.

use crate::grammar::Grammar;
use crate::sets::NtSet;
use crate::symbol::{NonTerminal, Symbol};

/// Result of the reachability analysis, with BFS parent links so each
/// reachable nonterminal can produce a witness path from the start symbol.
#[derive(Debug, Clone)]
pub struct Reachability {
    reachable: NtSet,
    /// `parent[x]` is the nonterminal whose production first reached `x`
    /// in the BFS (`None` for the start symbol and unreachable ones).
    parent: Vec<Option<NonTerminal>>,
}

impl Reachability {
    /// BFS from the start symbol over right-hand-side occurrences.
    pub fn compute(g: &Grammar) -> Self {
        let n = g.num_nonterminals();
        let mut reachable = NtSet::with_capacity(n);
        let mut parent: Vec<Option<NonTerminal>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        reachable.insert(g.start());
        queue.push_back(g.start());
        while let Some(x) = queue.pop_front() {
            for &pid in g.alternatives(x) {
                for &s in g.production(pid).rhs() {
                    if let Symbol::Nt(y) = s {
                        if reachable.insert(y) {
                            parent[y.index()] = Some(x);
                            queue.push_back(y);
                        }
                    }
                }
            }
        }
        Reachability { reachable, parent }
    }

    /// Is `x` reachable from the start symbol?
    pub fn is_reachable(&self, x: NonTerminal) -> bool {
        self.reachable.contains(x)
    }

    /// All reachable nonterminals.
    pub fn reachable_set(&self) -> &NtSet {
        &self.reachable
    }

    /// The BFS parent links (grammar-cache serialization).
    pub(crate) fn parents(&self) -> &[Option<NonTerminal>] {
        &self.parent
    }

    /// Rebuilds from raw parts (grammar-cache deserialization).
    pub(crate) fn from_parts(reachable: NtSet, parent: Vec<Option<NonTerminal>>) -> Self {
        Reachability { reachable, parent }
    }

    /// Nonterminals that have productions but are not reachable.
    pub fn unreachable(&self, g: &Grammar) -> Vec<NonTerminal> {
        g.symbols()
            .nonterminals()
            .filter(|&x| !g.alternatives(x).is_empty() && !self.reachable.contains(x))
            .collect()
    }

    /// The BFS witness path `start ⇒ … ⇒ x` for a reachable `x`
    /// (start-first). `None` if `x` is unreachable.
    pub fn witness_path(&self, x: NonTerminal) -> Option<Vec<NonTerminal>> {
        if !self.reachable.contains(x) {
            return None;
        }
        let mut path = vec![x];
        let mut cur = x;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    #[test]
    fn all_reachable_in_connected_grammar() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("A", &["b"]);
        let g = gb.start("S").build().unwrap();
        let r = Reachability::compute(&g);
        assert!(r.is_reachable(nt(&g, "S")));
        assert!(r.is_reachable(nt(&g, "A")));
        assert!(r.unreachable(&g).is_empty());
    }

    #[test]
    fn orphan_nonterminal_is_unreachable() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a"]);
        gb.rule("Dead", &["b"]);
        let g = gb.start("S").build().unwrap();
        let r = Reachability::compute(&g);
        assert_eq!(r.unreachable(&g), vec![nt(&g, "Dead")]);
        assert!(r.witness_path(nt(&g, "Dead")).is_none());
    }

    #[test]
    fn witness_path_runs_start_to_target() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A"]);
        gb.rule("A", &["B", "x"]);
        gb.rule("B", &["y"]);
        let g = gb.start("S").build().unwrap();
        let r = Reachability::compute(&g);
        let path = r.witness_path(nt(&g, "B")).unwrap();
        assert_eq!(path, vec![nt(&g, "S"), nt(&g, "A"), nt(&g, "B")]);
    }

    #[test]
    fn unreachable_cluster_stays_unreachable() {
        // Dead1 and Dead2 reference each other but not the live part.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a"]);
        gb.rule("Dead1", &["Dead2"]);
        gb.rule("Dead2", &["Dead1", "b"]);
        let g = gb.start("S").build().unwrap();
        let r = Reachability::compute(&g);
        let mut un = r.unreachable(&g);
        un.sort_by_key(|x| x.index());
        assert_eq!(un.len(), 2);
        assert!(!r.is_reachable(nt(&g, "Dead1")));
        assert!(!r.is_reachable(nt(&g, "Dead2")));
    }
}
