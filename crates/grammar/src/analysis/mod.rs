//! Static grammar analyses used by the parser and the baselines.
//!
//! CoStar computes some grammar information statically (paper §3.5 notes
//! that the SLL stable-return frames are "computed statically from the
//! grammar"); the LL(1) baseline and the left-recursion decision procedure
//! are entirely static. This module bundles:
//!
//! * [`NullableSet`] — which nonterminals derive ε;
//! * [`FirstSets`] / [`FollowSets`] — classic predictive-parsing sets;
//! * [`LeftRecursion`] — the decision procedure for the paper's
//!   "non-left-recursive" precondition (its §8 future work);
//! * [`Reachability`] / [`Productivity`] — which nonterminals can occur in
//!   a derivation from the start symbol, and which can complete one; the
//!   [`crate::lint`] linter turns their complements into diagnostics;
//! * [`StableFrames`] — SLL stable return destinations (§3.5);
//! * [`DecisionTable`] — static per-decision classification (LL(1) /
//!   SLL-safe / needs-full-ALL(*)) with a precompiled lookahead fast
//!   path for the parse-time engine;
//! * [`AuditTable`] — exact per-decision lookahead bounds with collide
//!   and resolve witnesses, dead/shadowed alternatives, serialized as
//!   the machine-checkable `costar-cert-v1` certificate that the cache
//!   loader replays instead of trusting;
//! * [`CostModel`] — static cost certification: sound per-grammar fuel
//!   constants (`steps(n) ≤ a·n + b` for fully lookahead-bounded
//!   grammars) derived from the termination measure, serialized as the
//!   `costar-cost-v1` certificate and likewise replayed on load.

// Analysis code feeds the prediction hot path, so it is held to the same
// panic-freedom discipline as the machine itself (see clippy.toml at the
// crate root): no `unwrap`/`expect`/`panic!` outside tests; audited
// exceptions carry a targeted `#[allow]` with a justification.
#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]

mod audit;
mod cache;
mod cost;
mod decide;
mod first_follow;
mod left_recursion;
mod nullable;
mod productivity;
mod reachability;
mod sll_graph;
mod stable_frames;
mod sync;

pub use audit::{
    parse_cert_json, replay as replay_certificate, simulate_survivors, to_cert_json, AuditInfo,
    AuditStats, AuditTable, PairAudit, CERT_SCHEMA,
};
pub use cache::{
    from_cache_json, grammar_fingerprint, to_cache_json, write_cache_atomic, CACHE_SCHEMA,
};
pub use cost::{
    parse_cost_json, replay as replay_cost_certificate, to_cost_json, CostModel, COST_SCHEMA,
};
pub use decide::{
    ConflictPair, DecisionClass, DecisionInfo, DecisionStats, DecisionTable, LookaheadMap,
};
pub use first_follow::{ll1_selects, FirstSets, FollowSets};
pub use left_recursion::LeftRecursion;
pub use nullable::NullableSet;
pub use productivity::Productivity;
pub use reachability::Reachability;
pub use stable_frames::{Position, StableDests, StableFrames};
pub use sync::SyncSets;

use crate::grammar::Grammar;

/// All analyses bundled, computed once per grammar.
///
/// The CoStar machine consults [`StableFrames`] during SLL prediction and
/// [`LeftRecursion`] when validating the theorem precondition; baselines use
/// the rest.
///
/// # Examples
///
/// ```
/// use costar_grammar::{analysis::GrammarAnalysis, GrammarBuilder};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a"]);
/// let g = gb.start("S").build()?;
/// let a = GrammarAnalysis::compute(&g);
/// assert!(a.left_recursion.is_grammar_safe());
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GrammarAnalysis {
    /// Nullable nonterminals.
    pub nullable: NullableSet,
    /// FIRST sets.
    pub first: FirstSets,
    /// FOLLOW sets.
    pub follow: FollowSets,
    /// Left-recursion decision.
    pub left_recursion: LeftRecursion,
    /// Reachability from the start symbol.
    pub reachability: Reachability,
    /// Productivity (can each nonterminal finish a derivation?).
    pub productivity: Productivity,
    /// SLL stable return frames.
    pub stable_frames: StableFrames,
    /// Static decision-point classification and lookahead fast path.
    pub decisions: DecisionTable,
    /// Panic-mode recovery synchronization sets (FIRST ∪ FOLLOW).
    pub sync: SyncSets,
    /// Audit pass: exact per-decision lookahead bounds with witnesses,
    /// dead and shadowed alternatives (the `costar-cert-v1` certificate).
    pub audit: AuditTable,
    /// Static cost certification: sound per-grammar fuel constants with
    /// the claim `steps(n) ≤ bound_for(n)` for accepting/rejecting parses
    /// (the `costar-cost-v1` certificate).
    pub cost: CostModel,
}

impl GrammarAnalysis {
    /// Runs every analysis on `g`.
    pub fn compute(g: &Grammar) -> Self {
        let nullable = NullableSet::compute(g);
        let first = FirstSets::compute(g, &nullable);
        let follow = FollowSets::compute(g, &nullable, &first);
        let left_recursion = LeftRecursion::compute(g, &nullable);
        let reachability = Reachability::compute(g);
        let productivity = Productivity::compute(g);
        let stable_frames = StableFrames::compute(g, &nullable);
        let decisions = DecisionTable::compute(g, &nullable, &first, &follow, &stable_frames);
        let sync = SyncSets::compute(g, &first, &follow);
        let audit = AuditTable::compute(g, &stable_frames, &productivity);
        let cost = CostModel::compute(g, &nullable, &left_recursion, &audit);
        GrammarAnalysis {
            nullable,
            first,
            follow,
            left_recursion,
            reachability,
            productivity,
            stable_frames,
            decisions,
            sync,
            audit,
            cost,
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    #[test]
    fn bundle_computes_consistently() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &[]);
        let g = gb.start("S").build().unwrap();
        let a = GrammarAnalysis::compute(&g);
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        assert!(a.nullable.contains(a_nt));
        assert!(a.left_recursion.is_grammar_safe());
        assert!(a.reachability.is_reachable(a_nt));
        assert!(a.productivity.is_productive(a_nt));
        assert!(!a.stable_frames.dests(a_nt).positions.is_empty());
        // A -> a A | ε is a decision point; the bundle must classify it.
        assert!(a.decisions.decision(a_nt).is_some());
    }
}
