//! Static SLL closure graph: a grammar-time subset construction over the
//! abstract configurations an SLL prediction can reach.
//!
//! The parse-time SLL engine (paper §3.4/§3.5) simulates one subparser
//! per alternative over the *actual* remaining input, returning through
//! the statically computed stable frames when a simulated stack empties.
//! This module runs the same simulation symbolically over *all possible*
//! inputs: states are canonical sets of abstract configurations, and
//! transitions are labeled by the terminal consumed. The resulting graph
//! answers, entirely at grammar-compile time, the question "can SLL
//! prediction for this decision nonterminal ever report a conflict?" —
//! the property the `SllSafe` decision class certifies.
//!
//! ## Abstraction and soundness
//!
//! An abstract configuration carries the alternative it votes for and a
//! continuation: either `Eof` (the subparser accepts exactly at end of
//! input) or a stack of `(production, dot)` frames. Two deliberate
//! over-approximations keep the graph finite where the concrete
//! simulation's state space is not:
//!
//! * **Tail-call elision.** When a caller frame's dot passes the last
//!   symbol of its right-hand side at push time, the frame is dropped
//!   instead of kept. A configuration that later empties its stack then
//!   returns through the stable destinations of the *pushed* nonterminal
//!   `Y` rather than of the dropped caller's left-hand side `Z`. This is
//!   sound because `SD[Y] ⊇ SF[p, |rhs(p)|] ⊇ SD[Z]` (the caller and
//!   return constraints of the stable-frame fixpoint): the elided
//!   configuration set is a superset of the concrete one. Elision is what
//!   keeps right-recursive grammars — whose concrete simulated stacks
//!   grow with input length — finite-state here.
//! * **Exploration caps.** Left recursion and pathological grammars can
//!   still blow the graph up; bounded exploration reports
//!   [`GraphOutcome::Bounded`], which callers treat as "not provably
//!   safe" — never as "safe".
//!
//! Because every concrete reachable configuration set is covered by an
//! abstract reachable state, a graph with no conflicting state proves the
//! parse-time engine can never take the LL failover path for this
//! decision. The converse does not hold: a conflicting *abstract* state
//! may be unreachable concretely, so `Conflict` only means "not provably
//! safe".

use crate::analysis::stable_frames::StableFrames;
use crate::grammar::{Grammar, ProdId};
use crate::symbol::{Symbol, Terminal};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Exploration caps: exceeding any of them yields [`GraphOutcome::Bounded`].
pub(crate) const MAX_STATES: usize = 256;
pub(crate) const MAX_STACK_DEPTH: usize = 32;
pub(crate) const MAX_CONFIGS_PER_STATE: usize = 512;
pub(crate) const MAX_WORK_ITEMS: usize = 100_000;

/// The continuation of an abstract subparser configuration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum StaticCont {
    /// The subparser accepts exactly at end of input.
    Eof,
    /// Frames still to process, bottom first (top is the last element).
    /// Never empty: an emptied stack is immediately rewritten through the
    /// stable destinations of the finished nonterminal.
    Frames(Vec<(ProdId, u32)>),
}

/// An abstract configuration: the alternative it votes for plus its
/// continuation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct StaticConfig {
    pub alt: ProdId,
    pub cont: StaticCont,
}

/// What exploring the closure graph established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GraphOutcome {
    /// Every reachable state was enumerated and none lets two
    /// alternatives accept end of input: SLL prediction provably never
    /// conflicts for this decision.
    ConflictFree,
    /// Some reachable abstract state has end-of-input configurations for
    /// at least two alternatives — a potential SLL conflict.
    Conflict,
    /// An exploration cap was hit first; safety is unknown.
    Bounded,
}

/// The result of exploring one decision point's closure graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct GraphReport {
    /// What the exploration established.
    pub outcome: GraphOutcome,
    /// Number of distinct subset states enumerated.
    pub states: usize,
    /// The terminal word labeling the shortest path (in BFS order) to a
    /// state where at most one alternative survives — a distinguishing
    /// prefix under the SLL abstraction. `None` when no such state was
    /// reached within the caps.
    pub distinguishing_prefix: Option<Vec<Terminal>>,
}

/// Signals an exploration cap was exceeded.
pub(crate) struct CapHit;

/// Closure of `init`: performs every abstract push and return possible
/// without consuming input, producing the stable configurations (top dot
/// before a terminal, or `Eof`). `work_budget` is decremented per
/// processed item and exhaustion aborts with `CapHit`.
pub(crate) fn static_closure(
    g: &Grammar,
    sf: &StableFrames,
    init: Vec<StaticConfig>,
    work_budget: &mut usize,
) -> Result<BTreeSet<StaticConfig>, CapHit> {
    let mut out: BTreeSet<StaticConfig> = BTreeSet::new();
    let mut visited: BTreeSet<StaticConfig> = BTreeSet::new();
    let mut work: Vec<StaticConfig> = init;

    while let Some(c) = work.pop() {
        if *work_budget == 0 {
            return Err(CapHit);
        }
        *work_budget -= 1;
        if !visited.insert(c.clone()) {
            continue;
        }
        let stack = match &c.cont {
            StaticCont::Eof => {
                out.insert(c);
                continue;
            }
            StaticCont::Frames(stack) => stack,
        };
        let Some(&(p, j)) = stack.last() else {
            // Constructed continuations are never empty; skip defensively.
            continue;
        };
        let rhs = g.production(p).rhs();
        if (j as usize) < rhs.len() {
            match rhs[j as usize] {
                Symbol::T(_) => {
                    // Stable: consuming input is the only way forward.
                    out.insert(c);
                }
                Symbol::Nt(y) => {
                    // Abstract push with tail-call elision: advance the
                    // caller's dot past `y`, dropping the frame when that
                    // exhausts it (see the module docs for why this is a
                    // sound over-approximation).
                    let mut base: Vec<(ProdId, u32)> = stack[..stack.len() - 1].to_vec();
                    if (j as usize) + 1 < rhs.len() {
                        base.push((p, j + 1));
                    }
                    for &q in g.alternatives(y) {
                        let mut pushed = base.clone();
                        pushed.push((q, 0));
                        if pushed.len() > MAX_STACK_DEPTH {
                            return Err(CapHit);
                        }
                        work.push(StaticConfig {
                            alt: c.alt,
                            cont: StaticCont::Frames(pushed),
                        });
                    }
                }
            }
        } else {
            // Exhausted top frame: abstract return.
            let mut tail = stack.clone();
            tail.pop();
            if tail.is_empty() {
                // Return out of the decision context: resume at the
                // statically computed stable destinations of the finished
                // nonterminal (paper §3.5), exactly as the parse-time
                // engine does.
                let dests = sf.dests(g.production(p).lhs());
                for pos in &dests.positions {
                    work.push(StaticConfig {
                        alt: c.alt,
                        cont: StaticCont::Frames(vec![(pos.production, pos.dot)]),
                    });
                }
                if dests.can_end {
                    work.push(StaticConfig {
                        alt: c.alt,
                        cont: StaticCont::Eof,
                    });
                }
            } else {
                // The frame below was advanced past the finished
                // nonterminal at push time; just resume there.
                work.push(StaticConfig {
                    alt: c.alt,
                    cont: StaticCont::Frames(tail),
                });
            }
        }
    }
    Ok(out)
}

/// The distinct alternatives voted for by `state`, ascending.
pub(crate) fn distinct_alts(state: &BTreeSet<StaticConfig>) -> Vec<ProdId> {
    let mut alts: Vec<ProdId> = state.iter().map(|c| c.alt).collect();
    alts.sort_unstable();
    alts.dedup();
    alts
}

/// Do two or more alternatives accept end of input in `state`? This is
/// precisely the condition under which the parse-time engine's
/// end-of-input resolution reports a conflict and fails over to LL.
pub(crate) fn has_eof_conflict(state: &BTreeSet<StaticConfig>) -> bool {
    let mut eof_alts: Vec<ProdId> = state
        .iter()
        .filter(|c| c.cont == StaticCont::Eof)
        .map(|c| c.alt)
        .collect();
    eof_alts.sort_unstable();
    eof_alts.dedup();
    eof_alts.len() >= 2
}

/// Groups the stable stack configurations of `state` by the terminal
/// each one is about to consume, advancing the top dot past it — the
/// "move" half of the subset construction, shared by [`explore`], the
/// audit pass's pair graphs, and certificate witness replay. Entries are
/// in terminal-index order for determinism; `Eof` configurations die on
/// any terminal and are omitted.
pub(crate) fn moves_by_terminal(
    g: &Grammar,
    state: &BTreeSet<StaticConfig>,
) -> BTreeMap<Terminal, Vec<StaticConfig>> {
    let mut by_terminal: BTreeMap<Terminal, Vec<StaticConfig>> = BTreeMap::new();
    for c in state {
        let StaticCont::Frames(stack) = &c.cont else {
            continue; // Eof configurations die on any terminal.
        };
        let Some(&(p, j)) = stack.last() else {
            continue;
        };
        let Some(Symbol::T(t)) = g.production(p).rhs().get(j as usize).copied() else {
            continue; // closure output is stable; anything else is dead.
        };
        let mut advanced = stack.clone();
        if let Some(top) = advanced.last_mut() {
            top.1 += 1;
        }
        by_terminal.entry(t).or_default().push(StaticConfig {
            alt: c.alt,
            cont: StaticCont::Frames(advanced),
        });
    }
    by_terminal
}

/// Explores the closure graph for deciding among `alts` (alternatives of
/// the decision nonterminal). BFS over subset states: the first state
/// reached with at most one surviving alternative labels the
/// distinguishing prefix; any state with an end-of-input conflict settles
/// the outcome as [`GraphOutcome::Conflict`].
pub(crate) fn explore(g: &Grammar, sf: &StableFrames, alts: &[ProdId]) -> GraphReport {
    let mut work_budget = MAX_WORK_ITEMS;
    let init: Vec<StaticConfig> = alts
        .iter()
        .map(|&p| StaticConfig {
            alt: p,
            cont: StaticCont::Frames(vec![(p, 0)]),
        })
        .collect();

    let bounded = |states: usize, prefix: Option<Vec<Terminal>>| GraphReport {
        outcome: GraphOutcome::Bounded,
        states,
        distinguishing_prefix: prefix,
    };

    let start = match static_closure(g, sf, init, &mut work_budget) {
        Ok(s) => s,
        Err(CapHit) => return bounded(0, None),
    };

    // Subset states, interned by their canonical config set. Each state
    // remembers the terminal word of its (BFS-shortest) discovery path.
    let mut ids: BTreeMap<Vec<StaticConfig>, usize> = BTreeMap::new();
    let mut prefixes: Vec<Vec<Terminal>> = Vec::new();
    let mut queue: VecDeque<(usize, BTreeSet<StaticConfig>)> = VecDeque::new();

    let key: Vec<StaticConfig> = start.iter().cloned().collect();
    ids.insert(key, 0);
    prefixes.push(Vec::new());
    queue.push_back((0, start));

    let mut conflict = false;
    let mut distinguishing: Option<Vec<Terminal>> = None;

    while let Some((sid, state)) = queue.pop_front() {
        if state.len() > MAX_CONFIGS_PER_STATE {
            return bounded(ids.len(), distinguishing);
        }
        if has_eof_conflict(&state) {
            conflict = true;
        }
        let survivors = distinct_alts(&state);
        if survivors.len() <= 1 {
            // The parse-time engine commits (or rejects) here without
            // reading further input: record the prefix, prune successors.
            if distinguishing.is_none() {
                distinguishing = Some(prefixes[sid].clone());
            }
            continue;
        }
        for (t, moved) in moves_by_terminal(g, &state) {
            let next = match static_closure(g, sf, moved, &mut work_budget) {
                Ok(s) => s,
                Err(CapHit) => return bounded(ids.len(), distinguishing),
            };
            let next_key: Vec<StaticConfig> = next.iter().cloned().collect();
            if ids.contains_key(&next_key) {
                continue;
            }
            if ids.len() >= MAX_STATES {
                return bounded(ids.len(), distinguishing);
            }
            let next_id = prefixes.len();
            let mut prefix = prefixes[sid].clone();
            prefix.push(t);
            ids.insert(next_key, next_id);
            prefixes.push(prefix);
            queue.push_back((next_id, next));
        }
    }

    GraphReport {
        outcome: if conflict {
            GraphOutcome::Conflict
        } else {
            GraphOutcome::ConflictFree
        },
        states: ids.len(),
        distinguishing_prefix: distinguishing,
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::analysis::nullable::NullableSet;
    use crate::grammar::GrammarBuilder;

    fn setup(build: impl FnOnce(&mut GrammarBuilder)) -> (Grammar, StableFrames) {
        let mut gb = GrammarBuilder::new();
        build(&mut gb);
        let g = gb.build().unwrap();
        let n = NullableSet::compute(&g);
        let sf = StableFrames::compute(&g, &n);
        (g, sf)
    }

    fn report(g: &Grammar, sf: &StableFrames, name: &str) -> GraphReport {
        let x = g.symbols().lookup_nonterminal(name).unwrap();
        explore(g, sf, g.alternatives(x))
    }

    #[test]
    fn fig2_decision_is_conflict_free() {
        // Paper Fig. 2: S -> A c | A d is not LL(1), but SLL prediction
        // always resolves it (the c/d suffix separates the alternatives),
        // so the graph must be conflict-free despite the right recursion
        // in A (tail-call elision keeps it finite).
        let (g, sf) = setup(|gb| {
            gb.rule("S", &["A", "c"]);
            gb.rule("S", &["A", "d"]);
            gb.rule("A", &["a", "A"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        });
        let r = report(&g, &sf, "S");
        assert_eq!(r.outcome, GraphOutcome::ConflictFree, "{r:?}");
        assert!(r.states >= 2);
        // A shortest distinguishing prefix exists: e.g. "b c" resolves to
        // the first alternative after two tokens.
        let prefix = r.distinguishing_prefix.expect("fig2 S is resolvable");
        assert!(!prefix.is_empty());
    }

    #[test]
    fn genuinely_ambiguous_decision_conflicts() {
        // Paper Fig. 6: S -> X | Y; X -> a; Y -> a. Both alternatives
        // accept EOF after "a": the conflict state is reachable.
        let (g, sf) = setup(|gb| {
            gb.rule("S", &["X"]);
            gb.rule("S", &["Y"]);
            gb.rule("X", &["a"]);
            gb.rule("Y", &["a"]);
            gb.start("S");
        });
        let r = report(&g, &sf, "S");
        assert_eq!(r.outcome, GraphOutcome::Conflict, "{r:?}");
    }

    #[test]
    fn sll_context_merge_conflict_detected() {
        // The SLL-conflict grammar from the core prediction tests: merged
        // contexts let both X alternatives survive to EOF on "a a b".
        let (g, sf) = setup(|gb| {
            gb.rule("S", &["p", "C1"]);
            gb.rule("S", &["q", "C2"]);
            gb.rule("C1", &["X", "b"]);
            gb.rule("C2", &["X", "a", "b"]);
            gb.rule("X", &["a", "a"]);
            gb.rule("X", &["a"]);
            gb.start("S");
        });
        let r = report(&g, &sf, "X");
        assert_eq!(r.outcome, GraphOutcome::Conflict, "{r:?}");
        // The top-level S decision (p vs q) stays conflict-free.
        let r = report(&g, &sf, "S");
        assert_eq!(r.outcome, GraphOutcome::ConflictFree, "{r:?}");
    }

    #[test]
    fn left_recursion_is_bounded_not_safe() {
        let (g, sf) = setup(|gb| {
            gb.rule("E", &["E", "x"]);
            gb.rule("E", &["y"]);
            gb.start("E");
        });
        let r = report(&g, &sf, "E");
        assert_eq!(r.outcome, GraphOutcome::Bounded, "{r:?}");
    }

    #[test]
    fn pair_exploration_yields_distinguishing_prefix() {
        // Exploring just the fig2 S pair gives the shortest prefix after
        // which one alternative remains: one of "b c" / "b d" families —
        // the first resolved state in BFS order.
        let (g, sf) = setup(|gb| {
            gb.rule("S", &["A", "c"]);
            gb.rule("S", &["A", "d"]);
            gb.rule("A", &["a", "A"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        });
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let alts = g.alternatives(s);
        let r = explore(&g, &sf, alts);
        let prefix = r.distinguishing_prefix.unwrap();
        // The prefix must end in the separating c or d.
        let last = *prefix.last().unwrap();
        let name = g.symbols().terminal_name(last);
        assert!(name == "c" || name == "d", "{name}");
    }

    #[test]
    fn right_recursion_stays_finite() {
        // rlist: S -> a S | e. Concrete simulated stacks grow with input
        // length; elision must keep the abstract graph small.
        let (g, sf) = setup(|gb| {
            gb.rule("S", &["a", "S"]);
            gb.rule("S", &["e"]);
            gb.start("S");
        });
        let r = report(&g, &sf, "S");
        assert_eq!(r.outcome, GraphOutcome::ConflictFree, "{r:?}");
        assert!(r.states <= 8, "expected a small graph, got {}", r.states);
    }
}
