//! Nullable-nonterminal analysis.
//!
//! A nonterminal is *nullable* if it derives the empty word. Nullability
//! feeds the left-recursion decision procedure (a nullable path, paper
//! §5.4.2, skips over nullable prefixes), FIRST/FOLLOW computation, and the
//! SLL stable-frame analysis.

use crate::grammar::Grammar;
use crate::sets::NtSet;
use crate::symbol::{NonTerminal, Symbol};

/// The set of nullable nonterminals of a grammar.
///
/// # Examples
///
/// ```
/// use costar_grammar::{GrammarBuilder, analysis::NullableSet};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["A", "x"]);
/// gb.rule("A", &[]);
/// let g = gb.start("S").build()?;
/// let nullable = NullableSet::compute(&g);
/// let a = g.symbols().lookup_nonterminal("A").unwrap();
/// let s = g.symbols().lookup_nonterminal("S").unwrap();
/// assert!(nullable.contains(a));
/// assert!(!nullable.contains(s));
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NullableSet {
    set: NtSet,
}

impl NullableSet {
    /// Computes the nullable set by the standard worklist fixpoint: a
    /// nonterminal is nullable iff it has a production whose right-hand
    /// side consists entirely of nullable nonterminals.
    pub fn compute(g: &Grammar) -> Self {
        let mut set = NtSet::with_capacity(g.num_nonterminals());
        let mut changed = true;
        while changed {
            changed = false;
            for (_, p) in g.iter() {
                if set.contains(p.lhs()) {
                    continue;
                }
                let all_nullable = p.rhs().iter().all(|&s| match s {
                    Symbol::T(_) => false,
                    Symbol::Nt(x) => set.contains(x),
                });
                if all_nullable {
                    set.insert(p.lhs());
                    changed = true;
                }
            }
        }
        NullableSet { set }
    }

    /// Is nonterminal `x` nullable?
    pub fn contains(&self, x: NonTerminal) -> bool {
        self.set.contains(x)
    }

    /// Is every symbol in `form` nullable? (Terminals never are.) The empty
    /// form is trivially nullable.
    pub fn form_nullable(&self, form: &[Symbol]) -> bool {
        form.iter().all(|&s| match s {
            Symbol::T(_) => false,
            Symbol::Nt(x) => self.contains(x),
        })
    }

    /// The underlying set.
    pub fn as_set(&self) -> &NtSet {
        &self.set
    }

    /// Rebuilds from a raw set (grammar-cache deserialization).
    pub(crate) fn from_parts(set: NtSet) -> Self {
        NullableSet { set }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    #[test]
    fn direct_epsilon() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &[]);
        let g = gb.start("S").build().unwrap();
        let n = NullableSet::compute(&g);
        assert!(n.contains(nt(&g, "S")));
    }

    #[test]
    fn transitive_nullability() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "B"]);
        gb.rule("A", &[]);
        gb.rule("B", &["A", "A"]);
        let g = gb.start("S").build().unwrap();
        let n = NullableSet::compute(&g);
        for name in ["S", "A", "B"] {
            assert!(n.contains(nt(&g, name)), "{name} should be nullable");
        }
    }

    #[test]
    fn terminal_blocks_nullability() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "x"]);
        gb.rule("A", &[]);
        let g = gb.start("S").build().unwrap();
        let n = NullableSet::compute(&g);
        assert!(!n.contains(nt(&g, "S")));
        assert!(n.contains(nt(&g, "A")));
    }

    #[test]
    fn non_nullable_recursive_grammar() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "S"]);
        gb.rule("S", &["a"]);
        let g = gb.start("S").build().unwrap();
        let n = NullableSet::compute(&g);
        assert!(!n.contains(nt(&g, "S")));
        assert!(n.as_set().is_empty());
    }

    #[test]
    fn form_nullable_handles_mixed_forms() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A"]);
        gb.rule("A", &[]);
        let g = gb.start("S").build().unwrap();
        let n = NullableSet::compute(&g);
        let a = Symbol::Nt(nt(&g, "A"));
        let term = g.symbols().terminals().next();
        assert!(n.form_nullable(&[]));
        assert!(n.form_nullable(&[a, a]));
        if let Some(t) = term {
            assert!(!n.form_nullable(&[a, Symbol::T(t)]));
        }
    }
}
