//! Grammar-analysis caching: serialize a complete [`GrammarAnalysis`]
//! (including the [`super::DecisionTable`] and recovery [`super::SyncSets`])
//! to JSON and read it back, keyed by a content fingerprint of the
//! grammar.
//!
//! Recomputing the analyses is pure function of the grammar, so a cache
//! entry is valid exactly when the grammar that produced it is
//! byte-identical to the one being loaded — which is what
//! [`grammar_fingerprint`] captures (symbol tables in interning order,
//! start symbol, and every production, so the dense indices baked into
//! the serialized sets mean the same thing on the way back in).
//!
//! The deserializer is *never trusting*: schema string, fingerprint, and
//! dimensions must match the live grammar, every index is bounds-checked,
//! and any discrepancy makes [`from_cache_json`] return `None` so the
//! caller recomputes. A stale or corrupted cache file can cost a
//! recompute; it can never corrupt a parse.
//!
//! File placement is the caller's business (the CLI writes
//! `<cache-dir>/<fingerprint>.json`), but the atomic write itself lives
//! here: [`write_cache_atomic`] stages the document in a temp file whose
//! name is unique per process *and per write* (pid + a process-local
//! counter) and renames it into place, so any number of concurrent
//! writers — including several `costar` processes racing on the same
//! cache directory — each stage privately, and the last whole-file
//! rename wins. A shared temp name (the old `<file>.tmp` scheme) let one
//! process rename another's half-written staging file into place.

use crate::analysis::{
    audit, cost, ConflictPair, DecisionClass, DecisionInfo, DecisionTable, FirstSets, FollowSets,
    GrammarAnalysis, LeftRecursion, LookaheadMap, NullableSet, Position, Productivity,
    Reachability, StableDests, StableFrames, SyncSets,
};
use crate::grammar::{Grammar, ProdId};
use crate::json::{parse_json, JsonValue};
use crate::sets::{NtSet, TermSet};
use crate::symbol::{NonTerminal, Terminal};
use std::fmt::Write as _;

/// Schema tag stamped into every cache file; bump it whenever the
/// serialized shape changes so old files fail cleanly. v2 added the
/// embedded `costar-cert-v1` audit certificate; v3 added the embedded
/// `costar-cost-v1` cost certificate.
pub const CACHE_SCHEMA: &str = "costar-gcache-v3";

/// FNV-1a content hash of a grammar: symbol tables (both namespaces, in
/// interning order), start symbol, and all productions. Two grammars
/// share a fingerprint only if their dense symbol/production indices are
/// interchangeable, which is exactly the property cached index-based
/// analyses need.
pub fn grammar_fingerprint(g: &Grammar) -> u64 {
    let mut h = Fnv::new();
    let tab = g.symbols();
    h.usize(tab.num_terminals());
    for t in tab.terminals() {
        h.str(tab.terminal_name(t));
    }
    h.usize(tab.num_nonterminals());
    for x in tab.nonterminals() {
        h.str(tab.nonterminal_name(x));
    }
    h.usize(g.start().index());
    h.usize(g.num_productions());
    for (_, p) in g.iter() {
        h.usize(p.lhs().index());
        h.usize(p.rhs().len());
        for &s in p.rhs() {
            match s {
                crate::symbol::Symbol::T(t) => {
                    h.byte(b'T');
                    h.usize(t.index());
                }
                crate::symbol::Symbol::Nt(x) => {
                    h.byte(b'N');
                    h.usize(x.index());
                }
            }
        }
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn usize(&mut self, n: usize) {
        for b in (n as u64).to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        for &b in s.as_bytes() {
            self.byte(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Renders the complete analysis bundle as a deterministic JSON document.
pub fn to_cache_json(g: &Grammar, a: &GrammarAnalysis) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"schema\":\"{CACHE_SCHEMA}\",\"fingerprint\":\"{:016x}\",\"nts\":{},\"ts\":{},\"prods\":{}",
        grammar_fingerprint(g),
        g.num_nonterminals(),
        g.num_terminals(),
        g.num_productions(),
    );

    out.push_str(",\"nullable\":");
    push_index_array(&mut out, a.nullable.as_set().iter().map(|x| x.index()));

    out.push_str(",\"first\":[");
    for (i, s) in a.first.sets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_index_array(&mut out, s.iter().map(|t| t.index()));
    }
    out.push(']');

    let (follow_sets, follow_eof) = a.follow.parts();
    out.push_str(",\"follow\":{\"sets\":[");
    for (i, s) in follow_sets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_index_array(&mut out, s.iter().map(|t| t.index()));
    }
    out.push_str("],\"eof\":");
    push_bool_array(&mut out, follow_eof.iter().copied());
    out.push('}');

    out.push_str(",\"left_recursion\":{\"set\":");
    push_index_array(
        &mut out,
        a.left_recursion
            .left_recursive_set()
            .iter()
            .map(|x| x.index()),
    );
    out.push_str(",\"edges\":[");
    for (i, es) in a.left_recursion.edge_lists().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_index_array(&mut out, es.iter().copied());
    }
    out.push_str("]}");

    out.push_str(",\"reachability\":{\"set\":");
    push_index_array(
        &mut out,
        a.reachability.reachable_set().iter().map(|x| x.index()),
    );
    out.push_str(",\"parent\":");
    push_opt_index_array(
        &mut out,
        a.reachability
            .parents()
            .iter()
            .map(|p| p.map(|x| x.index())),
    );
    out.push('}');

    out.push_str(",\"productivity\":{\"set\":");
    push_index_array(
        &mut out,
        a.productivity.productive_set().iter().map(|x| x.index()),
    );
    out.push_str(",\"witness\":");
    push_opt_index_array(
        &mut out,
        a.productivity
            .witnesses()
            .iter()
            .map(|w| w.map(|p| p.index())),
    );
    out.push('}');

    out.push_str(",\"stable_frames\":[");
    for (i, d) in a.stable_frames.all_dests().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"pos\":[");
        for (j, p) in d.positions.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", p.production.index(), p.dot);
        }
        let _ = write!(out, "],\"end\":{}}}", d.can_end);
    }
    out.push(']');

    out.push_str(",\"decisions\":[");
    for (i, row) in a.decisions.rows().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match row {
            None => out.push_str("null"),
            Some(d) => push_decision(&mut out, d),
        }
    }
    out.push(']');

    out.push_str(",\"sync\":{\"sets\":[");
    for (i, (s, _)) in a.sync.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_index_array(&mut out, s.iter().map(|t| t.index()));
    }
    out.push_str("],\"eof\":");
    push_bool_array(&mut out, a.sync.iter().map(|(_, e)| e));
    out.push('}');

    // The audit certificate is embedded verbatim: the value under
    // "audit" is exactly the standalone `costar-cert-v1` document, so
    // `costar audit --format=json` output and the cached form stay
    // byte-identical.
    out.push_str(",\"audit\":");
    out.push_str(&audit::to_cert_json(g, &a.audit));

    // Likewise the cost certificate: the value under "cost" is exactly
    // the standalone `costar-cost-v1` document `costar cost --json`
    // emits.
    out.push_str(",\"cost\":");
    out.push_str(&cost::to_cost_json(g, &a.cost));

    out.push('}');
    out
}

fn push_decision(out: &mut String, d: &DecisionInfo) {
    let _ = write!(
        out,
        "{{\"class\":\"{}\",\"alts\":{},\"gs\":{},\"la\":",
        d.class.as_str(),
        d.alternatives,
        d.graph_states,
    );
    match &d.lookahead {
        None => out.push_str("null"),
        Some(map) => {
            out.push_str("{\"by\":");
            push_opt_index_array(
                out,
                map.terminal_entries().iter().map(|e| e.map(|p| p.index())),
            );
            out.push_str(",\"eof\":");
            push_opt_index(out, map.for_eof().map(|p| p.index()));
            out.push('}');
        }
    }
    out.push_str(",\"conflicts\":[");
    for (i, c) in d.conflicts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"a\":{},\"b\":{},\"t\":", c.a.index(), c.b.index());
        push_opt_index(out, c.lookahead.map(|t| t.index()));
        out.push_str(",\"dp\":");
        push_opt_word(out, c.distinguishing_prefix.as_deref());
        out.push_str(",\"aw\":");
        push_opt_word(out, c.ambiguous_word.as_deref());
        out.push('}');
    }
    out.push_str("]}");
}

fn push_index_array(out: &mut String, items: impl Iterator<Item = usize>) {
    out.push('[');
    for (i, n) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{n}");
    }
    out.push(']');
}

fn push_opt_index(out: &mut String, v: Option<usize>) {
    match v {
        None => out.push_str("null"),
        Some(n) => {
            let _ = write!(out, "{n}");
        }
    }
}

fn push_opt_index_array(out: &mut String, items: impl Iterator<Item = Option<usize>>) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_opt_index(out, v);
    }
    out.push(']');
}

fn push_bool_array(out: &mut String, items: impl Iterator<Item = bool>) {
    out.push('[');
    for (i, b) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(if b { "true" } else { "false" });
    }
    out.push(']');
}

fn push_opt_word(out: &mut String, w: Option<&[Terminal]>) {
    match w {
        None => out.push_str("null"),
        Some(ts) => push_index_array(out, ts.iter().map(|t| t.index())),
    }
}

// ---------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------

/// Rebuilds a [`GrammarAnalysis`] from a cache document, validating it
/// against the live grammar `g`. Any mismatch — schema, fingerprint,
/// dimensions, out-of-bounds index, malformed JSON — returns `None`; the
/// caller then recomputes from scratch.
pub fn from_cache_json(g: &Grammar, text: &str) -> Option<GrammarAnalysis> {
    let v = parse_json(text)?;
    if v.get("schema")?.as_str()? != CACHE_SCHEMA {
        return None;
    }
    let want_fp = format!("{:016x}", grammar_fingerprint(g));
    if v.get("fingerprint")?.as_str()? != want_fp {
        return None;
    }
    let nts = g.num_nonterminals();
    let ts = g.num_terminals();
    let prods = g.num_productions();
    if v.get("nts")?.as_usize()? != nts
        || v.get("ts")?.as_usize()? != ts
        || v.get("prods")?.as_usize()? != prods
    {
        return None;
    }

    let nullable = NullableSet::from_parts(read_nt_set(v.get("nullable")?, nts)?);
    let first = FirstSets::from_parts(read_term_set_vec(v.get("first")?, nts, ts)?);

    let fo = v.get("follow")?;
    let follow = FollowSets::from_parts(
        read_term_set_vec(fo.get("sets")?, nts, ts)?,
        read_bool_vec(fo.get("eof")?, nts)?,
    );

    let lr = v.get("left_recursion")?;
    let lr_edges_json = lr.get("edges")?.as_arr()?;
    if lr_edges_json.len() != nts {
        return None;
    }
    let mut edges = Vec::with_capacity(nts);
    for row in lr_edges_json {
        edges.push(read_index_vec(row, nts)?);
    }
    let left_recursion = LeftRecursion::from_parts(read_nt_set(lr.get("set")?, nts)?, edges);

    let re = v.get("reachability")?;
    let reachability = Reachability::from_parts(
        read_nt_set(re.get("set")?, nts)?,
        read_opt_index_vec(re.get("parent")?, nts, nts)?
            .into_iter()
            .map(|o| o.map(NonTerminal::from_index))
            .collect(),
    );

    let pr = v.get("productivity")?;
    let productivity = Productivity::from_parts(
        read_nt_set(pr.get("set")?, nts)?,
        read_opt_index_vec(pr.get("witness")?, nts, prods)?
            .into_iter()
            .map(|o| o.map(ProdId::from_index))
            .collect(),
    );

    let sf_rows = v.get("stable_frames")?.as_arr()?;
    if sf_rows.len() != nts {
        return None;
    }
    let mut dests = Vec::with_capacity(nts);
    for row in sf_rows {
        let mut positions = Vec::new();
        for p in row.get("pos")?.as_arr()? {
            let pair = p.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let prod = pair.first()?.as_usize()?;
            let dot = pair.get(1)?.as_usize()?;
            if prod >= prods || dot > g.production(ProdId::from_index(prod)).rhs().len() {
                return None;
            }
            positions.push(Position {
                production: ProdId::from_index(prod),
                dot: u32::try_from(dot).ok()?,
            });
        }
        dests.push(StableDests {
            positions,
            can_end: row.get("end")?.as_bool()?,
        });
    }
    let stable_frames = StableFrames::from_parts(dests);

    let dec_rows = v.get("decisions")?.as_arr()?;
    if dec_rows.len() != nts {
        return None;
    }
    let mut by_nt = Vec::with_capacity(nts);
    for (i, row) in dec_rows.iter().enumerate() {
        if row.is_null() {
            by_nt.push(None);
        } else {
            by_nt.push(Some(read_decision(
                row,
                NonTerminal::from_index(i),
                ts,
                prods,
            )?));
        }
    }
    let decisions = DecisionTable::from_parts(by_nt);

    let sy = v.get("sync")?;
    let sync = SyncSets::from_parts(
        read_term_set_vec(sy.get("sets")?, nts, ts)?,
        read_bool_vec(sy.get("eof")?, nts)?,
    );

    // The embedded certificate is never trusted structurally alone: its
    // witnesses are replayed against the live grammar (a few closure
    // steps per decision pair), so a tampered bound or stale verdict
    // costs a recompute instead of shipping a wrong certificate.
    let audit_table = audit::cert_from_json(g, v.get("audit")?)?;
    if !audit::replay(g, &stable_frames, &productivity, &audit_table) {
        return None;
    }

    // The cost certificate gets the same treatment, and its replay is
    // total: the model is cheap to derive, so the validator recomputes it
    // from the live analyses (plus the just-replayed audit table) and
    // demands equality. A deflated `a`/`b` never reaches a budget.
    let cost_model = cost::cost_from_json(g, v.get("cost")?)?;
    if !cost::replay(g, &nullable, &left_recursion, &audit_table, &cost_model) {
        return None;
    }

    Some(GrammarAnalysis {
        nullable,
        first,
        follow,
        left_recursion,
        reachability,
        productivity,
        stable_frames,
        decisions,
        sync,
        audit: audit_table,
        cost: cost_model,
    })
}

fn read_decision(row: &JsonValue, x: NonTerminal, ts: usize, prods: usize) -> Option<DecisionInfo> {
    let class = match row.get("class")?.as_str()? {
        "ll1" => DecisionClass::Ll1,
        "sll-safe" => DecisionClass::SllSafe,
        "needs-full-allstar" => DecisionClass::NeedsFullAllStar,
        _ => return None,
    };
    let la = row.get("la")?;
    let lookahead = if la.is_null() {
        None
    } else {
        let by = read_opt_index_vec(la.get("by")?, ts, prods)?
            .into_iter()
            .map(|o| o.map(ProdId::from_index))
            .collect();
        let eof = la.get("eof")?;
        let eof = if eof.is_null() {
            None
        } else {
            let p = eof.as_usize()?;
            if p >= prods {
                return None;
            }
            Some(ProdId::from_index(p))
        };
        Some(LookaheadMap::from_parts(by, eof))
    };
    // The lookahead map exists exactly for LL(1) decisions; anything else
    // is a corrupt file.
    if lookahead.is_some() != (class == DecisionClass::Ll1) {
        return None;
    }
    let mut conflicts = Vec::new();
    for c in row.get("conflicts")?.as_arr()? {
        let a = c.get("a")?.as_usize()?;
        let b = c.get("b")?.as_usize()?;
        if a >= prods || b >= prods {
            return None;
        }
        let t = c.get("t")?;
        let lookahead_t = if t.is_null() {
            None
        } else {
            let ti = t.as_usize()?;
            if ti >= ts {
                return None;
            }
            Some(Terminal::from_index(ti))
        };
        conflicts.push(ConflictPair {
            a: ProdId::from_index(a),
            b: ProdId::from_index(b),
            lookahead: lookahead_t,
            distinguishing_prefix: read_opt_word(c.get("dp")?, ts)?,
            ambiguous_word: read_opt_word(c.get("aw")?, ts)?,
        });
    }
    Some(DecisionInfo {
        nonterminal: x,
        class,
        alternatives: row.get("alts")?.as_usize()?,
        lookahead,
        conflicts,
        graph_states: row.get("gs")?.as_usize()?,
    })
}

/// `Some(Some(word))` for an array, `Some(None)` for `null`, `None` on
/// any malformed or out-of-bounds entry.
fn read_opt_word(v: &JsonValue, ts: usize) -> Option<Option<Vec<Terminal>>> {
    if v.is_null() {
        return Some(None);
    }
    let mut word = Vec::new();
    for it in v.as_arr()? {
        let i = it.as_usize()?;
        if i >= ts {
            return None;
        }
        word.push(Terminal::from_index(i));
    }
    Some(Some(word))
}

fn read_index_vec(v: &JsonValue, bound: usize) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    for it in v.as_arr()? {
        let i = it.as_usize()?;
        if i >= bound {
            return None;
        }
        out.push(i);
    }
    Some(out)
}

fn read_nt_set(v: &JsonValue, nts: usize) -> Option<NtSet> {
    let mut s = NtSet::with_capacity(nts);
    for i in read_index_vec(v, nts)? {
        s.insert(NonTerminal::from_index(i));
    }
    Some(s)
}

fn read_term_set(v: &JsonValue, ts: usize) -> Option<TermSet> {
    let mut s = TermSet::with_capacity(ts);
    for i in read_index_vec(v, ts)? {
        s.insert(Terminal::from_index(i));
    }
    Some(s)
}

fn read_term_set_vec(v: &JsonValue, nts: usize, ts: usize) -> Option<Vec<TermSet>> {
    let rows = v.as_arr()?;
    if rows.len() != nts {
        return None;
    }
    rows.iter().map(|r| read_term_set(r, ts)).collect()
}

fn read_bool_vec(v: &JsonValue, n: usize) -> Option<Vec<bool>> {
    let items = v.as_arr()?;
    if items.len() != n {
        return None;
    }
    items.iter().map(JsonValue::as_bool).collect()
}

/// Fixed-length array of `num | null`, each number `< bound`.
fn read_opt_index_vec(v: &JsonValue, len: usize, bound: usize) -> Option<Vec<Option<usize>>> {
    let items = v.as_arr()?;
    if items.len() != len {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for it in items {
        if it.is_null() {
            out.push(None);
        } else {
            let i = it.as_usize()?;
            if i >= bound {
                return None;
            }
            out.push(Some(i));
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Atomic file writes
// ---------------------------------------------------------------------

/// Atomically publishes `contents` at `path` via temp-file + rename,
/// creating the parent directory if needed.
///
/// The staging name is `<file>.<pid>.<seq>.tmp` — unique per process
/// (pid) and per call within a process (a process-local counter), so
/// concurrent writers never share a staging file: each write is staged
/// privately and published by a single whole-file rename. Readers (and
/// competing writers) therefore only ever observe complete documents;
/// when several writers race, the last rename wins, which is fine for a
/// cache whose entries are pure functions of their key. On error the
/// staging file is removed; `path` is never left half-written.
pub fn write_cache_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let Some(name) = path.file_name() else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "cache path has no file name",
        ));
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp_name = name.to_os_string();
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);
    let result = std::fs::write(&tmp, contents).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    /// Deep-equality proxy: the serializer is deterministic, so two
    /// analyses are equal iff they serialize identically.
    fn canon(g: &Grammar, a: &GrammarAnalysis) -> String {
        to_cache_json(g, a)
    }

    #[test]
    fn roundtrip_is_identity() {
        for build in [
            fig2,
            || {
                // Nullable + ambiguous + LL(1) mix.
                let mut gb = GrammarBuilder::new();
                gb.rule("S", &["A", "x"]);
                gb.rule("S", &["B"]);
                gb.rule("A", &[]);
                gb.rule("A", &["a", "A"]);
                gb.rule("B", &["a"]);
                gb.start("S").build().unwrap()
            },
            || {
                // Left-recursive (analysis still computes everything).
                let mut gb = GrammarBuilder::new();
                gb.rule("E", &["E", "p", "n"]);
                gb.rule("E", &["n"]);
                gb.start("E").build().unwrap()
            },
        ] {
            let g = build();
            let a = GrammarAnalysis::compute(&g);
            let json = to_cache_json(&g, &a);
            let back = from_cache_json(&g, &json).expect("roundtrip");
            assert_eq!(canon(&g, &a), canon(&g, &back));
        }
    }

    #[test]
    fn fingerprint_tracks_grammar_content() {
        let g1 = fig2();
        let g2 = fig2();
        assert_eq!(grammar_fingerprint(&g1), grammar_fingerprint(&g2));
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["e"]); // one terminal differs
        let g3 = gb.start("S").build().unwrap();
        assert_ne!(grammar_fingerprint(&g1), grammar_fingerprint(&g3));
    }

    #[test]
    fn stale_cache_for_other_grammar_is_rejected() {
        let g1 = fig2();
        let a1 = GrammarAnalysis::compute(&g1);
        let json = to_cache_json(&g1, &a1);
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["e"]);
        let g2 = gb.start("S").build().unwrap();
        assert!(from_cache_json(&g2, &json).is_none());
    }

    #[test]
    fn corrupted_documents_are_rejected_not_trusted() {
        let g = fig2();
        let a = GrammarAnalysis::compute(&g);
        let json = to_cache_json(&g, &a);
        // Sanity: the pristine document loads.
        assert!(from_cache_json(&g, &json).is_some());
        // Truncations at every eighth byte.
        for cut in (0..json.len()).step_by(8) {
            assert!(from_cache_json(&g, &json[..cut]).is_none(), "cut={cut}");
        }
        // Wrong schema.
        let bad = json.replace(CACHE_SCHEMA, "costar-gcache-v0");
        assert!(from_cache_json(&g, &bad).is_none());
        // Tampered fingerprint.
        let fp = format!("{:016x}", grammar_fingerprint(&g));
        let bad = json.replace(&fp, &format!("{:016x}", !grammar_fingerprint(&g)));
        assert!(from_cache_json(&g, &bad).is_none());
        // Out-of-bounds index smuggled into the nullable set.
        let bad = json.replace("\"nullable\":[", "\"nullable\":[999,");
        assert!(from_cache_json(&g, &bad).is_none());
        // Not JSON at all.
        assert!(from_cache_json(&g, "not json {").is_none());
        assert!(from_cache_json(&g, "").is_none());
    }

    #[test]
    fn truncated_cache_files_fail_validation_silently() {
        // Regression guard for caches written before the atomic-rename
        // path existed: a process killed mid-write leaves a prefix of
        // the document. Every such prefix must be rejected (None, no
        // panic), so callers silently fall back to recompute.
        let g = fig2();
        let a = GrammarAnalysis::compute(&g);
        let json = to_cache_json(&g, &a);
        for cut in 0..json.len().min(64) {
            assert!(from_cache_json(&g, &json[..cut]).is_none(), "cut={cut}");
        }
        for cut in (0..json.len()).step_by(7) {
            assert!(from_cache_json(&g, &json[..cut]).is_none(), "cut={cut}");
        }
        // Truncating from the back of a valid document also kills the
        // embedded certificate, which sits last.
        assert!(from_cache_json(&g, &json[..json.len() - 1]).is_none());
    }

    #[test]
    fn corrupted_certificate_triggers_recompute() {
        let g = fig2();
        let a = GrammarAnalysis::compute(&g);
        let json = to_cache_json(&g, &a);
        assert!(json.contains("\"audit\":{\"schema\":\"costar-cert-v1\""));
        assert!(from_cache_json(&g, &json).is_some());
        // Structurally broken: out-of-bounds terminal in a witness.
        let bad = json.replace("\"collide\":[", "\"collide\":[999,");
        assert!(from_cache_json(&g, &bad).is_none());
        // Structurally valid but semantically wrong: an inflated bound
        // whose collide witness no longer matches — caught by replay,
        // not by the schema checks.
        let bad = json.replace("\"k\":1", "\"k\":2");
        assert_ne!(bad, json, "fig2 must certify a k=1 decision");
        assert!(from_cache_json(&g, &bad).is_none());
        // Wrong certificate schema tag.
        let bad = json.replace("costar-cert-v1", "costar-cert-v0");
        assert!(from_cache_json(&g, &bad).is_none());
        // Certificate stripped entirely.
        let bad = json.replace("\"audit\":", "\"audited\":");
        assert!(from_cache_json(&g, &bad).is_none());
    }

    #[test]
    fn corrupted_cost_certificate_triggers_recompute() {
        let g = fig2();
        let a = GrammarAnalysis::compute(&g);
        let json = to_cache_json(&g, &a);
        assert!(json.contains("\"cost\":{\"schema\":\"costar-cost-v1\""));
        assert!(from_cache_json(&g, &json).is_some());
        // Structurally valid but semantically deflated constants: a
        // shrunken push bound would under-budget `--max-steps auto`.
        // Caught by the total replay (recompute + equality), not by the
        // schema checks.
        let want = format!("\"pushes_per_epoch\":{}", a.cost.pushes_per_epoch);
        let bad = json.replace(&want, "\"pushes_per_epoch\":1");
        assert_ne!(bad, json, "fig2 cost model must be present");
        assert!(from_cache_json(&g, &bad).is_none());
        // Wrong cost schema tag.
        let bad = json.replace("costar-cost-v1", "costar-cost-v0");
        assert!(from_cache_json(&g, &bad).is_none());
        // Cost certificate stripped entirely.
        let bad = json.replace("\"cost\":", "\"costed\":");
        assert!(from_cache_json(&g, &bad).is_none());
        // A non-numeric bound constant fails the structural parse.
        let want = format!("\"b\":{}", a.cost.b);
        let bad = json.replace(&want, "\"b\":null");
        assert!(from_cache_json(&g, &bad).is_none());
    }

    #[test]
    fn decoded_analysis_is_usable() {
        let g = fig2();
        let a = GrammarAnalysis::compute(&g);
        let back = from_cache_json(&g, &to_cache_json(&g, &a)).unwrap();
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        let ta = g.symbols().lookup_terminal("a").unwrap();
        assert_eq!(back.nullable.contains(a_nt), a.nullable.contains(a_nt));
        assert!(back.first.first(a_nt).contains(ta));
        assert_eq!(
            back.decisions.decision(a_nt).map(|d| d.class),
            a.decisions.decision(a_nt).map(|d| d.class)
        );
        assert!(back.sync.is_sync_token(a_nt, ta));
        assert_eq!(back.stable_frames.dests(a_nt), a.stable_frames.dests(a_nt));
    }

    #[test]
    fn atomic_write_round_trips_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!(
            "costar-gcache-test-{}-roundtrip",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("entry.json");
        let g = fig2();
        let json = to_cache_json(&g, &GrammarAnalysis::compute(&g));
        write_cache_atomic(&path, &json).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        // Overwrite publishes the new document.
        write_cache_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // No staging litter.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging files left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_never_publish_a_torn_document() {
        // The regression this guards: with a writer-shared staging name
        // (`<file>.tmp`), writer A could rename B's half-written staging
        // file into place, publishing a torn document. With per-writer
        // staging names, every observed state of the published file must
        // be the complete document of exactly one writer.
        let dir = std::env::temp_dir().join(format!(
            "costar-gcache-test-{}-concurrent",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.json");
        const WRITERS: usize = 8;
        const ROUNDS: usize = 50;
        // Each writer's document is big enough that a torn write is
        // detectable, and self-describing: "<id>|<payload>".
        let doc = |w: usize| format!("{w}|{}", "x".repeat(4096 + w));
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let path = &path;
                let doc = doc(w);
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        write_cache_atomic(path, &doc).unwrap();
                    }
                });
            }
            // A concurrent reader: every observed state must be some
            // writer's complete document.
            let path = &path;
            s.spawn(move || {
                for _ in 0..200 {
                    if let Ok(text) = std::fs::read_to_string(path) {
                        let id: usize = text
                            .split('|')
                            .next()
                            .and_then(|p| p.parse().ok())
                            .unwrap_or_else(|| panic!("torn document: {:.60}...", text));
                        assert_eq!(text, doc(id), "torn or mixed document observed");
                    }
                    std::thread::yield_now();
                }
            });
        });
        // Final state is one writer's complete document and no staging
        // files survive.
        let final_text = std::fs::read_to_string(&path).unwrap();
        let id: usize = final_text.split('|').next().unwrap().parse().unwrap();
        assert_eq!(final_text, doc(id));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "staging files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
