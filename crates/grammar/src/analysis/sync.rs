//! Synchronization sets for panic-mode error recovery.
//!
//! When the recovering parser hits a token that no continuation of the
//! current parse predicts, it discards input until it reaches a token the
//! grammar could plausibly resume at. The classic choice of "plausible"
//! is per-nonterminal: a token in FIRST(X) may restart X itself, and a
//! token in FOLLOW(X) may let the parser give X up and continue after it.
//! [`SyncSets`] precomputes FIRST(X) ∪ FOLLOW(X) (plus an EOF flag) for
//! every nonterminal so the recovery skip loop is a bitset probe, in the
//! same spirit as the precompiled [`crate::analysis::DecisionTable`].

use crate::analysis::first_follow::{FirstSets, FollowSets};
use crate::grammar::Grammar;
use crate::sets::TermSet;
use crate::symbol::NonTerminal;

/// Per-nonterminal recovery synchronization sets.
///
/// # Examples
///
/// ```
/// use costar_grammar::{analysis::GrammarAnalysis, GrammarBuilder};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["A", "d"]);
/// gb.rule("A", &["a"]);
/// let g = gb.start("S").build()?;
/// let an = GrammarAnalysis::compute(&g);
/// let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
/// let a = g.symbols().lookup_terminal("a").unwrap();
/// let d = g.symbols().lookup_terminal("d").unwrap();
/// assert!(an.sync.is_sync_token(a_nt, a)); // FIRST(A)
/// assert!(an.sync.is_sync_token(a_nt, d)); // FOLLOW(A)
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SyncSets {
    /// For each nonterminal (by index): FIRST(X) ∪ FOLLOW(X).
    sync: Vec<TermSet>,
    /// For each nonterminal: can end-of-input follow it? (EOF is always a
    /// sync point — skipping past it is impossible — but the flag lets
    /// diagnostics report whether stopping at EOF was *expected*.)
    eof: Vec<bool>,
}

impl SyncSets {
    /// Computes sync sets from already-computed FIRST/FOLLOW analyses.
    pub fn compute(g: &Grammar, first: &FirstSets, follow: &FollowSets) -> Self {
        let n = g.num_nonterminals();
        let mut sync = Vec::with_capacity(n);
        let mut eof = Vec::with_capacity(n);
        for i in 0..n {
            let x = NonTerminal::from_index(i);
            let mut s = first.first(x).clone();
            s.union_with(follow.follow(x));
            sync.push(s);
            eof.push(follow.eof_follows(x));
        }
        SyncSets { sync, eof }
    }

    /// Rebuilds sync sets from raw parts (grammar-cache deserialization).
    /// Callers are responsible for dimension checks.
    pub(crate) fn from_parts(sync: Vec<TermSet>, eof: Vec<bool>) -> Self {
        SyncSets { sync, eof }
    }

    /// The sync set of nonterminal `x`: FIRST(x) ∪ FOLLOW(x).
    pub fn sync(&self, x: NonTerminal) -> &TermSet {
        &self.sync[x.index()]
    }

    /// Can end-of-input legitimately end a recovery for `x`?
    pub fn eof_syncs(&self, x: NonTerminal) -> bool {
        self.eof[x.index()]
    }

    /// Is `t` a synchronization token for `x`?
    pub fn is_sync_token(&self, x: NonTerminal, t: crate::symbol::Terminal) -> bool {
        self.sync[x.index()].contains(t)
    }

    /// Number of nonterminals covered (for cache validation).
    pub fn len(&self) -> usize {
        self.sync.len()
    }

    /// `true` when the grammar has no nonterminals.
    pub fn is_empty(&self) -> bool {
        self.sync.is_empty()
    }

    /// Iterates `(sync set, eof flag)` pairs in nonterminal index order
    /// (grammar-cache serialization).
    pub fn iter(&self) -> impl Iterator<Item = (&TermSet, bool)> {
        self.sync.iter().zip(self.eof.iter().copied())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::analysis::nullable::NullableSet;
    use crate::grammar::GrammarBuilder;

    fn setup() -> (Grammar, SyncSets) {
        // e -> t e2 ; e2 -> Plus t e2 | ε ; t -> Int | LParen e RParen
        let mut gb = GrammarBuilder::new();
        gb.rule("e", &["t", "e2"]);
        gb.rule("e2", &["Plus", "t", "e2"]);
        gb.rule("e2", &[]);
        gb.rule("t", &["Int"]);
        gb.rule("t", &["LParen", "e", "RParen"]);
        let g = gb.start("e").build().unwrap();
        let n = NullableSet::compute(&g);
        let f = FirstSets::compute(&g, &n);
        let fo = FollowSets::compute(&g, &n, &f);
        let s = SyncSets::compute(&g, &f, &fo);
        (g, s)
    }

    #[test]
    fn sync_is_first_union_follow() {
        let (g, s) = setup();
        let t_nt = g.symbols().lookup_nonterminal("t").unwrap();
        let term = |n: &str| g.symbols().lookup_terminal(n).unwrap();
        // FIRST(t) = {Int, LParen}; FOLLOW(t) = {Plus, RParen}.
        for name in ["Int", "LParen", "Plus", "RParen"] {
            assert!(s.is_sync_token(t_nt, term(name)), "{name}");
        }
        assert!(s.eof_syncs(t_nt));
        let e2 = g.symbols().lookup_nonterminal("e2").unwrap();
        // Star is not in the grammar's alphabet for e2's sync set.
        assert!(!s.is_sync_token(e2, term("Int")));
        assert!(s.is_sync_token(e2, term("Plus")));
        assert!(s.is_sync_token(e2, term("RParen")));
    }

    #[test]
    fn covers_every_nonterminal() {
        let (g, s) = setup();
        assert_eq!(s.len(), g.num_nonterminals());
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), g.num_nonterminals());
    }
}
