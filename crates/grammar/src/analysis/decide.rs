//! Static decision-point analysis: classify every prediction decision at
//! grammar-compile time.
//!
//! CoStar resolves each multi-alternative decision at parse time by SLL
//! subparser simulation with LL failover (paper §4) — even when the
//! grammar makes the decision trivially resolvable with one token of
//! lookahead. This module precomputes, per decision nonterminal, how much
//! of that machinery is actually needed:
//!
//! * [`DecisionClass::Ll1`] — the alternatives' LL(1) select sets are
//!   pairwise disjoint, so a single lookahead terminal (or end of input)
//!   picks the production. The parse-time engine dispatches these through
//!   the precompiled [`LookaheadMap`] and skips simulation and cache
//!   traffic entirely.
//! * [`DecisionClass::SllSafe`] — not LL(1), but exploring the static SLL
//!   closure graph (see `sll_graph`) proves SLL simulation can never
//!   report a conflict, so the LL failover path is provably dead weight.
//! * [`DecisionClass::NeedsFullAllStar`] — neither property could be
//!   established (including when exploration hit its caps); the complete
//!   adaptive machinery stays in place.
//!
//! For every conflicting pair of alternatives the table also records a
//! shortest distinguishing-prefix witness (under the SLL abstraction)
//! and, when a bounded search finds one, a common derivable word — exact
//! proof that the pair is ambiguous, surfaced as lint L007.
//!
//! ## Fast-path soundness
//!
//! Committing to the [`LookaheadMap`] entry at an `Ll1` decision agrees
//! with full prediction on outcome and tree: any alternative that
//! survives full prediction on lookahead `t` is selected by `t` (its
//! closure either starts with `t` or derives ε into a context whose
//! FOLLOW contains `t`), and select sets are disjoint, so full prediction
//! can only return the map's entry or reject — and an ambiguity verdict
//! would require two alternatives deriving a common word, which forces a
//! select-set overlap. A map miss means no alternative is viable, which
//! full prediction also rejects. This is checked dynamically by the
//! verify crate's `H-DECIDE-SOUND` harness.

use crate::analysis::first_follow::{ll1_selects, FirstSets, FollowSets};
use crate::analysis::nullable::NullableSet;
use crate::analysis::sll_graph::{self, GraphOutcome};
use crate::analysis::stable_frames::StableFrames;
use crate::grammar::{Grammar, ProdId};
use crate::lint::json_string;
use crate::symbol::{NonTerminal, Symbol, Terminal};
use std::collections::{BTreeSet, VecDeque};

/// How much parse-time prediction machinery a decision point needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionClass {
    /// One lookahead terminal selects the production; dispatch through
    /// the precompiled [`LookaheadMap`].
    Ll1,
    /// SLL simulation provably cannot conflict; LL failover is dead
    /// weight for this decision.
    SllSafe,
    /// Keep the complete adaptive (SLL + LL failover) machinery.
    NeedsFullAllStar,
}

impl DecisionClass {
    /// Stable lower-case name, used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionClass::Ll1 => "ll1",
            DecisionClass::SllSafe => "sll-safe",
            DecisionClass::NeedsFullAllStar => "needs-full-allstar",
        }
    }
}

/// Precompiled lookahead dispatch for an [`DecisionClass::Ll1`] decision:
/// maps the next terminal (or end of input) directly to the unique
/// alternative it selects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookaheadMap {
    /// Indexed by terminal index; `None` means no alternative is viable
    /// on that lookahead.
    by_terminal: Vec<Option<ProdId>>,
    /// The unique nullable alternative, selected at end of input.
    eof: Option<ProdId>,
}

impl LookaheadMap {
    /// The alternative selected by lookahead terminal `t`, if any.
    pub fn for_terminal(&self, t: Terminal) -> Option<ProdId> {
        self.by_terminal.get(t.index()).copied().flatten()
    }

    /// The alternative selected at end of input, if any.
    pub fn for_eof(&self) -> Option<ProdId> {
        self.eof
    }

    /// Number of populated entries (terminal entries plus the EOF entry).
    pub fn entries(&self) -> usize {
        self.by_terminal.iter().flatten().count() + usize::from(self.eof.is_some())
    }

    /// The raw per-terminal table (grammar-cache serialization).
    pub(crate) fn terminal_entries(&self) -> &[Option<ProdId>] {
        &self.by_terminal
    }

    /// Rebuilds from raw parts (grammar-cache deserialization).
    pub(crate) fn from_parts(by_terminal: Vec<Option<ProdId>>, eof: Option<ProdId>) -> Self {
        LookaheadMap { by_terminal, eof }
    }
}

/// A pair of alternatives whose LL(1) select sets overlap, with the
/// witnesses the static analysis could extract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictPair {
    /// First alternative of the pair (lower production id).
    pub a: ProdId,
    /// Second alternative of the pair.
    pub b: ProdId,
    /// A terminal selecting both alternatives, or `None` when they
    /// conflict on end-of-input alone (both nullable).
    pub lookahead: Option<Terminal>,
    /// Shortest terminal word (under the SLL abstraction, BFS order)
    /// after which at most one of the two alternatives survives; `None`
    /// when exploration hit its caps before resolving.
    pub distinguishing_prefix: Option<Vec<Terminal>>,
    /// A word derivable from both alternatives — exact proof the pair is
    /// ambiguous (lint L007). May be empty (two nullable alternatives
    /// both derive ε). `None` when the bounded search found none.
    pub ambiguous_word: Option<Vec<Terminal>>,
}

/// Everything the analysis established about one decision nonterminal
/// (a nonterminal with at least two alternatives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionInfo {
    /// The decision nonterminal.
    pub nonterminal: NonTerminal,
    /// Its classification.
    pub class: DecisionClass,
    /// Number of alternatives.
    pub alternatives: usize,
    /// The precompiled dispatch map; `Some` exactly when `class` is
    /// [`DecisionClass::Ll1`].
    pub lookahead: Option<LookaheadMap>,
    /// All pairwise LL(1) conflicts, in (a, b) production-id order.
    pub conflicts: Vec<ConflictPair>,
    /// Subset states explored in the SLL closure graph (0 for `Ll1`
    /// decisions, which skip graph exploration).
    pub graph_states: usize,
}

/// Aggregate table statistics, reported by `costar analyze` and the
/// bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecisionStats {
    /// Number of decision points (multi-alternative nonterminals).
    pub decision_points: usize,
    /// Decisions classified [`DecisionClass::Ll1`].
    pub ll1: usize,
    /// Decisions classified [`DecisionClass::SllSafe`].
    pub sll_safe: usize,
    /// Decisions classified [`DecisionClass::NeedsFullAllStar`].
    pub needs_full: usize,
    /// Decisions with at least one proven-ambiguous pair (lint L007).
    pub ambiguous: usize,
    /// Total populated lookahead-map entries across all `Ll1` decisions.
    pub lookahead_entries: usize,
}

/// The serializable per-grammar decision table: one [`DecisionInfo`] per
/// multi-alternative nonterminal, indexed by nonterminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTable {
    by_nt: Vec<Option<DecisionInfo>>,
}

impl DecisionTable {
    /// Classifies every decision point of `g`. The inputs are the
    /// analyses the classification is built from; callers normally reach
    /// this through `GrammarAnalysis::compute`.
    pub fn compute(
        g: &Grammar,
        nullable: &NullableSet,
        first: &FirstSets,
        follow: &FollowSets,
        stable_frames: &StableFrames,
    ) -> Self {
        let by_nt = g
            .symbols()
            .nonterminals()
            .map(|x| classify(g, nullable, first, follow, stable_frames, x))
            .collect();
        DecisionTable { by_nt }
    }

    /// The decision info for `x`, or `None` when `x` has fewer than two
    /// alternatives (no decision to make).
    pub fn decision(&self, x: NonTerminal) -> Option<&DecisionInfo> {
        self.by_nt.get(x.index()).and_then(|d| d.as_ref())
    }

    /// The precompiled lookahead map for `x`: `Some` exactly when `x` is
    /// a decision point classified [`DecisionClass::Ll1`].
    pub fn ll1_map(&self, x: NonTerminal) -> Option<&LookaheadMap> {
        self.decision(x).and_then(|d| d.lookahead.as_ref())
    }

    /// All decision points, in nonterminal-index order.
    pub fn iter(&self) -> impl Iterator<Item = &DecisionInfo> {
        self.by_nt.iter().flatten()
    }

    /// The raw per-nonterminal rows (grammar-cache serialization).
    pub(crate) fn rows(&self) -> &[Option<DecisionInfo>] {
        &self.by_nt
    }

    /// Rebuilds from raw rows (grammar-cache deserialization).
    pub(crate) fn from_parts(by_nt: Vec<Option<DecisionInfo>>) -> Self {
        DecisionTable { by_nt }
    }

    /// Aggregate statistics over the table.
    pub fn stats(&self) -> DecisionStats {
        let mut s = DecisionStats::default();
        for d in self.iter() {
            s.decision_points += 1;
            match d.class {
                DecisionClass::Ll1 => s.ll1 += 1,
                DecisionClass::SllSafe => s.sll_safe += 1,
                DecisionClass::NeedsFullAllStar => s.needs_full += 1,
            }
            if d.conflicts.iter().any(|c| c.ambiguous_word.is_some()) {
                s.ambiguous += 1;
            }
            if let Some(map) = &d.lookahead {
                s.lookahead_entries += map.entries();
            }
        }
        s
    }

    /// Renders the table as a deterministic JSON object (the body of the
    /// `costar analyze --format=json` report).
    pub fn to_json(&self, g: &Grammar) -> String {
        let stats = self.stats();
        let mut out = String::new();
        out.push_str("{\"schema\":\"costar-analyze-v1\",\"stats\":{");
        out.push_str(&format!(
            "\"decision_points\":{},\"ll1\":{},\"sll_safe\":{},\"needs_full_allstar\":{},\"ambiguous\":{},\"lookahead_entries\":{}",
            stats.decision_points,
            stats.ll1,
            stats.sll_safe,
            stats.needs_full,
            stats.ambiguous,
            stats.lookahead_entries,
        ));
        out.push_str("},\"decisions\":[");
        let mut first_row = true;
        for d in self.iter() {
            if !first_row {
                out.push(',');
            }
            first_row = false;
            let name = g.symbols().nonterminal_name(d.nonterminal);
            out.push_str(&format!(
                "{{\"nonterminal\":{},\"class\":{},\"alternatives\":{},\"graph_states\":{},\"lookahead_entries\":{},\"conflicts\":[",
                json_string(name),
                json_string(d.class.as_str()),
                d.alternatives,
                d.graph_states,
                d.lookahead.as_ref().map_or(0, LookaheadMap::entries),
            ));
            let mut first_conflict = true;
            for c in &d.conflicts {
                if !first_conflict {
                    out.push(',');
                }
                first_conflict = false;
                out.push_str(&format!(
                    "{{\"a\":{},\"b\":{},\"lookahead\":{},\"distinguishing_prefix\":{},\"ambiguous_word\":{}}}",
                    json_string(&g.render_production(c.a)),
                    json_string(&g.render_production(c.b)),
                    match c.lookahead {
                        Some(t) => json_string(g.symbols().terminal_name(t)),
                        None => "null".to_string(),
                    },
                    json_word(g, c.distinguishing_prefix.as_deref()),
                    json_word(g, c.ambiguous_word.as_deref()),
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Renders an optional terminal word as a JSON array of names, or `null`.
fn json_word(g: &Grammar, word: Option<&[Terminal]>) -> String {
    match word {
        None => "null".to_string(),
        Some(ts) => {
            let names: Vec<String> = ts
                .iter()
                .map(|&t| json_string(g.symbols().terminal_name(t)))
                .collect();
            format!("[{}]", names.join(","))
        }
    }
}

/// A terminal selecting both `p` and `q` (or `Some(None)` when both are
/// nullable and conflict on end-of-input alone); `None` when the pair's
/// select sets are disjoint. Identical to the LL(1) condition behind lint
/// L006 — the linter now consumes this table, so the two stay one
/// definition.
fn select_conflict(
    g: &Grammar,
    nullable: &NullableSet,
    first: &FirstSets,
    follow: &FollowSets,
    p: ProdId,
    q: ProdId,
) -> Option<Option<Terminal>> {
    let lhs = g.production(p).lhs();
    let follow_lhs = follow.follow(lhs);
    let rhs_p = g.production(p).rhs();
    let rhs_q = g.production(q).rhs();
    for t in g.symbols().terminals() {
        if ll1_selects(rhs_p, t, nullable, first, follow_lhs)
            && ll1_selects(rhs_q, t, nullable, first, follow_lhs)
        {
            return Some(Some(t));
        }
    }
    if nullable.form_nullable(rhs_p) && nullable.form_nullable(rhs_q) {
        return Some(None);
    }
    None
}

/// Bounded search caps for the common-word (ambiguity) search.
const AMBIG_MAX_WORD: usize = 8;
const AMBIG_MAX_FORM: usize = 12;
const AMBIG_MAX_QUEUE: usize = 4_000;

/// Bounded BFS for a terminal word derivable from both `p`'s and `q`'s
/// right-hand sides. Finding one is exact proof the decision pair is
/// ambiguous (two distinct parse trees of the shared left-hand side);
/// exhausting the bounds proves nothing.
fn common_word(g: &Grammar, p: ProdId, q: ProdId) -> Option<Vec<Terminal>> {
    type Form = Vec<Symbol>;
    let mut queue: VecDeque<(Form, Form, Vec<Terminal>)> = VecDeque::new();
    let mut seen: BTreeSet<(Form, Form)> = BTreeSet::new();
    let start_p: Form = g.production(p).rhs().to_vec();
    let start_q: Form = g.production(q).rhs().to_vec();
    seen.insert((start_p.clone(), start_q.clone()));
    queue.push_back((start_p, start_q, Vec::new()));
    let mut processed = 0usize;

    while let Some((fp, fq, w)) = queue.pop_front() {
        processed += 1;
        if processed > AMBIG_MAX_QUEUE {
            return None;
        }
        if fp.is_empty() && fq.is_empty() {
            return Some(w);
        }
        let mut push = |fp: Form, fq: Form, w: Vec<Terminal>, queue: &mut VecDeque<_>| {
            if fp.len() > AMBIG_MAX_FORM || fq.len() > AMBIG_MAX_FORM {
                return;
            }
            if seen.insert((fp.clone(), fq.clone())) {
                queue.push_back((fp, fq, w));
            }
        };
        match (fp.first().copied(), fq.first().copied()) {
            // Expand the leftmost nonterminal (of the first form that has
            // one) so both forms eventually ground out in terminals.
            (Some(Symbol::Nt(y)), _) => {
                for &r in g.alternatives(y) {
                    let mut nf: Form = g.production(r).rhs().to_vec();
                    nf.extend_from_slice(&fp[1..]);
                    push(nf, fq.clone(), w.clone(), &mut queue);
                }
            }
            (_, Some(Symbol::Nt(y))) => {
                for &r in g.alternatives(y) {
                    let mut nf: Form = g.production(r).rhs().to_vec();
                    nf.extend_from_slice(&fq[1..]);
                    push(fp.clone(), nf, w.clone(), &mut queue);
                }
            }
            // Both forms start with a terminal: they must agree, and the
            // matched terminal extends the common word.
            (Some(Symbol::T(a)), Some(Symbol::T(b))) if a == b => {
                if w.len() >= AMBIG_MAX_WORD {
                    continue;
                }
                let mut nw = w;
                nw.push(a);
                push(fp[1..].to_vec(), fq[1..].to_vec(), nw, &mut queue);
            }
            // Terminal mismatch, or one form exhausted while the other
            // still needs a terminal: dead branch.
            _ => {}
        }
    }
    None
}

/// Classifies one nonterminal; `None` when it has fewer than two
/// alternatives.
fn classify(
    g: &Grammar,
    nullable: &NullableSet,
    first: &FirstSets,
    follow: &FollowSets,
    stable_frames: &StableFrames,
    x: NonTerminal,
) -> Option<DecisionInfo> {
    let alts = g.alternatives(x);
    if alts.len() < 2 {
        return None;
    }

    // Pairwise LL(1) select-set conflicts.
    let mut conflicts = Vec::new();
    for (i, &p) in alts.iter().enumerate() {
        for &q in &alts[i + 1..] {
            if let Some(lookahead) = select_conflict(g, nullable, first, follow, p, q) {
                let pair = sll_graph::explore(g, stable_frames, &[p, q]);
                conflicts.push(ConflictPair {
                    a: p,
                    b: q,
                    lookahead,
                    distinguishing_prefix: pair.distinguishing_prefix,
                    ambiguous_word: common_word(g, p, q),
                });
            }
        }
    }

    if conflicts.is_empty() {
        // Disjoint select sets: build the direct dispatch map.
        let mut by_terminal = vec![None; g.num_terminals()];
        let mut eof = None;
        let follow_lhs = follow.follow(x);
        for &p in alts {
            let rhs = g.production(p).rhs();
            for t in g.symbols().terminals() {
                if ll1_selects(rhs, t, nullable, first, follow_lhs) {
                    by_terminal[t.index()] = Some(p);
                }
            }
            if nullable.form_nullable(rhs) {
                eof = Some(p);
            }
        }
        let map = LookaheadMap { by_terminal, eof };
        return Some(DecisionInfo {
            nonterminal: x,
            class: DecisionClass::Ll1,
            alternatives: alts.len(),
            lookahead: Some(map),
            conflicts,
            graph_states: 0,
        });
    }

    // Not LL(1): ask the closure graph whether SLL can ever conflict.
    let report = sll_graph::explore(g, stable_frames, alts);
    let class = match report.outcome {
        GraphOutcome::ConflictFree => DecisionClass::SllSafe,
        GraphOutcome::Conflict | GraphOutcome::Bounded => DecisionClass::NeedsFullAllStar,
    };
    Some(DecisionInfo {
        nonterminal: x,
        class,
        alternatives: alts.len(),
        lookahead: None,
        conflicts,
        graph_states: report.states,
    })
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn table(build: impl FnOnce(&mut GrammarBuilder)) -> (Grammar, DecisionTable) {
        let mut gb = GrammarBuilder::new();
        build(&mut gb);
        let g = gb.build().unwrap();
        let n = NullableSet::compute(&g);
        let f = FirstSets::compute(&g, &n);
        let fo = FollowSets::compute(&g, &n, &f);
        let sf = StableFrames::compute(&g, &n);
        let t = DecisionTable::compute(&g, &n, &f, &fo, &sf);
        (g, t)
    }

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    fn fig2(gb: &mut GrammarBuilder) {
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S");
    }

    #[test]
    fn fig2_classifies_a_ll1_and_s_sll_safe() {
        let (g, t) = table(fig2);
        let a = t.decision(nt(&g, "A")).unwrap();
        assert_eq!(a.class, DecisionClass::Ll1);
        assert!(a.conflicts.is_empty());
        let map = t.ll1_map(nt(&g, "A")).unwrap();
        let ta = g.symbols().lookup_terminal("a").unwrap();
        let tb = g.symbols().lookup_terminal("b").unwrap();
        let tc = g.symbols().lookup_terminal("c").unwrap();
        assert!(map.for_terminal(ta).is_some());
        assert!(map.for_terminal(tb).is_some());
        assert_ne!(map.for_terminal(ta), map.for_terminal(tb));
        assert_eq!(map.for_terminal(tc), None);
        assert_eq!(map.for_eof(), None);

        // S is not LL(1) (shared left factor A) but SLL provably never
        // conflicts: the c/d suffix always separates the alternatives.
        let s = t.decision(nt(&g, "S")).unwrap();
        assert_eq!(s.class, DecisionClass::SllSafe);
        assert!(t.ll1_map(nt(&g, "S")).is_none());
        assert_eq!(s.conflicts.len(), 1);
        let c = &s.conflicts[0];
        assert!(c.lookahead.is_some());
        assert!(c.ambiguous_word.is_none(), "fig2 is unambiguous");
        assert!(c.distinguishing_prefix.is_some());
        assert!(s.graph_states > 0);
    }

    #[test]
    fn ambiguous_pair_gets_a_word_witness() {
        // Paper Fig. 6 shape: both alternatives derive "a".
        let (g, t) = table(|gb| {
            gb.rule("S", &["X"]);
            gb.rule("S", &["Y"]);
            gb.rule("X", &["a"]);
            gb.rule("Y", &["a"]);
            gb.start("S");
        });
        let s = t.decision(nt(&g, "S")).unwrap();
        assert_eq!(s.class, DecisionClass::NeedsFullAllStar);
        let word = s.conflicts[0].ambiguous_word.as_ref().unwrap();
        let names: Vec<_> = word.iter().map(|&t| g.symbols().terminal_name(t)).collect();
        assert_eq!(names, ["a"]);
    }

    #[test]
    fn nullable_ambiguity_witnessed_by_empty_word() {
        // A -> ε | B with B -> ε: both alternatives derive the empty
        // word, so the witness is the empty word.
        let (g, t) = table(|gb| {
            gb.rule("S", &["A"]);
            gb.rule("A", &[]);
            gb.rule("A", &["B"]);
            gb.rule("B", &[]);
            gb.start("S");
        });
        let a = t.decision(nt(&g, "A")).unwrap();
        let word = a.conflicts[0].ambiguous_word.as_ref().unwrap();
        assert!(word.is_empty());
    }

    #[test]
    fn sll_conflict_grammar_needs_full_allstar_at_x_only() {
        let (g, t) = table(|gb| {
            gb.rule("S", &["p", "C1"]);
            gb.rule("S", &["q", "C2"]);
            gb.rule("C1", &["X", "b"]);
            gb.rule("C2", &["X", "a", "b"]);
            gb.rule("X", &["a", "a"]);
            gb.rule("X", &["a"]);
            gb.start("S");
        });
        // S: p vs q — disjoint select sets, pure LL(1) dispatch.
        assert_eq!(t.decision(nt(&g, "S")).unwrap().class, DecisionClass::Ll1);
        // X: merged SLL contexts can conflict.
        let x = t.decision(nt(&g, "X")).unwrap();
        assert_eq!(x.class, DecisionClass::NeedsFullAllStar);
        // "a a b" parses via both X -> a a (in C1) and X -> a (in C2),
        // but X itself derives no common word — ambiguity is contextual,
        // not intrinsic to the pair.
        assert!(x.conflicts[0].ambiguous_word.is_none());
        // Single-production nonterminals are not decision points.
        assert!(t.decision(nt(&g, "C1")).is_none());
    }

    #[test]
    fn left_recursive_decision_needs_full_allstar() {
        let (g, t) = table(|gb| {
            gb.rule("E", &["E", "plus", "int"]);
            gb.rule("E", &["int"]);
            gb.start("E");
        });
        let e = t.decision(nt(&g, "E")).unwrap();
        assert_eq!(e.class, DecisionClass::NeedsFullAllStar);
        assert!(e.conflicts[0].ambiguous_word.is_none());
    }

    #[test]
    fn stats_count_classes_and_entries() {
        let (_, t) = table(fig2);
        let s = t.stats();
        assert_eq!(s.decision_points, 2);
        assert_eq!(s.ll1, 1);
        assert_eq!(s.sll_safe, 1);
        assert_eq!(s.needs_full, 0);
        assert_eq!(s.ambiguous, 0);
        // A's map: a and b populated, no EOF entry.
        assert_eq!(s.lookahead_entries, 2);
    }

    #[test]
    fn json_report_is_deterministic_and_structured() {
        let (g, t) = table(fig2);
        let j1 = t.to_json(&g);
        let j2 = t.to_json(&g);
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"schema\":\"costar-analyze-v1\""));
        assert!(j1.contains("\"class\":\"ll1\""));
        assert!(j1.contains("\"class\":\"sll-safe\""));
        assert!(j1.contains("\"decision_points\":2"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j1.matches('{').count(), j1.matches('}').count(),);
        assert_eq!(j1.matches('[').count(), j1.matches(']').count(),);
    }
}
