//! Static cost certification: sound per-grammar fuel bounds derived from
//! the termination measure (the `costar-cost-v1` certificate).
//!
//! CoStar's termination argument (paper §4) bounds every parse by the
//! lexicographic measure `(tokens, stackScore, height)`, but that bound is
//! only *dynamic*: `Budget` fuel is a number the operator guesses, and an
//! abort cannot distinguish "budget too small" from "pathological input".
//! This module computes the measure's constants *statically*, per grammar,
//! and certifies:
//!
//! > any accepting or rejecting parse of `n` tokens consumes at most
//! > `bound_for(n)` units of metered fuel (machine steps **plus**
//! > prediction lookahead, exactly the quantity `Meter::steps_taken`
//! > reports).
//!
//! The derivation, kept deliberately elementary so the replay validator
//! can recompute it from scratch:
//!
//! 1. **Machine steps.** Every fuel unit charged by `Machine::step` is a
//!    consume, a push, a return, or the single final (accept/reject)
//!    step. Consumes ≤ `n`, returns = pushes, so machine fuel is at most
//!    `n + 2·pushes + 1`.
//! 2. **Pushes.** Each push creates one tree node. A *token-bearing*
//!    node (its subtree consumes ≥ 1 token) is charged to the first token
//!    it consumes; the nodes charged to one token are exactly the frames
//!    opened since the previous consume — all live in the machine's
//!    `visited` set, hence pairwise-distinct nonterminals, hence at most
//!    `P = |N|` per token. The remaining nodes form ε-subtrees hanging
//!    off token-bearing frames: at most `m` roots per frame (`m` = the
//!    most nonterminal symbols on any right-hand side) of at most
//!    `epsilon_max` nodes each (see below). Altogether
//!    `pushes ≤ (n + 1) · C` with `C = P·(1 + m·epsilon_max)`.
//! 3. **ε-subtrees.** An ε-subtree contains only nullable nonterminals,
//!    each chosen alternative fully nullable. If the *nullable-closure
//!    graph* (edges `X → Y` for `Y` on a fully-nullable alternative of
//!    `X`) is acyclic, a longest-path DP gives the exact worst tree size
//!    `epsilon_max`. A cycle is a **nullable-cycle hazard**: the
//!    `visited` guard still caps any root-to-leaf chain at `Q` distinct
//!    nullable nonterminals, so `(W + 1)^Q` (branching `W`, saturating)
//!    remains a sound — if astronomically loose — bound.
//! 4. **Prediction.** Each of the ≤ `pushes + 1` prediction calls
//!    charges one unit per lookahead token examined (plus one if it runs
//!    off the end of the input). When every decision point has a finite
//!    certified bound in the [`AuditTable`], SLL resolves within
//!    `k_max` tokens and never fails over to LL, so each call charges at
//!    most `k_max + 1` and the total is **linear**:
//!    `a·n + b` with `a = 1 + C·(k_max + 3)` and
//!    `b = C·(k_max + 3) + k_max + 2`. With any unbounded decision a
//!    single call may scan the remaining input (twice, counting LL
//!    failover), and [`CostModel::bound_for`] falls back to the
//!    quadratic envelope `n + 2·pushes + 1 + (pushes + 1)·2·(n + 1)`.
//!
//! All arithmetic saturates: a bound that overflows `u64` degrades to
//! `u64::MAX`, which is still sound (nothing meters that far).
//!
//! Like the audit pass, the result is serialized as a fingerprint-pinned
//! certificate (schema [`COST_SCHEMA`]) embedded in the grammar cache and
//! **replayed, never trusted**, on load: [`replay`] recomputes the model
//! from the live analyses and demands equality. A deflated certificate
//! that somehow survives replay is still caught dynamically by the
//! `on_cost_check` observer hook, which compares every finished parse's
//! metered fuel against `bound_for(n)`.

use crate::analysis::audit::AuditTable;
use crate::analysis::cache::grammar_fingerprint;
use crate::analysis::left_recursion::LeftRecursion;
use crate::analysis::nullable::NullableSet;
use crate::grammar::Grammar;
use crate::json::{parse_json, JsonValue};
use crate::sets::NtSet;
use crate::symbol::{NonTerminal, Symbol};

/// Schema identifier for the serialized cost certificate.
pub const COST_SCHEMA: &str = "costar-cost-v1";

/// The statically certified cost model for one grammar.
///
/// Constructed by [`CostModel::compute`]; consumed by `--max-steps auto`
/// (per-input fuel derivation), the `costar cost` subcommand, lint codes
/// L012/L013, and the parse-time `on_cost_check` soundness probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// `P`: the number of nonterminals.
    pub nonterminals: u64,
    /// `m`: the most nonterminal symbols on any right-hand side (at
    /// least 1, so the push bound stays a simple product).
    pub max_rhs_nts: u64,
    /// Worst-case node count of any ε-subtree (0 when nothing is
    /// nullable).
    pub epsilon_max: u64,
    /// `true` when the nullable-closure graph is cyclic and
    /// `epsilon_max` is the saturating hazard fallback rather than the
    /// exact longest-path value.
    pub nullable_hazard: bool,
    /// `C = P·(1 + m·epsilon_max)`: certified maximum pushes per input
    /// position ("epoch").
    pub pushes_per_epoch: u64,
    /// Largest finite certified lookahead over all decision points (0
    /// when there are none).
    pub k_max: u64,
    /// Decision points the audit could not bound (`k = None`), in
    /// ascending index order. Non-empty ⟹ the bound is not linear.
    pub unbounded: Vec<NonTerminal>,
    /// L012 set: unbounded decision points reachable from a token-free
    /// cycle (left recursion or a nullable-closure cycle) along
    /// left-corner edges — prediction there can rescan input that is not
    /// being consumed. Ascending index order; always ⊆ `unbounded`.
    pub superlinear: Vec<NonTerminal>,
    /// Steps-per-token coefficient of the linear bound; 0 when the
    /// grammar is not linear (see [`CostModel::is_linear`]).
    pub a: u64,
    /// Constant term of the linear bound; 0 when not linear.
    pub b: u64,
}

impl CostModel {
    /// Derives the cost model from the grammar and its prior analyses.
    pub fn compute(
        g: &Grammar,
        nullable: &NullableSet,
        left_recursion: &LeftRecursion,
        audit: &AuditTable,
    ) -> Self {
        let p = (g.num_nonterminals() as u64).max(1);
        let m = g
            .productions()
            .iter()
            .map(|pr| {
                pr.rhs()
                    .iter()
                    .filter(|s| matches!(s, Symbol::Nt(_)))
                    .count() as u64
            })
            .max()
            .unwrap_or(0)
            .max(1);

        let (epsilon_max, nullable_hazard, nullable_cycle) = epsilon_analysis(g, nullable);

        let c = p.saturating_mul(1u64.saturating_add(m.saturating_mul(epsilon_max)));

        let mut k_max = 0u64;
        let mut unbounded: Vec<NonTerminal> = Vec::new();
        for info in audit.iter() {
            match info.k {
                Some(k) => k_max = k_max.max(k as u64),
                None => unbounded.push(info.nonterminal),
            }
        }
        unbounded.sort_by_key(|x| x.index());

        let superlinear = superlinear_set(g, left_recursion, &nullable_cycle, &unbounded);

        let (a, b) = if unbounded.is_empty() {
            let per_push = c.saturating_mul(k_max.saturating_add(3));
            (
                1u64.saturating_add(per_push),
                per_push.saturating_add(k_max).saturating_add(2),
            )
        } else {
            (0, 0)
        };

        CostModel {
            nonterminals: p,
            max_rhs_nts: m,
            epsilon_max,
            nullable_hazard,
            pushes_per_epoch: c,
            k_max,
            unbounded,
            superlinear,
            a,
            b,
        }
    }

    /// `true` when every decision point has a finite certified lookahead
    /// and the bound is the linear form `a·n + b`.
    pub fn is_linear(&self) -> bool {
        self.unbounded.is_empty()
    }

    /// The certified steps-per-token coefficient, when linear.
    pub fn steps_per_token(&self) -> Option<u64> {
        if self.is_linear() {
            Some(self.a)
        } else {
            None
        }
    }

    /// The certified fuel bound for an input of `n` tokens: `a·n + b`
    /// when linear, otherwise the quadratic unbounded-lookahead envelope.
    /// Saturating; a saturated bound is sound but useless for budgeting.
    pub fn bound_for(&self, n: u64) -> u64 {
        if self.is_linear() {
            return self.a.saturating_mul(n).saturating_add(self.b);
        }
        let pushes = n.saturating_add(1).saturating_mul(self.pushes_per_epoch);
        let machine = n.saturating_add(pushes.saturating_mul(2)).saturating_add(1);
        let prediction = pushes
            .saturating_add(1)
            .saturating_mul(2)
            .saturating_mul(n.saturating_add(1));
        machine.saturating_add(prediction)
    }
}

/// Worst-case ε-subtree size, hazard flag, and the set of nonterminals on
/// a nullable-closure cycle.
fn epsilon_analysis(g: &Grammar, nullable: &NullableSet) -> (u64, bool, NtSet) {
    let n = g.num_nonterminals();
    // Fully-nullable alternatives: edges x → y per nonterminal occurrence.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut has_nullable_alt = vec![false; n];
    let mut max_width = 0u64;
    for pr in g.productions() {
        if !nullable.form_nullable(pr.rhs()) {
            continue;
        }
        let x = pr.lhs().index();
        has_nullable_alt[x] = true;
        let mut width = 0u64;
        for s in pr.rhs() {
            if let Symbol::Nt(y) = s {
                edges[x].push(y.index());
                width += 1;
            }
        }
        max_width = max_width.max(width);
    }

    // Kahn's algorithm on the nullable-closure graph: nodes left with
    // positive in-degree afterwards lie on a cycle or are reachable from
    // one — a conservative superset of the true cycle set, which is all
    // the hazard flag and the L012 seed need.
    let mut indegree = vec![0usize; n];
    for targets in &edges {
        for &y in targets {
            indegree[y] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(x) = queue.pop() {
        order.push(x);
        for &y in &edges[x] {
            indegree[y] -= 1;
            if indegree[y] == 0 {
                queue.push(y);
            }
        }
    }

    let mut cycle = NtSet::with_capacity(n);
    if order.len() < n {
        for (i, &d) in indegree.iter().enumerate() {
            if d > 0 {
                cycle.insert(NonTerminal::from_index(i));
            }
        }
        let q = nullable.as_set().len() as u32;
        let e = max_width.saturating_add(1).saturating_pow(q);
        return (e, true, cycle);
    }

    // Acyclic: longest-tree DP in reverse topological order.
    // e(x) = max over fully-nullable alternatives of 1 + Σ e(y).
    let mut e = vec![0u64; n];
    for &x in order.iter().rev() {
        if !has_nullable_alt[x] {
            continue;
        }
        let mut best = 0u64;
        for pr_id in g.alternatives(NonTerminal::from_index(x)) {
            let pr = g.production(*pr_id);
            if !nullable.form_nullable(pr.rhs()) {
                continue;
            }
            let mut total = 1u64;
            for s in pr.rhs() {
                if let Symbol::Nt(y) = s {
                    total = total.saturating_add(e[y.index()]);
                }
            }
            best = best.max(total);
        }
        e[x] = best;
    }
    (e.iter().copied().max().unwrap_or(0), false, cycle)
}

/// The L012 set: unbounded decision points reachable from a token-free
/// cycle along left-corner edges. Left recursion and nullable-closure
/// cycles are the two ways the machine can re-enter a decision point
/// without consuming; an unbounded decision downstream of one can rescan
/// input that is not shrinking.
fn superlinear_set(
    g: &Grammar,
    left_recursion: &LeftRecursion,
    nullable_cycle: &NtSet,
    unbounded: &[NonTerminal],
) -> Vec<NonTerminal> {
    let n = g.num_nonterminals();
    let edges = left_recursion.edge_lists();
    let mut reach = NtSet::with_capacity(n);
    let mut queue: Vec<usize> = Vec::new();
    for x in left_recursion
        .left_recursive_set()
        .iter()
        .chain(nullable_cycle.iter())
    {
        if reach.insert(x) {
            queue.push(x.index());
        }
    }
    while let Some(x) = queue.pop() {
        for &y in edges.get(x).map(Vec::as_slice).unwrap_or(&[]) {
            if reach.insert(NonTerminal::from_index(y)) {
                queue.push(y);
            }
        }
    }
    unbounded
        .iter()
        .copied()
        .filter(|x| reach.contains(*x))
        .collect()
}

fn push_nt_array(out: &mut String, key: &str, nts: &[NonTerminal]) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, x) in nts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.index().to_string());
    }
    out.push(']');
}

/// Serializes the cost model as the fingerprint-pinned `costar-cost-v1`
/// certificate — the exact form embedded under the grammar cache's
/// `"cost"` key and emitted by `costar cost --json`.
pub fn to_cost_json(g: &Grammar, c: &CostModel) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"schema\":\"");
    out.push_str(COST_SCHEMA);
    out.push_str("\",\"fingerprint\":\"");
    out.push_str(&format!("{:016x}", grammar_fingerprint(g)));
    out.push_str("\",\"nonterminals\":");
    out.push_str(&c.nonterminals.to_string());
    out.push_str(",\"max_rhs_nts\":");
    out.push_str(&c.max_rhs_nts.to_string());
    out.push_str(",\"epsilon_max\":");
    out.push_str(&c.epsilon_max.to_string());
    out.push_str(",\"nullable_hazard\":");
    out.push_str(if c.nullable_hazard { "true" } else { "false" });
    out.push_str(",\"pushes_per_epoch\":");
    out.push_str(&c.pushes_per_epoch.to_string());
    out.push_str(",\"k_max\":");
    out.push_str(&c.k_max.to_string());
    out.push(',');
    push_nt_array(&mut out, "unbounded", &c.unbounded);
    out.push(',');
    push_nt_array(&mut out, "superlinear", &c.superlinear);
    out.push_str(",\"linear\":");
    out.push_str(if c.is_linear() { "true" } else { "false" });
    out.push_str(",\"a\":");
    out.push_str(&c.a.to_string());
    out.push_str(",\"b\":");
    out.push_str(&c.b.to_string());
    out.push('}');
    out
}

fn read_nt_list(g: &Grammar, v: &JsonValue) -> Option<Vec<NonTerminal>> {
    let arr = v.as_arr()?;
    let mut out = Vec::with_capacity(arr.len());
    let mut prev: Option<usize> = None;
    for item in arr {
        let i = item.as_usize()?;
        if i >= g.num_nonterminals() {
            return None;
        }
        // Ascending and duplicate-free, as the writer emits.
        if let Some(p) = prev {
            if i <= p {
                return None;
            }
        }
        prev = Some(i);
        out.push(NonTerminal::from_index(i));
    }
    Some(out)
}

/// Structural parse of a cost certificate value: schema and fingerprint
/// must match, indices must be in range, lists ascending. Semantic
/// validity is established separately by [`replay`].
pub(crate) fn cost_from_json(g: &Grammar, v: &JsonValue) -> Option<CostModel> {
    if v.get("schema")?.as_str()? != COST_SCHEMA {
        return None;
    }
    if v.get("fingerprint")?.as_str()? != format!("{:016x}", grammar_fingerprint(g)) {
        return None;
    }
    let model = CostModel {
        nonterminals: v.get("nonterminals")?.as_u64()?,
        max_rhs_nts: v.get("max_rhs_nts")?.as_u64()?,
        epsilon_max: v.get("epsilon_max")?.as_u64()?,
        nullable_hazard: v.get("nullable_hazard")?.as_bool()?,
        pushes_per_epoch: v.get("pushes_per_epoch")?.as_u64()?,
        k_max: v.get("k_max")?.as_u64()?,
        unbounded: read_nt_list(g, v.get("unbounded")?)?,
        superlinear: read_nt_list(g, v.get("superlinear")?)?,
        a: v.get("a")?.as_u64()?,
        b: v.get("b")?.as_u64()?,
    };
    // The "linear" field is presentational but must agree.
    if v.get("linear")?.as_bool()? != model.is_linear() {
        return None;
    }
    Some(model)
}

/// Parses a standalone `costar-cost-v1` document (as emitted by
/// [`to_cost_json`] or `costar cost --json`) against `g`.
pub fn parse_cost_json(g: &Grammar, text: &str) -> Option<CostModel> {
    cost_from_json(g, &parse_json(text)?)
}

/// Replays a cost certificate instead of trusting it: recomputes the
/// model from the live analyses and demands field-for-field equality.
/// The derivation is cheap (linear-ish in grammar size), so unlike the
/// audit replay there is no sampling — the whole thing is recomputed.
pub fn replay(
    g: &Grammar,
    nullable: &NullableSet,
    left_recursion: &LeftRecursion,
    audit: &AuditTable,
    claimed: &CostModel,
) -> bool {
    CostModel::compute(g, nullable, left_recursion, audit) == *claimed
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::analysis::GrammarAnalysis;
    use crate::grammar::GrammarBuilder;

    fn model(g: &Grammar) -> (GrammarAnalysis, CostModel) {
        let a = GrammarAnalysis::compute(g);
        let c = CostModel::compute(g, &a.nullable, &a.left_recursion, &a.audit);
        (a, c)
    }

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    #[test]
    fn ll1_grammar_is_linear_with_closed_form() {
        // S -> a S | b: single decision point, k = 1, nothing nullable.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "S"]);
        gb.rule("S", &["b"]);
        let g = gb.start("S").build().unwrap();
        let (_, c) = model(&g);
        assert!(c.is_linear());
        assert!(c.unbounded.is_empty() && c.superlinear.is_empty());
        assert_eq!(c.nonterminals, 1);
        assert_eq!(c.epsilon_max, 0);
        assert!(!c.nullable_hazard);
        assert_eq!(c.pushes_per_epoch, 1);
        assert_eq!(c.k_max, 1);
        // a = 1 + C(k+3) = 5, b = C(k+3) + k + 2 = 7.
        assert_eq!((c.a, c.b), (5, 7));
        assert_eq!(c.steps_per_token(), Some(5));
        assert_eq!(c.bound_for(10), 57);
        // Saturating, monotone.
        assert_eq!(c.bound_for(u64::MAX), u64::MAX);
        assert!(c.bound_for(3) <= c.bound_for(4));
    }

    #[test]
    fn unbounded_decision_forces_quadratic_fallback() {
        // Paper Fig. 2: S's decision (A c | A d) is unbounded under SLL
        // because A pumps `a`s — the audit certifies k = None for S.
        let g = fig2();
        let (a, c) = model(&g);
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        assert_eq!(a.audit.k_bound(s), None);
        assert!(!c.is_linear());
        assert_eq!(c.unbounded, vec![s]);
        assert_eq!(c.steps_per_token(), None);
        assert_eq!((c.a, c.b), (0, 0));
        // Quadratic envelope: C = P = 2 (nothing nullable), n = 3 ⟹
        // pushes = 8, machine = 3 + 16 + 1 = 20, prediction = 9·2·4 = 72.
        assert_eq!(c.pushes_per_epoch, 2);
        assert_eq!(c.bound_for(3), 92);
        // Fig. 2 is not left-recursive and has no nullable cycle, so the
        // unbounded decision is not flagged superlinear (no L012).
        assert!(c.superlinear.is_empty());
    }

    #[test]
    fn epsilon_dp_counts_worst_nullable_subtree() {
        // S -> A A, A -> B B | ε, B -> ε:
        // e(B) = 1, e(A) = max(1 + 2·e(B), 1) = 3, e(S) = 1 + 2·e(A) = 7.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "A"]);
        gb.rule("A", &["B", "B"]);
        gb.rule("A", &[]);
        gb.rule("B", &[]);
        let g = gb.start("S").build().unwrap();
        let (_, c) = model(&g);
        assert!(!c.nullable_hazard);
        assert_eq!(c.epsilon_max, 7);
        // C = P(1 + m·e) = 3·(1 + 2·7) = 45.
        assert_eq!(c.pushes_per_epoch, 45);
    }

    #[test]
    fn nullable_cycle_is_flagged_as_hazard() {
        // A -> B | ε, B -> A | ε: the nullable-closure graph has the
        // cycle A → B → A.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "x"]);
        gb.rule("A", &["B"]);
        gb.rule("A", &[]);
        gb.rule("B", &["A"]);
        gb.rule("B", &[]);
        let g = gb.start("S").build().unwrap();
        let (_, c) = model(&g);
        assert!(c.nullable_hazard);
        // Q = 2 nullable NTs, W = 1 ⟹ hazard bound (W+1)^Q = 4.
        assert_eq!(c.epsilon_max, 4);
        // Still sound and still produces a finite bound.
        assert!(c.bound_for(5) > 0);
    }

    #[test]
    fn left_recursive_unbounded_decision_is_superlinear() {
        // E -> E plus T | T, T -> a | b: E is left-recursive and its
        // decision is unbounded ⟹ the L012 set contains E.
        let mut gb = GrammarBuilder::new();
        gb.rule("E", &["E", "plus", "T"]);
        gb.rule("E", &["T"]);
        gb.rule("T", &["a"]);
        gb.rule("T", &["b"]);
        let g = gb.start("E").build().unwrap();
        let (a, c) = model(&g);
        let e = g.symbols().lookup_nonterminal("E").unwrap();
        assert!(a.left_recursion.is_left_recursive(e));
        if a.audit.k_bound(e).is_none() {
            assert!(c.superlinear.contains(&e));
            assert!(c.unbounded.contains(&e));
        }
        assert!(!c.is_linear() || c.superlinear.is_empty());
    }

    #[test]
    fn certificate_round_trips_and_replays() {
        for g in [fig2(), {
            let mut gb = GrammarBuilder::new();
            gb.rule("S", &["a", "S"]);
            gb.rule("S", &[]);
            gb.start("S").build().unwrap()
        }] {
            let (a, c) = model(&g);
            let json = to_cost_json(&g, &c);
            let parsed = parse_cost_json(&g, &json).expect("round trip");
            assert_eq!(parsed, c);
            assert!(replay(
                &g,
                &a.nullable,
                &a.left_recursion,
                &a.audit,
                &parsed
            ));
        }
    }

    #[test]
    fn corrupted_certificates_are_rejected() {
        let g = fig2();
        let (a, c) = model(&g);
        let json = to_cost_json(&g, &c);
        // Wrong schema.
        assert!(parse_cost_json(&g, &json.replace("cost-v1", "cost-v9")).is_none());
        // Wrong fingerprint: parse against a different grammar.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a"]);
        let other = gb.start("S").build().unwrap();
        assert!(parse_cost_json(&other, &json).is_none());
        // Out-of-range nonterminal index in a list.
        let bad = json.replace("\"unbounded\":[0]", "\"unbounded\":[7]");
        assert!(parse_cost_json(&g, &bad).is_none());
        // Inconsistent "linear" flag.
        let bad = json.replace("\"linear\":false", "\"linear\":true");
        assert!(parse_cost_json(&g, &bad).is_none());
        // Structurally valid but semantically deflated: replay refuses.
        let mut deflated = c.clone();
        deflated.pushes_per_epoch = 1;
        assert!(!replay(
            &g,
            &a.nullable,
            &a.left_recursion,
            &a.audit,
            &deflated
        ));
    }

    #[test]
    fn bound_is_monotone_in_input_length() {
        for g in [fig2(), {
            let mut gb = GrammarBuilder::new();
            gb.rule("S", &["a", "S"]);
            gb.rule("S", &["b"]);
            gb.start("S").build().unwrap()
        }] {
            let (_, c) = model(&g);
            let mut prev = 0;
            for n in 0..64u64 {
                let now = c.bound_for(n);
                assert!(now >= prev, "bound must be monotone");
                prev = now;
            }
        }
    }
}
