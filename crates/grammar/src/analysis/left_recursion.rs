//! Static left-recursion decision procedure.
//!
//! All of CoStar's correctness theorems assume a non-left-recursive
//! grammar; the paper (§8) lists a verified decision procedure for this
//! property as future work. We implement it: a nonterminal `X` is
//! left-recursive iff there is a *nullable path* from `X` back to `X`
//! (Lasser et al. 2019, cited in paper §5.4.2) — i.e. `X` derives a
//! sentential form beginning with `X` by a leftmost chain that only skips
//! nullable material.
//!
//! Concretely, build the "left-corner" graph with an edge `X → Y` whenever
//! some production `X → α Y β` has a nullable prefix `α`; then `X` is
//! left-recursive iff `X` lies on a cycle of that graph (self-loops
//! included). Cycles are found with Tarjan's strongly-connected-components
//! algorithm.

use crate::analysis::nullable::NullableSet;
use crate::grammar::Grammar;
use crate::sets::NtSet;
use crate::symbol::{NonTerminal, Symbol};

/// Result of the left-recursion analysis.
///
/// # Examples
///
/// ```
/// use costar_grammar::{GrammarBuilder, analysis::{LeftRecursion, NullableSet}};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("E", &["E", "Plus", "Int"]); // directly left-recursive
/// gb.rule("E", &["Int"]);
/// let g = gb.start("E").build()?;
/// let nullable = NullableSet::compute(&g);
/// let lr = LeftRecursion::compute(&g, &nullable);
/// assert!(!lr.is_grammar_safe());
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LeftRecursion {
    left_recursive: NtSet,
    /// The left-corner graph (`edges[x]` = nullable-prefix successors of
    /// `x`), retained so diagnostics can reconstruct witness cycles.
    edges: Vec<Vec<usize>>,
}

impl LeftRecursion {
    /// Runs the decision procedure.
    pub fn compute(g: &Grammar, nullable: &NullableSet) -> Self {
        let n = g.num_nonterminals();
        // Left-corner edges X -> Y.
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (_, p) in g.iter() {
            for &s in p.rhs() {
                match s {
                    Symbol::Nt(y) => {
                        edges[p.lhs().index()].push(y.index());
                        if !nullable.contains(y) {
                            break;
                        }
                    }
                    Symbol::T(_) => break,
                }
            }
        }

        // Tarjan SCC. Nonterminals in an SCC of size > 1, or with a
        // self-loop, are left-recursive.
        let mut state = Tarjan {
            edges: &edges,
            index: vec![usize::MAX; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            left_recursive: NtSet::with_capacity(n),
        };
        for v in 0..n {
            if state.index[v] == usize::MAX {
                state.strongconnect(v);
            }
        }
        // Self-loops: an edge X -> X is a cycle even in a singleton SCC.
        for (v, vs) in edges.iter().enumerate() {
            if vs.contains(&v) {
                state.left_recursive.insert(NonTerminal::from_index(v));
            }
        }

        LeftRecursion {
            left_recursive: state.left_recursive,
            edges,
        }
    }

    /// Is `x` left-recursive?
    pub fn is_left_recursive(&self, x: NonTerminal) -> bool {
        self.left_recursive.contains(x)
    }

    /// Is the grammar free of left recursion — the precondition of every
    /// CoStar correctness theorem (paper §5)?
    pub fn is_grammar_safe(&self) -> bool {
        self.left_recursive.is_empty()
    }

    /// All left-recursive nonterminals.
    pub fn left_recursive_set(&self) -> &NtSet {
        &self.left_recursive
    }

    /// The left-corner graph edges (grammar-cache serialization).
    pub(crate) fn edge_lists(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// Rebuilds from raw parts (grammar-cache deserialization).
    pub(crate) fn from_parts(left_recursive: NtSet, edges: Vec<Vec<usize>>) -> Self {
        LeftRecursion {
            left_recursive,
            edges,
        }
    }

    /// A witness cycle `x ⇒ … ⇒ x` in the left-corner graph, shortest
    /// first by BFS, with `x` at both ends (so a direct self-loop yields
    /// `[x, x]`). `None` when `x` is not left-recursive.
    pub fn witness_cycle(&self, x: NonTerminal) -> Option<Vec<NonTerminal>> {
        if !self.left_recursive.contains(x) {
            return None;
        }
        // BFS from x's successors back to x; parent links rebuild the path.
        let n = self.edges.len();
        let target = x.index();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for &succ in &self.edges[target] {
            if succ == target {
                return Some(vec![x, x]);
            }
            if !visited[succ] {
                visited[succ] = true;
                queue.push_back(succ);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &w in &self.edges[v] {
                if w == target {
                    // v's ancestry runs back to one of x's successors;
                    // bracket it with x on both ends.
                    let mut mid = vec![v];
                    let mut cur = v;
                    while let Some(p) = parent[cur] {
                        mid.push(p);
                        cur = p;
                    }
                    mid.reverse();
                    let mut path = Vec::with_capacity(mid.len() + 2);
                    path.push(target);
                    path.extend(mid);
                    path.push(target);
                    return Some(path.into_iter().map(NonTerminal::from_index).collect());
                }
                if !visited[w] {
                    visited[w] = true;
                    parent[w] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

struct Tarjan<'a> {
    edges: &'a [Vec<usize>],
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    left_recursive: NtSet,
}

impl Tarjan<'_> {
    // Iterative Tarjan to avoid stack overflow on deep grammars.
    fn strongconnect(&mut self, v0: usize) {
        // Each frame is (node, next-edge-index).
        let mut call_stack: Vec<(usize, usize)> = vec![(v0, 0)];
        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            if *ei == 0 {
                self.index[v] = self.next_index;
                self.lowlink[v] = self.next_index;
                self.next_index += 1;
                self.stack.push(v);
                self.on_stack[v] = true;
            }
            if let Some(&w) = self.edges[v].get(*ei) {
                *ei += 1;
                if self.index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if self.on_stack[w] {
                    self.lowlink[v] = self.lowlink[v].min(self.index[w]);
                }
            } else {
                // All edges of v processed: close the SCC if v is a root.
                if self.lowlink[v] == self.index[v] {
                    let mut scc = Vec::new();
                    loop {
                        // Audited: Tarjan's invariant — when v is an SCC
                        // root, the stack holds at least v itself, and the
                        // loop stops at v before the stack can empty.
                        #[allow(clippy::disallowed_methods)]
                        let w = self.stack.pop().expect("tarjan stack underflow");
                        self.on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if scc.len() > 1 {
                        for w in scc {
                            self.left_recursive.insert(NonTerminal::from_index(w));
                        }
                    }
                }
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn analyze(build: impl FnOnce(&mut GrammarBuilder)) -> (Grammar, LeftRecursion) {
        let mut gb = GrammarBuilder::new();
        build(&mut gb);
        let g = gb.build().unwrap();
        let n = NullableSet::compute(&g);
        let lr = LeftRecursion::compute(&g, &n);
        (g, lr)
    }

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    #[test]
    fn direct_left_recursion() {
        let (g, lr) = analyze(|gb| {
            gb.rule("E", &["E", "Plus", "Int"]);
            gb.rule("E", &["Int"]);
            gb.start("E");
        });
        assert!(lr.is_left_recursive(nt(&g, "E")));
        assert!(!lr.is_grammar_safe());
    }

    #[test]
    fn indirect_left_recursion() {
        let (g, lr) = analyze(|gb| {
            gb.rule("A", &["B", "x"]);
            gb.rule("B", &["C", "y"]);
            gb.rule("C", &["A", "z"]);
            gb.rule("C", &["w"]);
            gb.start("A");
        });
        for name in ["A", "B", "C"] {
            assert!(lr.is_left_recursive(nt(&g, name)), "{name}");
        }
    }

    #[test]
    fn hidden_left_recursion_through_nullable() {
        // S -> N S x, where N is nullable: S is (hidden) left-recursive.
        let (g, lr) = analyze(|gb| {
            gb.rule("S", &["N", "S", "x"]);
            gb.rule("S", &["y"]);
            gb.rule("N", &[]);
            gb.rule("N", &["n"]);
            gb.start("S");
        });
        assert!(lr.is_left_recursive(nt(&g, "S")));
        assert!(!lr.is_left_recursive(nt(&g, "N")));
    }

    #[test]
    fn right_recursion_is_safe() {
        let (g, lr) = analyze(|gb| {
            gb.rule("L", &["Int", "Comma", "L"]);
            gb.rule("L", &["Int"]);
            gb.start("L");
        });
        assert!(lr.is_grammar_safe());
        assert!(!lr.is_left_recursive(nt(&g, "L")));
    }

    #[test]
    fn fig2_grammar_is_safe() {
        let (_, lr) = analyze(|gb| {
            gb.rule("S", &["A", "c"]);
            gb.rule("S", &["A", "d"]);
            gb.rule("A", &["a", "A"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        });
        assert!(lr.is_grammar_safe());
    }

    #[test]
    fn non_nullable_prefix_blocks_edge() {
        // S -> T S | x with T -> t : S's recursive occurrence is guarded by
        // a non-nullable T, so no left recursion.
        let (g, lr) = analyze(|gb| {
            gb.rule("S", &["T", "S"]);
            gb.rule("S", &["x"]);
            gb.rule("T", &["t"]);
            gb.start("S");
        });
        assert!(lr.is_grammar_safe());
        assert!(!lr.is_left_recursive(nt(&g, "S")));
    }

    #[test]
    fn mutual_cycle_with_nullable_middle() {
        // A -> N B, B -> A x, N nullable: cycle A -> B -> A.
        let (g, lr) = analyze(|gb| {
            gb.rule("A", &["N", "B"]);
            gb.rule("A", &["a"]);
            gb.rule("B", &["A", "x"]);
            gb.rule("N", &[]);
            gb.start("A");
        });
        assert!(lr.is_left_recursive(nt(&g, "A")));
        assert!(lr.is_left_recursive(nt(&g, "B")));
        assert!(!lr.is_left_recursive(nt(&g, "N")));
    }

    #[test]
    fn witness_cycle_for_direct_recursion_is_self_loop() {
        let (g, lr) = analyze(|gb| {
            gb.rule("E", &["E", "Plus", "Int"]);
            gb.rule("E", &["Int"]);
            gb.start("E");
        });
        let e = nt(&g, "E");
        assert_eq!(lr.witness_cycle(e).unwrap(), vec![e, e]);
    }

    #[test]
    fn witness_cycle_traverses_indirect_chain() {
        let (g, lr) = analyze(|gb| {
            gb.rule("A", &["B", "x"]);
            gb.rule("B", &["C", "y"]);
            gb.rule("C", &["A", "z"]);
            gb.rule("C", &["w"]);
            gb.start("A");
        });
        let (a, b, c) = (nt(&g, "A"), nt(&g, "B"), nt(&g, "C"));
        assert_eq!(lr.witness_cycle(a).unwrap(), vec![a, b, c, a]);
        assert_eq!(lr.witness_cycle(b).unwrap(), vec![b, c, a, b]);
    }

    #[test]
    fn witness_cycle_absent_for_safe_nonterminals() {
        let (g, lr) = analyze(|gb| {
            gb.rule("L", &["Int", "Comma", "L"]);
            gb.rule("L", &["Int"]);
            gb.start("L");
        });
        assert!(lr.witness_cycle(nt(&g, "L")).is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A_0 -> A_1 -> ... -> A_999 -> x : deep but acyclic.
        let mut gb = GrammarBuilder::new();
        for i in 0..999 {
            let a = format!("A{i}");
            let b = format!("A{}", i + 1);
            gb.rule(&a, &[&b]);
        }
        gb.rule("A999", &["x"]);
        let g = gb.start("A0").build().unwrap();
        let n = NullableSet::compute(&g);
        let lr = LeftRecursion::compute(&g, &n);
        assert!(lr.is_grammar_safe());
    }
}
