//! Static "stable return frame" analysis for SLL prediction.
//!
//! Original ALL(*) lets an SLL subparser with an empty simulated stack
//! return to *all possible caller frames*. CoStar (paper §3.5) instead
//! precomputes, for each nonterminal `X`, the *stable* grammar positions
//! that are closure-reachable (via push and return operations that consume
//! no input) from every possible caller of `X`. When an SLL subparser
//! finishes simulating `X` with an empty local stack, it resumes from each
//! of those positions. Computing them statically is what keeps CoStar's SLL
//! termination proof tractable — and here, what keeps the SLL simulation a
//! simple bounded loop.
//!
//! A *stable position* is a grammar position `(production, dot)` whose dot
//! sits immediately before a terminal: a position where the subparser must
//! consume input to make further progress. Additionally, "end of parse" is
//! a stable destination when some caller chain is nullable all the way to
//! the completion of the start symbol.

use crate::analysis::nullable::NullableSet;
use crate::grammar::{Grammar, ProdId};
use crate::symbol::{NonTerminal, Symbol};
use std::collections::BTreeSet;

/// A grammar position: the dot sits before `rhs(production)[dot]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// The production the dot is inside.
    pub production: ProdId,
    /// Index into the production's right-hand side (0 ≤ dot < len).
    pub dot: u32,
}

/// The stable destinations of one nonterminal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StableDests {
    /// Stable positions (dot before a terminal), deduplicated and ordered.
    pub positions: Vec<Position>,
    /// `true` if end-of-input is an acceptable continuation after the
    /// nonterminal completes (some caller chain reaches the end of the
    /// start production through nullable material only).
    pub can_end: bool,
}

/// Per-nonterminal stable return destinations (paper §3.5).
///
/// # Examples
///
/// ```
/// use costar_grammar::{GrammarBuilder, analysis::{NullableSet, StableFrames}};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["A", "d"]);
/// gb.rule("A", &["b"]);
/// let g = gb.start("S").build()?;
/// let nullable = NullableSet::compute(&g);
/// let sf = StableFrames::compute(&g, &nullable);
/// let a = g.symbols().lookup_nonterminal("A").unwrap();
/// // After A completes, the only stable continuation is "S -> A . d".
/// assert_eq!(sf.dests(a).positions.len(), 1);
/// assert!(!sf.dests(a).can_end);
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StableFrames {
    dests: Vec<StableDests>,
}

impl StableFrames {
    /// Computes stable destinations for every nonterminal by a monotone
    /// fixpoint over three mutually recursive set families:
    ///
    /// * `SD[X]` — stable destinations of `X` (the result);
    /// * `SF[p, j]` — stable positions closure-reachable from position
    ///   `(p, j)` without consuming input;
    /// * `FS[Z]` — stable positions reachable from the start of any of
    ///   `Z`'s right-hand sides (the push case of closure).
    pub fn compute(g: &Grammar, nullable: &NullableSet) -> Self {
        let num_nts = g.num_nonterminals();
        let num_prods = g.num_productions();

        // Flatten SF variables: sf_index(p, j) for 0 <= j <= len(rhs(p)).
        let mut sf_base = vec![0usize; num_prods + 1];
        for (i, p) in g.productions().iter().enumerate() {
            sf_base[i + 1] = sf_base[i] + p.rhs().len() + 1;
        }
        let num_sf = sf_base[num_prods];
        let sf_index = |p: ProdId, j: usize| sf_base[p.index()] + j;

        #[derive(Default, Clone, PartialEq)]
        struct SetVal {
            positions: BTreeSet<Position>,
            can_end: bool,
        }

        impl SetVal {
            fn union_from(&mut self, other: &SetVal) -> bool {
                let before = (self.positions.len(), self.can_end);
                self.positions.extend(other.positions.iter().copied());
                self.can_end |= other.can_end;
                before != (self.positions.len(), self.can_end)
            }
        }

        let mut sd: Vec<SetVal> = vec![SetVal::default(); num_nts];
        let mut sf: Vec<SetVal> = vec![SetVal::default(); num_sf];
        let mut fs: Vec<SetVal> = vec![SetVal::default(); num_nts];

        // Seed: completing the start symbol may be followed by EOF, and the
        // base case of SF at a terminal position is that position itself.
        sd[g.start().index()].can_end = true;
        for (pid, p) in g.iter() {
            for (j, &s) in p.rhs().iter().enumerate() {
                if s.is_terminal() {
                    sf[sf_index(pid, j)].positions.insert(Position {
                        production: pid,
                        dot: j as u32,
                    });
                }
            }
        }

        // Fixpoint iteration. Each constraint is monotone over finite sets,
        // so iteration terminates.
        let mut changed = true;
        while changed {
            changed = false;
            for (pid, p) in g.iter() {
                let rhs = p.rhs();
                // SF[p, len] ⊇ SD[lhs(p)] — returning out of p.
                {
                    let src = sd[p.lhs().index()].clone();
                    changed |= sf[sf_index(pid, rhs.len())].union_from(&src);
                }
                for (j, &s) in rhs.iter().enumerate().rev() {
                    match s {
                        Symbol::T(_) => {
                            // Base case already seeded; nothing flows in.
                        }
                        Symbol::Nt(z) => {
                            // Push case: SF[p, j] ⊇ FS[Z].
                            let src = fs[z.index()].clone();
                            changed |= sf[sf_index(pid, j)].union_from(&src);
                            // Nullable skip: SF[p, j] ⊇ SF[p, j+1].
                            if nullable.contains(z) {
                                let src = sf[sf_index(pid, j + 1)].clone();
                                changed |= sf[sf_index(pid, j)].union_from(&src);
                            }
                        }
                    }
                }
                // FS[lhs(p)] ⊇ SF[p, 0].
                {
                    let src = sf[sf_index(pid, 0)].clone();
                    changed |= fs[p.lhs().index()].union_from(&src);
                }
                // Caller constraint: for each Nt(X) at (p, i),
                // SD[X] ⊇ SF[p, i+1].
                for (i, &s) in rhs.iter().enumerate() {
                    if let Symbol::Nt(x) = s {
                        let src = sf[sf_index(pid, i + 1)].clone();
                        changed |= sd[x.index()].union_from(&src);
                    }
                }
            }
        }

        StableFrames {
            dests: sd
                .into_iter()
                .map(|v| StableDests {
                    positions: v.positions.into_iter().collect(),
                    can_end: v.can_end,
                })
                .collect(),
        }
    }

    /// The stable destinations of nonterminal `x`.
    pub fn dests(&self, x: NonTerminal) -> &StableDests {
        &self.dests[x.index()]
    }

    /// All destinations in nonterminal index order (grammar-cache
    /// serialization).
    pub(crate) fn all_dests(&self) -> &[StableDests] {
        &self.dests
    }

    /// Rebuilds from raw parts (grammar-cache deserialization).
    pub(crate) fn from_parts(dests: Vec<StableDests>) -> Self {
        StableFrames { dests }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    fn compute(build: impl FnOnce(&mut GrammarBuilder)) -> (Grammar, StableFrames) {
        let mut gb = GrammarBuilder::new();
        build(&mut gb);
        let g = gb.build().unwrap();
        let n = NullableSet::compute(&g);
        let sf = StableFrames::compute(&g, &n);
        (g, sf)
    }

    #[test]
    fn start_symbol_can_end() {
        let (g, sf) = compute(|gb| {
            gb.rule("S", &["a"]);
            gb.start("S");
        });
        let d = sf.dests(nt(&g, "S"));
        assert!(d.can_end);
        assert!(d.positions.is_empty());
    }

    #[test]
    fn single_caller_terminal_continuation() {
        // Fig. 2 grammar: after A completes, continuations are "S -> A . c"
        // and "S -> A . d" and, recursively, nothing else (c/d are
        // terminals). A also occurs in "A -> a A ." whose completion
        // returns to A's own callers (already covered).
        let (g, sf) = compute(|gb| {
            gb.rule("S", &["A", "c"]);
            gb.rule("S", &["A", "d"]);
            gb.rule("A", &["a", "A"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        });
        let d = sf.dests(nt(&g, "A"));
        assert_eq!(d.positions.len(), 2);
        assert!(!d.can_end);
        for pos in &d.positions {
            let p = g.production(pos.production);
            assert_eq!(g.symbols().nonterminal_name(p.lhs()), "S");
            assert_eq!(pos.dot, 1);
        }
    }

    #[test]
    fn nullable_tail_reaches_eof() {
        // S -> A B, B nullable: after A, both "inside B" positions and EOF
        // are stable destinations.
        let (g, sf) = compute(|gb| {
            gb.rule("S", &["A", "B"]);
            gb.rule("A", &["a"]);
            gb.rule("B", &["b"]);
            gb.rule("B", &[]);
            gb.start("S");
        });
        let d = sf.dests(nt(&g, "A"));
        assert!(d.can_end, "nullable B then end of S");
        // Position "B -> . b" is reachable by pushing B.
        assert_eq!(d.positions.len(), 1);
        let pos = d.positions[0];
        assert_eq!(
            g.symbols()
                .nonterminal_name(g.production(pos.production).lhs()),
            "B"
        );
        assert_eq!(pos.dot, 0);
    }

    #[test]
    fn transitive_return_through_caller() {
        // C completes inside B which completes inside S: C's stable
        // destinations include the terminal after B in S.
        let (g, sf) = compute(|gb| {
            gb.rule("S", &["B", "x"]);
            gb.rule("B", &["C"]);
            gb.rule("C", &["c"]);
            gb.start("S");
        });
        let d = sf.dests(nt(&g, "C"));
        assert!(!d.can_end);
        assert_eq!(d.positions.len(), 1);
        let p = g.production(d.positions[0].production);
        assert_eq!(g.symbols().nonterminal_name(p.lhs()), "S");
        assert_eq!(d.positions[0].dot, 1);
    }

    #[test]
    fn multiple_callers_union() {
        // X called from two places with different continuations.
        let (g, sf) = compute(|gb| {
            gb.rule("S", &["X", "a"]);
            gb.rule("S", &["X", "b"]);
            gb.rule("X", &["x"]);
            gb.start("S");
        });
        let d = sf.dests(nt(&g, "X"));
        assert_eq!(d.positions.len(), 2);
    }

    #[test]
    fn unreachable_nonterminal_has_no_dests() {
        let (g, sf) = compute(|gb| {
            gb.rule("S", &["a"]);
            gb.rule("U", &["u"]);
            gb.start("S");
        });
        let d = sf.dests(nt(&g, "U"));
        assert!(d.positions.is_empty());
        assert!(!d.can_end);
    }
}
