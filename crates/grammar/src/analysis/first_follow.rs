//! FIRST and FOLLOW set computation.
//!
//! These classic static analyses power the LL(1) baseline parser generator
//! (Lasser et al. 2019, against which the paper positions CoStar's
//! expressiveness) and the `AntlrSim` baseline's one-token fast-path
//! decisions. CoStar itself does not need them — its prediction is dynamic —
//! which is exactly the expressiveness story of the paper (§2).

use crate::analysis::nullable::NullableSet;
use crate::grammar::Grammar;
use crate::sets::TermSet;
use crate::symbol::{NonTerminal, Symbol, Terminal};

/// FIRST sets: for each nonterminal `X`, the terminals that can begin a
/// word derived from `X`.
///
/// # Examples
///
/// ```
/// use costar_grammar::{GrammarBuilder, analysis::{FirstSets, NullableSet}};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["A", "x"]);
/// gb.rule("A", &["y"]);
/// gb.rule("A", &[]);
/// let g = gb.start("S").build()?;
/// let nullable = NullableSet::compute(&g);
/// let first = FirstSets::compute(&g, &nullable);
/// let s = g.symbols().lookup_nonterminal("S").unwrap();
/// let x = g.symbols().lookup_terminal("x").unwrap();
/// let y = g.symbols().lookup_terminal("y").unwrap();
/// assert!(first.first(s).contains(x)); // via nullable A
/// assert!(first.first(s).contains(y));
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FirstSets {
    first: Vec<TermSet>,
}

impl FirstSets {
    /// Computes FIRST sets with the standard fixpoint iteration.
    pub fn compute(g: &Grammar, nullable: &NullableSet) -> Self {
        let mut first = vec![TermSet::with_capacity(g.num_terminals()); g.num_nonterminals()];
        let mut changed = true;
        while changed {
            changed = false;
            for (_, p) in g.iter() {
                // FIRST(lhs) ⊇ FIRST(prefix of rhs up to the first
                // non-nullable symbol, inclusive of its first terminal).
                let lhs_idx = p.lhs().index();
                for &s in p.rhs() {
                    match s {
                        Symbol::T(t) => {
                            if first[lhs_idx].insert(t) {
                                changed = true;
                            }
                            break;
                        }
                        Symbol::Nt(y) => {
                            // Split borrows: take a snapshot of FIRST(y).
                            let snapshot = first[y.index()].clone();
                            if first[lhs_idx].union_with(&snapshot) {
                                changed = true;
                            }
                            if !nullable.contains(y) {
                                break;
                            }
                        }
                    }
                }
            }
        }
        FirstSets { first }
    }

    /// The FIRST set of nonterminal `x`.
    pub fn first(&self, x: NonTerminal) -> &TermSet {
        &self.first[x.index()]
    }

    /// The per-nonterminal sets in index order (grammar-cache
    /// serialization).
    pub(crate) fn sets(&self) -> &[TermSet] {
        &self.first
    }

    /// Rebuilds from raw sets (grammar-cache deserialization).
    pub(crate) fn from_parts(first: Vec<TermSet>) -> Self {
        FirstSets { first }
    }

    /// FIRST of a sentential form: all terminals that can begin a word
    /// derived from `form`.
    pub fn first_of_form(&self, form: &[Symbol], nullable: &NullableSet) -> TermSet {
        let mut out = TermSet::default();
        for &s in form {
            match s {
                Symbol::T(t) => {
                    out.insert(t);
                    return out;
                }
                Symbol::Nt(x) => {
                    out.union_with(self.first(x));
                    if !nullable.contains(x) {
                        return out;
                    }
                }
            }
        }
        out
    }
}

/// FOLLOW sets: for each nonterminal `X`, the terminals that can appear
/// immediately after `X` in a sentential form derivable from the start
/// symbol, plus an end-of-input flag.
#[derive(Debug, Clone)]
pub struct FollowSets {
    follow: Vec<TermSet>,
    /// `true` if end-of-input can follow the nonterminal.
    eof: Vec<bool>,
}

impl FollowSets {
    /// Computes FOLLOW sets with the standard fixpoint iteration.
    pub fn compute(g: &Grammar, nullable: &NullableSet, first: &FirstSets) -> Self {
        let n = g.num_nonterminals();
        let mut follow = vec![TermSet::with_capacity(g.num_terminals()); n];
        let mut eof = vec![false; n];
        eof[g.start().index()] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for (_, p) in g.iter() {
                let rhs = p.rhs();
                for (i, &s) in rhs.iter().enumerate() {
                    let Symbol::Nt(x) = s else { continue };
                    let tail = &rhs[i + 1..];
                    let tail_first = first.first_of_form(tail, nullable);
                    if follow[x.index()].union_with(&tail_first) {
                        changed = true;
                    }
                    if nullable.form_nullable(tail) {
                        // FOLLOW(x) ⊇ FOLLOW(lhs).
                        let snapshot = follow[p.lhs().index()].clone();
                        if follow[x.index()].union_with(&snapshot) {
                            changed = true;
                        }
                        if eof[p.lhs().index()] && !eof[x.index()] {
                            eof[x.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        FollowSets { follow, eof }
    }

    /// The FOLLOW set of nonterminal `x` (terminals only; see
    /// [`eof_follows`](FollowSets::eof_follows)).
    pub fn follow(&self, x: NonTerminal) -> &TermSet {
        &self.follow[x.index()]
    }

    /// Can end-of-input immediately follow `x`?
    pub fn eof_follows(&self, x: NonTerminal) -> bool {
        self.eof[x.index()]
    }

    /// The per-nonterminal sets and EOF flags in index order
    /// (grammar-cache serialization).
    pub(crate) fn parts(&self) -> (&[TermSet], &[bool]) {
        (&self.follow, &self.eof)
    }

    /// Rebuilds from raw parts (grammar-cache deserialization).
    pub(crate) fn from_parts(follow: Vec<TermSet>, eof: Vec<bool>) -> Self {
        FollowSets { follow, eof }
    }
}

/// Convenience: does terminal `t` belong to FIRST of `form`, or — when
/// `form` is nullable — to the given FOLLOW set? This is the LL(1) table
/// membership condition.
pub fn ll1_selects(
    form: &[Symbol],
    t: Terminal,
    nullable: &NullableSet,
    first: &FirstSets,
    follow_of_lhs: &TermSet,
) -> bool {
    let f = first.first_of_form(form, nullable);
    if f.contains(t) {
        return true;
    }
    nullable.form_nullable(form) && follow_of_lhs.contains(t)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn setup() -> (Grammar, NullableSet, FirstSets, FollowSets) {
        // Classic expression grammar (right-recursive, LL(1)).
        let mut gb = GrammarBuilder::new();
        gb.rule("e", &["t", "e2"]);
        gb.rule("e2", &["Plus", "t", "e2"]);
        gb.rule("e2", &[]);
        gb.rule("t", &["f", "t2"]);
        gb.rule("t2", &["Star", "f", "t2"]);
        gb.rule("t2", &[]);
        gb.rule("f", &["LParen", "e", "RParen"]);
        gb.rule("f", &["Int"]);
        let g = gb.start("e").build().unwrap();
        let n = NullableSet::compute(&g);
        let f = FirstSets::compute(&g, &n);
        let fo = FollowSets::compute(&g, &n, &f);
        (g, n, f, fo)
    }

    fn t(g: &Grammar, name: &str) -> Terminal {
        g.symbols().lookup_terminal(name).unwrap()
    }

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    #[test]
    fn first_sets_of_expression_grammar() {
        let (g, _, first, _) = setup();
        let e_first = first.first(nt(&g, "e"));
        assert!(e_first.contains(t(&g, "LParen")));
        assert!(e_first.contains(t(&g, "Int")));
        assert!(!e_first.contains(t(&g, "Plus")));
        let e2_first = first.first(nt(&g, "e2"));
        assert!(e2_first.contains(t(&g, "Plus")));
        assert_eq!(e2_first.len(), 1);
    }

    #[test]
    fn follow_sets_of_expression_grammar() {
        let (g, _, _, follow) = setup();
        let e_follow = follow.follow(nt(&g, "e"));
        assert!(e_follow.contains(t(&g, "RParen")));
        assert!(follow.eof_follows(nt(&g, "e")));
        // FOLLOW(t) = {Plus, RParen, EOF}
        let t_follow = follow.follow(nt(&g, "t"));
        assert!(t_follow.contains(t(&g, "Plus")));
        assert!(t_follow.contains(t(&g, "RParen")));
        assert!(follow.eof_follows(nt(&g, "t")));
        assert!(!t_follow.contains(t(&g, "Star")));
    }

    #[test]
    fn first_of_form_skips_nullables() {
        let (g, n, first, _) = setup();
        let form = [Symbol::Nt(nt(&g, "e2")), Symbol::T(t(&g, "Star"))];
        let f = first.first_of_form(&form, &n);
        assert!(f.contains(t(&g, "Plus")));
        assert!(f.contains(t(&g, "Star")));
    }

    #[test]
    fn ll1_select_condition() {
        let (g, n, first, follow) = setup();
        // e2 -> ε is selected on RParen (in FOLLOW(e2)) but not on Plus.
        let e2 = nt(&g, "e2");
        assert!(ll1_selects(
            &[],
            t(&g, "RParen"),
            &n,
            &first,
            follow.follow(e2)
        ));
        assert!(!ll1_selects(
            &[],
            t(&g, "Star"),
            &n,
            &first,
            follow.follow(e2)
        ));
        // e2 -> Plus t e2 is selected on Plus.
        let plus_form = [
            Symbol::T(t(&g, "Plus")),
            Symbol::Nt(nt(&g, "t")),
            Symbol::Nt(e2),
        ];
        assert!(ll1_selects(
            &plus_form,
            t(&g, "Plus"),
            &n,
            &first,
            follow.follow(e2)
        ));
    }

    #[test]
    fn eof_propagates_through_nullable_tails() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "B"]);
        gb.rule("A", &["a"]);
        gb.rule("B", &[]);
        gb.rule("B", &["b"]);
        let g = gb.start("S").build().unwrap();
        let n = NullableSet::compute(&g);
        let f = FirstSets::compute(&g, &n);
        let fo = FollowSets::compute(&g, &n, &f);
        // B nullable, so EOF follows A as well as B.
        assert!(fo.eof_follows(nt(&g, "A")));
        assert!(fo.eof_follows(nt(&g, "B")));
    }
}
