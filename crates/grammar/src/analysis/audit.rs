//! Grammar audit pass: exact lookahead-bound certification plus
//! dead/shadowed-alternative detection, packaged as a machine-checkable
//! certificate (`costar-cert-v1`).
//!
//! Where `decide.rs` answers "how much prediction machinery does this
//! decision need?", this pass answers three sharper static questions per
//! multi-alternative nonterminal:
//!
//! * **Exact lookahead bound k.** For every pair of alternatives, the
//!   smallest number of lookahead observations (terminals, with the
//!   end-of-input mark counting as one observation) after which SLL
//!   prediction is guaranteed to have committed or rejected, measured on
//!   the pair's static closure graph (see `sll_graph`). The bound is
//!   exact *under the SLL abstraction*: the graph's longest walk through
//!   states where both alternatives survive is `k - 1`, so some input
//!   keeps the pair alive for `k - 1` observations (minimality) and no
//!   input keeps it alive for `k` (sufficiency). Because every concrete
//!   reachable configuration set is covered by an abstract state, the
//!   parse-time engine's lookahead at this decision never exceeds a
//!   finite certified `k` — the property the runtime certificate check
//!   in `costar-core` asserts. `k = None` means no finite bound exists
//!   (a live cycle or an end-of-input conflict in the pair graph) or
//!   exploration hit its caps; ALL(*) handles those decisions with
//!   unbounded regular lookahead, so `None` is a fact, not a failure.
//! * **Dead alternatives (lint L009).** A production whose right-hand
//!   side contains an unproductive nonterminal derives no terminal word
//!   at all: no input ever selects it. This is exact — productivity is a
//!   least fixpoint, not an approximation.
//! * **Shadowed alternatives (lint L010).** A later alternative whose
//!   derivable language is contained in an earlier alternative's can
//!   never win: wherever the later subparser survives, the earlier one
//!   survives too, and the engine's ambiguity resolution picks the
//!   lowest surviving alternative. Containment is established by
//!   exhaustively enumerating the later alternative's language within
//!   bounded caps, so the verdict is only ever emitted when it is exact;
//!   hitting a cap (or an infinite later language) yields no verdict.
//!   Syntactically identical right-hand sides are skipped — those are
//!   lint L005's territory.
//!
//! ## The certificate and its replay contract
//!
//! [`to_cert_json`] serializes the table as a `costar-cert-v1` document,
//! embedded under the `"audit"` key of the grammar-analysis disk cache.
//! On cache load, [`replay`] validates the certificate against the live
//! grammar by *replaying witnesses* instead of recomputing graphs: each
//! finite pair bound `k` carries a collide witness (a word of length
//! `k - 1` after which both alternatives still survive) and usually a
//! resolve witness (length `k`, after which at most one survives), and
//! replay re-simulates those few closure steps with
//! [`simulate_survivors`]. Dead verdicts are re-derived from the (cheap,
//! already validated) productivity analysis, and shadowed verdicts
//! re-run the bounded containment check for the claimed pairs only.
//! Replay validates every *claim* in the certificate; completeness —
//! that no finding was dropped — rests on the cache fingerprint, which
//! pins the exact grammar the table was computed from. One asymmetry is
//! inherent: an *inflated* bound is refuted by its (now inconsistent)
//! collide witness, but a *deflated* bound cannot be refuted by any
//! single witness — sufficiency is a universal property. Deflation is
//! instead caught at parse time by the engine's certificate check
//! (`on_certificate_check` fires with `ok = false` the moment a
//! prediction uses more lookahead than the certificate admits). Any
//! replay failure makes the cache load return `None`, and the caller
//! silently recomputes: a corrupted or tampered certificate costs a
//! recompute, never a wrong bound.

use crate::analysis::cache::grammar_fingerprint;
use crate::analysis::productivity::Productivity;
use crate::analysis::sll_graph::{
    distinct_alts, has_eof_conflict, moves_by_terminal, static_closure, CapHit, StaticConfig,
    StaticCont, MAX_CONFIGS_PER_STATE, MAX_STATES, MAX_WORK_ITEMS,
};
use crate::analysis::stable_frames::StableFrames;
use crate::grammar::{Grammar, ProdId};
use crate::json::JsonValue;
use crate::symbol::{NonTerminal, Symbol, Terminal};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// Schema tag of the serialized certificate; bump whenever the shape
/// changes so stale documents fail cleanly.
pub const CERT_SCHEMA: &str = "costar-cert-v1";

/// Exploration caps for the bounded shadow-containment enumeration.
const SHADOW_MAX_WORD: usize = 6;
const SHADOW_MAX_FORM: usize = 10;
const SHADOW_MAX_QUEUE: usize = 2_000;
const SHADOW_MAX_WORDS: usize = 64;

/// The audit verdict for one pair of alternatives of a decision
/// nonterminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairAudit {
    /// Earlier alternative of the pair (lower production id).
    pub a: ProdId,
    /// Later alternative of the pair.
    pub b: ProdId,
    /// Exact minimum lookahead bound distinguishing the pair under the
    /// SLL abstraction; `None` when no finite bound exists (or
    /// exploration hit a cap).
    pub k: Option<usize>,
    /// Collide witness: a word of length `k - 1` after which both
    /// alternatives still survive — proof `k` is minimal. `None` exactly
    /// when `k` is `None` or `k == 0`.
    pub collide: Option<Vec<Terminal>>,
    /// Resolve witness: the collide word extended by one terminal, after
    /// which at most one alternative survives. `None` when the deepest
    /// live state resolves only at end of input (or `k` is `None`).
    pub resolve: Option<Vec<Terminal>>,
}

/// Everything the audit established about one decision nonterminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditInfo {
    /// The decision nonterminal.
    pub nonterminal: NonTerminal,
    /// Decision-level lookahead bound: the maximum over all pair bounds,
    /// `None` if any pair is unbounded.
    pub k: Option<usize>,
    /// Total subset states explored across all pair graphs — a static
    /// upper-bound proxy for the decision's runtime SLL cache footprint.
    pub graph_states: usize,
    /// Per-pair bounds and witnesses, in (a, b) production-id order.
    pub pairs: Vec<PairAudit>,
    /// Dead alternatives: productions whose right-hand side contains an
    /// unproductive nonterminal (lint L009).
    pub dead: Vec<ProdId>,
    /// Shadowed alternatives as (earlier shadower, later shadowed) pairs
    /// (lint L010), at most one shadower recorded per shadowed
    /// alternative.
    pub shadowed: Vec<(ProdId, ProdId)>,
}

/// Aggregate audit statistics, reported by `costar audit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditStats {
    /// Number of decision points audited.
    pub decision_points: usize,
    /// Decisions with a finite certified lookahead bound.
    pub bounded: usize,
    /// Decisions with no finite bound (ALL(*) regular lookahead).
    pub unbounded: usize,
    /// The largest finite decision bound, 0 when none is finite.
    pub max_k: usize,
    /// Total dead alternatives across all decisions.
    pub dead_alternatives: usize,
    /// Total shadowed alternatives across all decisions.
    pub shadowed_alternatives: usize,
    /// Total pair-graph subset states explored.
    pub graph_states: usize,
}

/// The per-grammar audit table: one [`AuditInfo`] per multi-alternative
/// nonterminal, indexed by nonterminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditTable {
    by_nt: Vec<Option<AuditInfo>>,
}

impl AuditTable {
    /// Audits every decision point of `g`. Callers normally reach this
    /// through `GrammarAnalysis::compute`.
    pub fn compute(g: &Grammar, stable_frames: &StableFrames, productivity: &Productivity) -> Self {
        let by_nt = g
            .symbols()
            .nonterminals()
            .map(|x| audit_nonterminal(g, stable_frames, productivity, x))
            .collect();
        AuditTable { by_nt }
    }

    /// The audit info for `x`, or `None` when `x` has fewer than two
    /// alternatives.
    pub fn audit(&self, x: NonTerminal) -> Option<&AuditInfo> {
        self.by_nt.get(x.index()).and_then(|d| d.as_ref())
    }

    /// The finite certified lookahead bound for decision `x`, if any.
    pub fn k_bound(&self, x: NonTerminal) -> Option<usize> {
        self.audit(x).and_then(|d| d.k)
    }

    /// All audited decision points, in nonterminal-index order.
    pub fn iter(&self) -> impl Iterator<Item = &AuditInfo> {
        self.by_nt.iter().flatten()
    }

    /// Total pair-graph states across all decisions — consulted by the
    /// parse-time engine to pre-size its SLL cache.
    pub fn total_graph_states(&self) -> usize {
        self.iter().map(|d| d.graph_states).sum()
    }

    /// Rebuilds from raw rows (certificate deserialization).
    pub(crate) fn from_parts(by_nt: Vec<Option<AuditInfo>>) -> Self {
        AuditTable { by_nt }
    }

    /// Aggregate statistics over the table.
    pub fn stats(&self) -> AuditStats {
        let mut s = AuditStats::default();
        for d in self.iter() {
            s.decision_points += 1;
            match d.k {
                Some(k) => {
                    s.bounded += 1;
                    s.max_k = s.max_k.max(k);
                }
                None => s.unbounded += 1,
            }
            s.dead_alternatives += d.dead.len();
            s.shadowed_alternatives += d.shadowed.len();
            s.graph_states += d.graph_states;
        }
        s
    }
}

/// Is production `p` dead — does its right-hand side mention a
/// nonterminal that derives no terminal word?
pub(crate) fn is_dead(g: &Grammar, productivity: &Productivity, p: ProdId) -> bool {
    g.production(p)
        .rhs()
        .iter()
        .any(|s| matches!(s, Symbol::Nt(y) if !productivity.is_productive(*y)))
}

fn audit_nonterminal(
    g: &Grammar,
    sf: &StableFrames,
    productivity: &Productivity,
    x: NonTerminal,
) -> Option<AuditInfo> {
    let alts = g.alternatives(x);
    if alts.len() < 2 {
        return None;
    }
    let mut pairs = Vec::new();
    let mut graph_states = 0usize;
    let mut k: Option<usize> = Some(0);
    for (i, &p) in alts.iter().enumerate() {
        for &q in &alts[i + 1..] {
            let pair = pair_bound(g, sf, p, q);
            graph_states += pair.states;
            k = match (k, pair.k) {
                (Some(acc), Some(pk)) => Some(acc.max(pk)),
                _ => None,
            };
            pairs.push(PairAudit {
                a: p,
                b: q,
                k: pair.k,
                collide: pair.collide,
                resolve: pair.resolve,
            });
        }
    }
    let dead: Vec<ProdId> = alts
        .iter()
        .copied()
        .filter(|&p| is_dead(g, productivity, p))
        .collect();
    let mut shadowed = Vec::new();
    for (j, &q) in alts.iter().enumerate() {
        if let Some(&p) = alts[..j].iter().find(|&&p| is_shadowed(g, p, q)) {
            shadowed.push((p, q));
        }
    }
    Some(AuditInfo {
        nonterminal: x,
        k,
        graph_states,
        pairs,
        dead,
        shadowed,
    })
}

// ---------------------------------------------------------------------
// Exact pair bounds over the closure graph
// ---------------------------------------------------------------------

struct PairBound {
    k: Option<usize>,
    collide: Option<Vec<Terminal>>,
    resolve: Option<Vec<Terminal>>,
    states: usize,
}

/// Computes the exact lookahead bound for distinguishing alternatives
/// `a` and `b`, by materializing the pair's closure graph and measuring
/// the longest walk through *live* states (states where both
/// alternatives survive).
///
/// `k = None` when a live state has an end-of-input conflict (some input
/// is genuinely unresolvable), when the live subgraph has a cycle (the
/// pair stays alive on arbitrarily long inputs), or when exploration
/// hit a cap. Otherwise the live subgraph is a DAG rooted at the start
/// state and `k = 1 + longest live path`: after at most `k`
/// observations every walk has left the live region (committed or
/// rejected), and the longest-path word is a collide witness showing
/// `k - 1` observations do not suffice.
fn pair_bound(g: &Grammar, sf: &StableFrames, a: ProdId, b: ProdId) -> PairBound {
    let unbounded = |states: usize| PairBound {
        k: None,
        collide: None,
        resolve: None,
        states,
    };
    let mut budget = MAX_WORK_ITEMS;
    let init = vec![
        StaticConfig {
            alt: a,
            cont: StaticCont::Frames(vec![(a, 0)]),
        },
        StaticConfig {
            alt: b,
            cont: StaticCont::Frames(vec![(b, 0)]),
        },
    ];
    let start = match static_closure(g, sf, init, &mut budget) {
        Ok(s) => s,
        Err(CapHit) => return unbounded(0),
    };

    // BFS subset construction, retaining per-state liveness and the
    // live-to-live edge list (expansion is pruned at resolved states, so
    // every interned state is reachable through live interior states).
    let mut ids: BTreeMap<Vec<StaticConfig>, usize> = BTreeMap::new();
    let mut live: Vec<bool> = Vec::new();
    let mut edges: Vec<Vec<(Terminal, usize)>> = Vec::new();
    let mut queue: VecDeque<(usize, BTreeSet<StaticConfig>)> = VecDeque::new();

    ids.insert(start.iter().cloned().collect(), 0);
    live.push(false);
    edges.push(Vec::new());
    queue.push_back((0, start));

    while let Some((sid, state)) = queue.pop_front() {
        if state.len() > MAX_CONFIGS_PER_STATE {
            return unbounded(ids.len());
        }
        let is_live = distinct_alts(&state).len() >= 2;
        live[sid] = is_live;
        if !is_live {
            continue; // resolved: the engine commits or rejects here.
        }
        if has_eof_conflict(&state) {
            // Some input ending here is unresolvable: no finite bound.
            return unbounded(ids.len());
        }
        for (t, moved) in moves_by_terminal(g, &state) {
            let next = match static_closure(g, sf, moved, &mut budget) {
                Ok(s) => s,
                Err(CapHit) => return unbounded(ids.len()),
            };
            let next_key: Vec<StaticConfig> = next.iter().cloned().collect();
            let next_id = if let Some(&id) = ids.get(&next_key) {
                id
            } else {
                if ids.len() >= MAX_STATES {
                    return unbounded(ids.len());
                }
                let id = live.len();
                ids.insert(next_key, id);
                live.push(false);
                edges.push(Vec::new());
                queue.push_back((id, next));
                id
            };
            edges[sid].push((t, next_id));
        }
    }
    let states = ids.len();

    if !live[0] {
        // One alternative already dies in the initial closure: resolved
        // with zero observations.
        return PairBound {
            k: Some(0),
            collide: None,
            resolve: None,
            states,
        };
    }

    // Kahn's algorithm on the live subgraph: a leftover node means a
    // live cycle, i.e. some input keeps both alternatives alive forever.
    let n = live.len();
    let mut indeg = vec![0usize; n];
    for (u, es) in edges.iter().enumerate() {
        if !live[u] {
            continue;
        }
        for &(_, v) in es {
            if live[v] {
                indeg[v] += 1;
            }
        }
    }
    let mut topo: Vec<usize> = Vec::new();
    let mut ready: VecDeque<usize> = (0..n).filter(|&u| live[u] && indeg[u] == 0).collect();
    while let Some(u) = ready.pop_front() {
        topo.push(u);
        for &(_, v) in &edges[u] {
            if live[v] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push_back(v);
                }
            }
        }
    }
    let live_count = (0..n).filter(|&u| live[u]).count();
    if topo.len() != live_count {
        return unbounded(states);
    }

    // Longest path from the start through live states, with parent
    // pointers for the collide witness.
    let mut depth = vec![0usize; n];
    let mut parent: Vec<Option<(usize, Terminal)>> = vec![None; n];
    for &u in &topo {
        for &(t, v) in &edges[u] {
            if live[v] && depth[u] + 1 > depth[v] {
                depth[v] = depth[u] + 1;
                parent[v] = Some((u, t));
            }
        }
    }
    let deepest = match (0..n).filter(|&u| live[u]).max_by_key(|&u| depth[u]) {
        Some(u) => u,
        None => return unbounded(states),
    };
    let k = depth[deepest] + 1;
    let mut collide: Vec<Terminal> = Vec::new();
    let mut cursor = deepest;
    while let Some((prev, t)) = parent[cursor] {
        collide.push(t);
        cursor = prev;
    }
    collide.reverse();
    // Every edge out of the deepest live state targets a resolved state
    // (a live target would contradict maximality), so any of them
    // completes a resolve witness; pick the smallest terminal for
    // determinism. No edge at all means the state resolves only at end
    // of input.
    let resolve = edges[deepest].first().map(|&(t, _)| {
        let mut w = collide.clone();
        w.push(t);
        w
    });
    PairBound {
        k: Some(k),
        collide: Some(collide),
        resolve,
        states,
    }
}

/// Replays a word against the pair closure graph: runs the initial
/// closure, consumes each terminal of `word` (move + closure), and
/// returns the alternatives still surviving. `None` when a closure cap
/// is hit. This is the certificate-replay primitive: a handful of
/// closure steps per witness instead of a full graph exploration.
pub fn simulate_survivors(
    g: &Grammar,
    sf: &StableFrames,
    alts: &[ProdId],
    word: &[Terminal],
) -> Option<Vec<ProdId>> {
    let mut budget = MAX_WORK_ITEMS;
    let init: Vec<StaticConfig> = alts
        .iter()
        .map(|&p| StaticConfig {
            alt: p,
            cont: StaticCont::Frames(vec![(p, 0)]),
        })
        .collect();
    let mut state = static_closure(g, sf, init, &mut budget).ok()?;
    for &t in word {
        let moved = moves_by_terminal(g, &state).remove(&t).unwrap_or_default();
        state = static_closure(g, sf, moved, &mut budget).ok()?;
    }
    Some(distinct_alts(&state))
}

// ---------------------------------------------------------------------
// Shadow containment
// ---------------------------------------------------------------------

/// Exhaustively enumerates the terminal language of the sentential form
/// `start`, or `None` when any cap is hit (the language may be infinite
/// or merely too large — either way, no exact verdict).
fn enumerate_language(g: &Grammar, start: &[Symbol]) -> Option<BTreeSet<Vec<Terminal>>> {
    let mut out: BTreeSet<Vec<Terminal>> = BTreeSet::new();
    let mut seen: BTreeSet<(Vec<Terminal>, Vec<Symbol>)> = BTreeSet::new();
    let mut queue: VecDeque<(Vec<Terminal>, Vec<Symbol>)> = VecDeque::new();
    queue.push_back((Vec::new(), start.to_vec()));
    let mut processed = 0usize;
    while let Some((word, form)) = queue.pop_front() {
        processed += 1;
        if processed > SHADOW_MAX_QUEUE {
            return None;
        }
        if !seen.insert((word.clone(), form.clone())) {
            continue;
        }
        match form.first().copied() {
            None => {
                out.insert(word);
                if out.len() > SHADOW_MAX_WORDS {
                    return None;
                }
            }
            Some(Symbol::T(t)) => {
                if word.len() >= SHADOW_MAX_WORD {
                    return None; // a longer word may exist: inexact.
                }
                let mut w = word;
                w.push(t);
                queue.push_back((w, form[1..].to_vec()));
            }
            Some(Symbol::Nt(y)) => {
                for &r in g.alternatives(y) {
                    let mut nf: Vec<Symbol> = g.production(r).rhs().to_vec();
                    nf.extend_from_slice(&form[1..]);
                    if nf.len() > SHADOW_MAX_FORM {
                        return None; // pruning would make the set partial.
                    }
                    queue.push_back((word.clone(), nf));
                }
            }
        }
    }
    Some(out)
}

/// Can the sentential form `start` derive exactly `w`? Bounded search;
/// `false` on cap exhaustion (conservative — never claims derivability
/// it cannot show, so a shadow verdict is only strengthened).
fn derives_word(g: &Grammar, start: &[Symbol], w: &[Terminal]) -> bool {
    let mut seen: BTreeSet<(usize, Vec<Symbol>)> = BTreeSet::new();
    let mut stack: Vec<(usize, Vec<Symbol>)> = vec![(0, start.to_vec())];
    let mut processed = 0usize;
    while let Some((matched, form)) = stack.pop() {
        processed += 1;
        if processed > SHADOW_MAX_QUEUE {
            return false;
        }
        if !seen.insert((matched, form.clone())) {
            continue;
        }
        match form.first().copied() {
            None => {
                if matched == w.len() {
                    return true;
                }
            }
            Some(Symbol::T(t)) => {
                if matched < w.len() && w[matched] == t {
                    stack.push((matched + 1, form[1..].to_vec()));
                }
            }
            Some(Symbol::Nt(y)) => {
                for &r in g.alternatives(y) {
                    let mut nf: Vec<Symbol> = g.production(r).rhs().to_vec();
                    nf.extend_from_slice(&form[1..]);
                    if nf.len() <= SHADOW_MAX_FORM + w.len() {
                        stack.push((matched, nf));
                    }
                }
            }
        }
    }
    false
}

/// Does earlier alternative `p` shadow later alternative `q` — is
/// `lang(rhs(q))` a non-empty language wholly contained in
/// `lang(rhs(p))`? Exact when it answers `true`; caps and identical
/// right-hand sides yield `false` (no verdict).
pub(crate) fn is_shadowed(g: &Grammar, p: ProdId, q: ProdId) -> bool {
    if g.production(p).rhs() == g.production(q).rhs() {
        return false; // duplicate productions are lint L005's business.
    }
    let Some(lang_q) = enumerate_language(g, g.production(q).rhs()) else {
        return false;
    };
    if lang_q.is_empty() {
        return false; // empty language: dead (L009), not shadowed.
    }
    lang_q
        .iter()
        .all(|w| derives_word(g, g.production(p).rhs(), w))
}

// ---------------------------------------------------------------------
// Certificate serialization
// ---------------------------------------------------------------------

/// Renders the audit table as a deterministic `costar-cert-v1` JSON
/// document — the machine-checkable certificate embedded in the
/// grammar-analysis disk cache and printed by `costar audit
/// --format=json`.
pub fn to_cert_json(g: &Grammar, t: &AuditTable) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"schema\":\"{CERT_SCHEMA}\",\"fingerprint\":\"{:016x}\",\"decisions\":[",
        grammar_fingerprint(g)
    );
    let mut first_row = true;
    for d in t.iter() {
        if !first_row {
            out.push(',');
        }
        first_row = false;
        let _ = write!(out, "{{\"nt\":{},\"k\":", d.nonterminal.index());
        push_opt_usize(&mut out, d.k);
        let _ = write!(out, ",\"gs\":{},\"pairs\":[", d.graph_states);
        for (i, pa) in d.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"a\":{},\"b\":{},\"k\":",
                pa.a.index(),
                pa.b.index()
            );
            push_opt_usize(&mut out, pa.k);
            out.push_str(",\"collide\":");
            push_opt_word(&mut out, pa.collide.as_deref());
            out.push_str(",\"resolve\":");
            push_opt_word(&mut out, pa.resolve.as_deref());
            out.push('}');
        }
        out.push_str("],\"dead\":[");
        for (i, p) in d.dead.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", p.index());
        }
        out.push_str("],\"shadowed\":[");
        for (i, (p, q)) in d.shadowed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", p.index(), q.index());
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn push_opt_usize(out: &mut String, v: Option<usize>) {
    match v {
        None => out.push_str("null"),
        Some(n) => {
            let _ = write!(out, "{n}");
        }
    }
}

fn push_opt_word(out: &mut String, w: Option<&[Terminal]>) {
    match w {
        None => out.push_str("null"),
        Some(ts) => {
            out.push('[');
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", t.index());
            }
            out.push(']');
        }
    }
}

/// Parses a standalone `costar-cert-v1` document from text. Structural
/// validation only; pair with [`replay`] for the semantic half.
pub fn parse_cert_json(g: &Grammar, text: &str) -> Option<AuditTable> {
    cert_from_json(g, &crate::json::parse_json(text)?)
}

/// Parses a `costar-cert-v1` document (the value under the cache's
/// `"audit"` key) back into an [`AuditTable`]. Structural validation
/// only — schema, fingerprint, bounds-checked indices, ascending unique
/// rows; the semantic half lives in [`replay`]. `None` on any mismatch.
pub(crate) fn cert_from_json(g: &Grammar, v: &JsonValue) -> Option<AuditTable> {
    if v.get("schema")?.as_str()? != CERT_SCHEMA {
        return None;
    }
    if v.get("fingerprint")?.as_str()? != format!("{:016x}", grammar_fingerprint(g)) {
        return None;
    }
    let nts = g.num_nonterminals();
    let ts = g.num_terminals();
    let prods = g.num_productions();
    let mut by_nt: Vec<Option<AuditInfo>> = vec![None; nts];
    let mut last_nt: Option<usize> = None;
    for row in v.get("decisions")?.as_arr()? {
        let nt = row.get("nt")?.as_usize()?;
        if nt >= nts || last_nt.is_some_and(|prev| nt <= prev) {
            return None;
        }
        last_nt = Some(nt);
        let mut pairs = Vec::new();
        for pr in row.get("pairs")?.as_arr()? {
            let a = pr.get("a")?.as_usize()?;
            let b = pr.get("b")?.as_usize()?;
            if a >= prods || b >= prods {
                return None;
            }
            pairs.push(PairAudit {
                a: ProdId::from_index(a),
                b: ProdId::from_index(b),
                k: read_opt_usize(pr.get("k")?)?,
                collide: read_opt_word(pr.get("collide")?, ts)?,
                resolve: read_opt_word(pr.get("resolve")?, ts)?,
            });
        }
        let mut dead = Vec::new();
        for p in row.get("dead")?.as_arr()? {
            let i = p.as_usize()?;
            if i >= prods {
                return None;
            }
            dead.push(ProdId::from_index(i));
        }
        let mut shadowed = Vec::new();
        for pair in row.get("shadowed")?.as_arr()? {
            let pq = pair.as_arr()?;
            if pq.len() != 2 {
                return None;
            }
            let p = pq.first()?.as_usize()?;
            let q = pq.get(1)?.as_usize()?;
            if p >= prods || q >= prods {
                return None;
            }
            shadowed.push((ProdId::from_index(p), ProdId::from_index(q)));
        }
        by_nt[nt] = Some(AuditInfo {
            nonterminal: NonTerminal::from_index(nt),
            k: read_opt_usize(row.get("k")?)?,
            graph_states: row.get("gs")?.as_usize()?,
            pairs,
            dead,
            shadowed,
        });
    }
    Some(AuditTable::from_parts(by_nt))
}

fn read_opt_usize(v: &JsonValue) -> Option<Option<usize>> {
    if v.is_null() {
        Some(None)
    } else {
        Some(Some(v.as_usize()?))
    }
}

fn read_opt_word(v: &JsonValue, ts: usize) -> Option<Option<Vec<Terminal>>> {
    if v.is_null() {
        return Some(None);
    }
    let mut word = Vec::new();
    for it in v.as_arr()? {
        let i = it.as_usize()?;
        if i >= ts {
            return None;
        }
        word.push(Terminal::from_index(i));
    }
    Some(Some(word))
}

// ---------------------------------------------------------------------
// Certificate replay
// ---------------------------------------------------------------------

/// Semantically validates a deserialized certificate against the live
/// grammar by replaying its witnesses (see the module docs for the
/// contract). Returns `false` on the first claim that fails to replay;
/// the cache loader then discards the document and recomputes.
pub fn replay(
    g: &Grammar,
    stable_frames: &StableFrames,
    productivity: &Productivity,
    table: &AuditTable,
) -> bool {
    // Row coverage: exactly the multi-alternative nonterminals.
    for x in g.symbols().nonterminals() {
        if (g.alternatives(x).len() >= 2) != table.audit(x).is_some() {
            return false;
        }
    }
    for info in table.iter() {
        let alts = g.alternatives(info.nonterminal);
        // Pairs must enumerate the alternative pairs in canonical order.
        let mut want: Vec<(ProdId, ProdId)> = Vec::new();
        for (i, &p) in alts.iter().enumerate() {
            for &q in &alts[i + 1..] {
                want.push((p, q));
            }
        }
        if info.pairs.len() != want.len() {
            return false;
        }
        let mut decision_k: Option<usize> = Some(0);
        for (pa, &(p, q)) in info.pairs.iter().zip(&want) {
            if pa.a != p || pa.b != q {
                return false;
            }
            decision_k = match (decision_k, pa.k) {
                (Some(acc), Some(pk)) => Some(acc.max(pk)),
                _ => None,
            };
            match (pa.k, &pa.collide) {
                (Some(0), None) => {
                    // Zero-observation resolution: the initial closure
                    // must already drop one alternative.
                    if pa.resolve.is_some() {
                        return false;
                    }
                    match simulate_survivors(g, stable_frames, &[p, q], &[]) {
                        Some(s) if s.len() <= 1 => {}
                        _ => return false,
                    }
                }
                (Some(k), Some(collide)) => {
                    // Minimality: after k - 1 observations both survive.
                    if collide.len() + 1 != k {
                        return false;
                    }
                    match simulate_survivors(g, stable_frames, &[p, q], collide) {
                        Some(s) if s.len() == 2 => {}
                        _ => return false,
                    }
                    // Sufficiency spot check: the resolve witness, when
                    // present, extends the collide word by one terminal
                    // and leaves at most one survivor.
                    if let Some(resolve) = &pa.resolve {
                        if resolve.len() != k || !resolve.starts_with(collide) {
                            return false;
                        }
                        match simulate_survivors(g, stable_frames, &[p, q], resolve) {
                            Some(s) if s.len() <= 1 => {}
                            _ => return false,
                        }
                    }
                }
                // A positive finite bound must carry its collide
                // witness; an unbounded pair claims nothing replayable.
                (Some(_), None) => return false,
                (None, _) => {}
            }
        }
        if info.k != decision_k {
            return false;
        }
        // Dead verdicts re-derive exactly from productivity.
        for &p in alts {
            if info.dead.contains(&p) != is_dead(g, productivity, p) {
                return false;
            }
        }
        // Shadow claims re-run the bounded containment check, and the
        // pair must be correctly ordered within this decision.
        for &(p, q) in &info.shadowed {
            let ip = alts.iter().position(|&r| r == p);
            let iq = alts.iter().position(|&r| r == q);
            match (ip, iq) {
                (Some(ip), Some(iq)) if ip < iq => {}
                _ => return false,
            }
            if !is_shadowed(g, p, q) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::analysis::nullable::NullableSet;
    use crate::grammar::GrammarBuilder;
    use crate::json::parse_json;

    fn setup(
        build: impl FnOnce(&mut GrammarBuilder),
    ) -> (Grammar, StableFrames, Productivity, AuditTable) {
        let mut gb = GrammarBuilder::new();
        build(&mut gb);
        let g = gb.build().unwrap();
        let n = NullableSet::compute(&g);
        let sf = StableFrames::compute(&g, &n);
        let pr = Productivity::compute(&g);
        let t = AuditTable::compute(&g, &sf, &pr);
        (g, sf, pr, t)
    }

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    #[test]
    fn ll1_decision_gets_k_one() {
        // A -> a X | b Y: one token always decides.
        let (g, _, _, t) = setup(|gb| {
            gb.rule("A", &["a", "X"]);
            gb.rule("A", &["b", "Y"]);
            gb.rule("X", &["x"]);
            gb.rule("Y", &["y"]);
            gb.start("A");
        });
        let info = t.audit(nt(&g, "A")).unwrap();
        assert_eq!(info.k, Some(1));
        assert_eq!(info.pairs.len(), 1);
        let pa = &info.pairs[0];
        assert_eq!(pa.k, Some(1));
        assert_eq!(pa.collide.as_deref(), Some(&[][..]), "empty collide word");
        let resolve = pa.resolve.as_ref().unwrap();
        assert_eq!(resolve.len(), 1);
        assert!(info.dead.is_empty());
        assert!(info.shadowed.is_empty());
    }

    #[test]
    fn fixed_left_factor_gets_exact_k() {
        // S -> a b c | a b d: identical 2-token prefix, k = 3.
        let (g, sf, _, t) = setup(|gb| {
            gb.rule("S", &["a", "b", "c"]);
            gb.rule("S", &["a", "b", "d"]);
            gb.start("S");
        });
        let info = t.audit(nt(&g, "S")).unwrap();
        assert_eq!(info.k, Some(3), "{info:?}");
        let pa = &info.pairs[0];
        let collide = pa.collide.as_ref().unwrap();
        assert_eq!(collide.len(), 2);
        // The collide witness really keeps both alive...
        let s = simulate_survivors(&g, &sf, &[pa.a, pa.b], collide).unwrap();
        assert_eq!(s.len(), 2);
        // ...and the resolve witness really resolves.
        let resolve = pa.resolve.as_ref().unwrap();
        let s = simulate_survivors(&g, &sf, &[pa.a, pa.b], resolve).unwrap();
        assert!(s.len() <= 1);
    }

    #[test]
    fn fig2_pair_is_unbounded_under_sll() {
        // Paper Fig. 2: S -> A c | A d with right-recursive A. SLL always
        // resolves (SllSafe) but input a^n b needs n + 2 observations, so
        // there is no finite bound.
        let (g, _, _, t) = setup(|gb| {
            gb.rule("S", &["A", "c"]);
            gb.rule("S", &["A", "d"]);
            gb.rule("A", &["a", "A"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        });
        let info = t.audit(nt(&g, "S")).unwrap();
        assert_eq!(info.k, None, "{info:?}");
        // The inner A decision (a A | b) is plain LL(1): k = 1.
        assert_eq!(t.audit(nt(&g, "A")).unwrap().k, Some(1));
    }

    #[test]
    fn ambiguous_pair_is_unbounded() {
        // Fig. 6: both alternatives accept "a" at EOF — no bound exists.
        let (g, _, _, t) = setup(|gb| {
            gb.rule("S", &["X"]);
            gb.rule("S", &["Y"]);
            gb.rule("X", &["a"]);
            gb.rule("Y", &["a"]);
            gb.start("S");
        });
        assert_eq!(t.audit(nt(&g, "S")).unwrap().k, None);
    }

    #[test]
    fn dead_alternative_detected() {
        // U has no productive production (U -> u U only), so S -> U x is
        // dead while S -> a stays live.
        let (g, _, pr, t) = setup(|gb| {
            gb.rule("S", &["a"]);
            gb.rule("S", &["U", "x"]);
            gb.rule("U", &["u", "U"]);
            gb.start("S");
        });
        let info = t.audit(nt(&g, "S")).unwrap();
        assert_eq!(info.dead.len(), 1);
        assert!(is_dead(&g, &pr, info.dead[0]));
        let rendered = g.render_production(info.dead[0]);
        assert!(rendered.contains('U'), "{rendered}");
    }

    #[test]
    fn shadowed_alternative_detected() {
        // S -> A | a with A -> a | b: the later "a" alternative's
        // language {a} is strictly inside A's {a, b}.
        let (g, _, _, t) = setup(|gb| {
            gb.rule("S", &["A"]);
            gb.rule("S", &["a"]);
            gb.rule("A", &["a"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        });
        let info = t.audit(nt(&g, "S")).unwrap();
        assert_eq!(info.shadowed.len(), 1);
        let (p, q) = info.shadowed[0];
        assert_eq!(g.render_production(q), "S -> a");
        assert!(g.render_production(p).starts_with("S -> A"));
    }

    #[test]
    fn infinite_later_language_is_not_flagged() {
        // The later alternative derives an infinite language; no exact
        // containment verdict is possible, so nothing is flagged.
        let (g, _, _, t) = setup(|gb| {
            gb.rule("S", &["L"]);
            gb.rule("S", &["a", "S"]);
            gb.rule("L", &["a", "L"]);
            gb.rule("L", &["a"]);
            gb.start("S");
        });
        let info = t.audit(nt(&g, "S")).unwrap();
        assert!(info.shadowed.is_empty(), "{info:?}");
    }

    #[test]
    fn duplicate_rhs_is_not_shadowed() {
        let (g, _, _, t) = setup(|gb| {
            gb.rule("S", &["a"]);
            gb.rule("S", &["a"]);
            gb.start("S");
        });
        assert!(t.audit(nt(&g, "S")).unwrap().shadowed.is_empty());
    }

    #[test]
    fn cert_roundtrip_and_replay() {
        let (g, sf, pr, t) = setup(|gb| {
            gb.rule("S", &["a", "b", "c"]);
            gb.rule("S", &["a", "b", "d"]);
            gb.rule("B", &["x"]);
            gb.rule("B", &["y"]);
            gb.start("S");
        });
        let json = to_cert_json(&g, &t);
        let v = parse_json(&json).unwrap();
        let back = cert_from_json(&g, &v).unwrap();
        assert_eq!(t, back);
        assert!(replay(&g, &sf, &pr, &back));
        // Serialization is deterministic.
        assert_eq!(json, to_cert_json(&g, &back));
    }

    #[test]
    fn replay_rejects_tampered_bounds_and_witnesses() {
        let (g, sf, pr, t) = setup(|gb| {
            gb.rule("S", &["a", "b", "c"]);
            gb.rule("S", &["a", "b", "d"]);
            gb.start("S");
        });
        let x = nt(&g, "S");
        // Inflated k without a matching collide witness.
        let mut bad = t.clone();
        let rows = vec![None; g.num_nonterminals()];
        let mut by_nt = rows.clone();
        let mut info = bad.audit(x).unwrap().clone();
        info.k = info.k.map(|k| k + 1);
        info.pairs[0].k = info.pairs[0].k.map(|k| k + 1);
        by_nt[x.index()] = Some(info);
        bad = AuditTable::from_parts(by_nt);
        assert!(!replay(&g, &sf, &pr, &bad));
        // Deflated k with a consistent (shorter) collide witness. Replay
        // accepts this: sufficiency is a universal property no single
        // witness can refute, so understating a bound is out of static
        // replay's reach by design — the parse-time certificate check
        // (`on_certificate_check`) flags it on the first input that
        // needs more lookahead than the certificate admits.
        let mut by_nt = rows.clone();
        let mut info = t.audit(x).unwrap().clone();
        info.k = Some(1);
        info.pairs[0].k = Some(1);
        info.pairs[0].collide = Some(Vec::new());
        info.pairs[0].resolve = None;
        by_nt[x.index()] = Some(info);
        bad = AuditTable::from_parts(by_nt);
        assert!(replay(&g, &sf, &pr, &bad), "deflation is a runtime matter");
        // Bogus dead claim.
        let mut by_nt = rows.clone();
        let mut info = t.audit(x).unwrap().clone();
        info.dead = vec![info.pairs[0].a];
        by_nt[x.index()] = Some(info);
        bad = AuditTable::from_parts(by_nt);
        assert!(!replay(&g, &sf, &pr, &bad));
        // Bogus shadow claim.
        let mut by_nt = rows;
        let mut info = t.audit(x).unwrap().clone();
        info.shadowed = vec![(info.pairs[0].a, info.pairs[0].b)];
        by_nt[x.index()] = Some(info);
        bad = AuditTable::from_parts(by_nt);
        assert!(!replay(&g, &sf, &pr, &bad));
        // Missing decision row.
        bad = AuditTable::from_parts(vec![None; g.num_nonterminals()]);
        assert!(!replay(&g, &sf, &pr, &bad));
    }

    #[test]
    fn cert_rejects_wrong_schema_and_out_of_bounds() {
        let (g, _, _, t) = setup(|gb| {
            gb.rule("S", &["a"]);
            gb.rule("S", &["b"]);
            gb.start("S");
        });
        let json = to_cert_json(&g, &t);
        let bad = json.replace(CERT_SCHEMA, "costar-cert-v0");
        assert!(cert_from_json(&g, &parse_json(&bad).unwrap()).is_none());
        let bad = json.replace("\"dead\":[]", "\"dead\":[99]");
        assert!(cert_from_json(&g, &parse_json(&bad).unwrap()).is_none());
    }

    #[test]
    fn stats_aggregate() {
        let (g, _, _, t) = setup(|gb| {
            gb.rule("S", &["a", "b", "c"]);
            gb.rule("S", &["a", "b", "d"]);
            gb.rule("B", &["x"]);
            gb.rule("B", &["y"]);
            gb.start("S");
        });
        let s = t.stats();
        assert_eq!(s.decision_points, 2);
        assert_eq!(s.bounded, 2);
        assert_eq!(s.unbounded, 0);
        assert_eq!(s.max_k, 3);
        assert!(s.graph_states >= 2);
        assert_eq!(s.graph_states, t.total_graph_states());
        let _ = nt(&g, "S");
    }
}
