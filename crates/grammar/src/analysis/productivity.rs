//! Productivity analysis: which nonterminals derive at least one terminal
//! string.
//!
//! An unproductive nonterminal can never finish a derivation — every
//! expansion gets stuck expanding forever (e.g. `X → a X` with no base
//! case). A parse that predicts into one is doomed to reject or spin until
//! a budget fires, so the linter flags them. A production is *productive*
//! when every symbol of its right-hand side is (terminals trivially are);
//! the standard monotone fixpoint computes the productive set, and for
//! each productive nonterminal we retain a witness production whose
//! right-hand side was productive first, from which a finite derivation
//! can always be completed.

use crate::grammar::{Grammar, ProdId};
use crate::sets::NtSet;
use crate::symbol::{NonTerminal, Symbol};

/// Result of the productivity analysis.
#[derive(Debug, Clone)]
pub struct Productivity {
    productive: NtSet,
    /// For each productive nonterminal, one production usable to complete
    /// a finite derivation.
    witness: Vec<Option<ProdId>>,
}

impl Productivity {
    /// Standard least-fixpoint iteration.
    pub fn compute(g: &Grammar) -> Self {
        let n = g.num_nonterminals();
        let mut productive = NtSet::with_capacity(n);
        let mut witness: Vec<Option<ProdId>> = vec![None; n];
        let mut changed = true;
        while changed {
            changed = false;
            for (pid, p) in g.iter() {
                if productive.contains(p.lhs()) {
                    continue;
                }
                let rhs_productive = p.rhs().iter().all(|&s| match s {
                    Symbol::T(_) => true,
                    Symbol::Nt(y) => productive.contains(y),
                });
                if rhs_productive {
                    productive.insert(p.lhs());
                    witness[p.lhs().index()] = Some(pid);
                    changed = true;
                }
            }
        }
        Productivity {
            productive,
            witness,
        }
    }

    /// Does `x` derive at least one terminal string?
    pub fn is_productive(&self, x: NonTerminal) -> bool {
        self.productive.contains(x)
    }

    /// All productive nonterminals.
    pub fn productive_set(&self) -> &NtSet {
        &self.productive
    }

    /// The witness productions (grammar-cache serialization).
    pub(crate) fn witnesses(&self) -> &[Option<ProdId>] {
        &self.witness
    }

    /// Rebuilds from raw parts (grammar-cache deserialization).
    pub(crate) fn from_parts(productive: NtSet, witness: Vec<Option<ProdId>>) -> Self {
        Productivity {
            productive,
            witness,
        }
    }

    /// Nonterminals that have productions but can never finish a
    /// derivation.
    pub fn unproductive(&self, g: &Grammar) -> Vec<NonTerminal> {
        g.symbols()
            .nonterminals()
            .filter(|&x| !g.alternatives(x).is_empty() && !self.productive.contains(x))
            .collect()
    }

    /// A production completing a finite derivation of `x`, if `x` is
    /// productive.
    pub fn witness_production(&self, x: NonTerminal) -> Option<ProdId> {
        self.witness[x.index()]
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    #[test]
    fn terminal_only_rules_are_productive() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "b"]);
        let g = gb.start("S").build().unwrap();
        let p = Productivity::compute(&g);
        assert!(p.is_productive(nt(&g, "S")));
        assert!(p.unproductive(&g).is_empty());
    }

    #[test]
    fn self_feeding_nonterminal_is_unproductive() {
        // X -> a X is the classic bottomless pit.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["X"]);
        gb.rule("S", &["ok"]);
        gb.rule("X", &["a", "X"]);
        let g = gb.start("S").build().unwrap();
        let p = Productivity::compute(&g);
        assert!(!p.is_productive(nt(&g, "X")));
        assert!(p.is_productive(nt(&g, "S")));
        assert_eq!(p.unproductive(&g), vec![nt(&g, "X")]);
    }

    #[test]
    fn mutual_recursion_without_base_case() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["x"]);
        gb.rule("A", &["B"]);
        gb.rule("B", &["A"]);
        let g = gb.start("S").build().unwrap();
        let p = Productivity::compute(&g);
        assert!(!p.is_productive(nt(&g, "A")));
        assert!(!p.is_productive(nt(&g, "B")));
    }

    #[test]
    fn nullable_is_productive() {
        // Deriving ε counts as deriving a (zero-length) terminal string.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "x"]);
        gb.rule("A", &[]);
        let g = gb.start("S").build().unwrap();
        let p = Productivity::compute(&g);
        assert!(p.is_productive(nt(&g, "A")));
    }

    #[test]
    fn witness_production_has_productive_rhs() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["S", "a"]); // unproductive alternative alone…
        gb.rule("S", &["b"]); // …but this one grounds it
        let g = gb.start("S").build().unwrap();
        let p = Productivity::compute(&g);
        let s = nt(&g, "S");
        assert!(p.is_productive(s));
        let pid = p.witness_production(s).unwrap();
        assert_eq!(g.production(pid).rhs().len(), 1);
    }
}
