//! Parse trees and forests.
//!
//! Trees `v ::= Leaf(t) | Node(X, f)` and forests `f ::= • | v, f`
//! (paper Fig. 1). A successful CoStar parse returns a tree with the start
//! symbol at the root and the input word at the leaves.

use crate::symbol::{NonTerminal, Symbol};
use crate::token::{Span, Token};
use crate::SymbolTable;
use std::fmt::Write as _;

/// The payload of a [`Tree::Error`] node, spliced into a tree by the
/// recovering parser when panic-mode resynchronization discards input or
/// abandons an incomplete production. Error nodes are *not* part of the
/// paper's derivation relation: a tree containing one fails `check_tree`
/// by construction, which is exactly right — it is a partial tree, not a
/// proof of membership.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ErrorNode {
    /// Source location where the error was detected.
    pub span: Span,
    /// Tokens discarded during resynchronization, in input order (empty
    /// for pure "missing symbol" repairs).
    pub skipped: Vec<Token>,
    /// Human-readable description of what went wrong.
    pub reason: String,
}

/// A parse tree.
///
/// # Examples
///
/// ```
/// use costar_grammar::{SymbolTable, Token, Tree};
/// let mut tab = SymbolTable::new();
/// let b = tab.terminal("b");
/// let a_nt = tab.nonterminal("A");
/// let tree = Tree::Node(a_nt, vec![Tree::Leaf(Token::new(b, "b"))]);
/// assert_eq!(tree.yield_tokens().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Tree {
    /// A leaf holding a consumed token.
    Leaf(Token),
    /// An interior node: a nonterminal and the forest derived from the
    /// right-hand side chosen for it.
    Node(NonTerminal, Vec<Tree>),
    /// A recovery artifact: input skipped or a symbol abandoned during
    /// panic-mode resynchronization. Only the recovering parser produces
    /// these; plain parses never do.
    Error(ErrorNode),
}

/// A forest: the subtrees derived from a sentential form.
pub type Forest = Vec<Tree>;

impl Tree {
    /// The grammar symbol at the root of this tree, or `None` for an
    /// error node (which stands for no grammar symbol).
    pub fn root_symbol(&self) -> Option<Symbol> {
        match self {
            Tree::Leaf(t) => Some(Symbol::T(t.terminal())),
            Tree::Node(x, _) => Some(Symbol::Nt(*x)),
            Tree::Error(_) => None,
        }
    }

    /// `true` when this tree or any subtree is an error node — i.e. the
    /// tree was produced by recovery, not by a clean derivation.
    pub fn has_errors(&self) -> bool {
        match self {
            Tree::Leaf(_) => false,
            Tree::Node(_, children) => children.iter().any(Tree::has_errors),
            Tree::Error(_) => true,
        }
    }

    /// The word at the leaves of this tree, in left-to-right order.
    pub fn yield_tokens(&self) -> Vec<Token> {
        let mut out = Vec::new();
        self.collect_yield(&mut out);
        out
    }

    fn collect_yield(&self, out: &mut Vec<Token>) {
        match self {
            Tree::Leaf(t) => out.push(t.clone()),
            Tree::Node(_, children) => {
                for c in children {
                    c.collect_yield(out);
                }
            }
            // Skipped tokens were consumed input: they belong to the yield
            // so a recovered tree still reproduces what was read.
            Tree::Error(e) => out.extend(e.skipped.iter().cloned()),
        }
    }

    /// Number of leaves in the tree (the length of its yield; skipped
    /// tokens inside error nodes count).
    pub fn leaf_count(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node(_, children) => children.iter().map(Tree::leaf_count).sum(),
            Tree::Error(e) => e.skipped.len(),
        }
    }

    /// Number of nodes (interior + leaves) in the tree.
    pub fn size(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node(_, children) => 1 + children.iter().map(Tree::size).sum::<usize>(),
            Tree::Error(_) => 1,
        }
    }

    /// Height of the tree: a leaf has height 1.
    pub fn height(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node(_, children) => 1 + children.iter().map(Tree::height).max().unwrap_or(0),
            Tree::Error(_) => 1,
        }
    }

    /// Bottom-up fold over the tree: the basis for user-defined semantic
    /// analyses (the paper's §8 "semantic actions" future work).
    ///
    /// `leaf` maps each token to a semantic value; `node` combines a
    /// nonterminal and its children's values; `err` values an error node
    /// spliced in by the recovering parser (trees from plain parses never
    /// contain any, so `err` can simply be `|_| unreachable-value` there).
    ///
    /// # Examples
    ///
    /// Counting leaves via a fold:
    ///
    /// ```
    /// use costar_grammar::{SymbolTable, Token, Tree};
    /// let mut tab = SymbolTable::new();
    /// let t = Token::new(tab.terminal("a"), "a");
    /// let tree = Tree::Node(tab.nonterminal("X"), vec![Tree::Leaf(t)]);
    /// let n: usize = tree.fold(
    ///     &mut |_| 1usize,
    ///     &mut |_, kids| kids.iter().sum(),
    ///     &mut |e| e.skipped.len(),
    /// );
    /// assert_eq!(n, 1);
    /// ```
    pub fn fold<V>(
        &self,
        leaf: &mut impl FnMut(&Token) -> V,
        node: &mut impl FnMut(NonTerminal, Vec<V>) -> V,
        err: &mut impl FnMut(&ErrorNode) -> V,
    ) -> V {
        match self {
            Tree::Leaf(t) => leaf(t),
            Tree::Node(x, children) => {
                let vals = children.iter().map(|c| c.fold(leaf, node, err)).collect();
                node(*x, vals)
            }
            Tree::Error(e) => err(e),
        }
    }

    /// Pretty-prints the tree with indentation, resolving symbol names via
    /// `tab`. Intended for debugging and examples.
    pub fn render(&self, tab: &SymbolTable) -> String {
        let mut out = String::new();
        self.render_into(tab, 0, &mut out);
        out
    }

    fn render_into(&self, tab: &SymbolTable, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            Tree::Leaf(t) => {
                let _ = writeln!(out, "{} {:?}", tab.terminal_name(t.terminal()), t.lexeme());
            }
            Tree::Node(x, children) => {
                let _ = writeln!(out, "{}", tab.nonterminal_name(*x));
                for c in children {
                    c.render_into(tab, depth + 1, out);
                }
            }
            Tree::Error(e) => {
                let _ = writeln!(
                    out,
                    "<error: {} ({} token(s) skipped)>",
                    e.reason,
                    e.skipped.len()
                );
            }
        }
    }
}

/// The word at the leaves of a forest, in left-to-right order.
pub fn forest_yield(forest: &[Tree]) -> Vec<Token> {
    let mut out = Vec::new();
    for t in forest {
        t.collect_yield(&mut out);
    }
    out
}

/// The root symbols of a forest, in order. For a forest derived from a
/// sentential form `γ`, these roots equal `γ`. Error nodes stand for no
/// grammar symbol and are skipped — a recovered forest's roots spell the
/// symbols that *were* derived around the damage.
pub fn forest_roots(forest: &[Tree]) -> Vec<Symbol> {
    forest.iter().filter_map(Tree::root_symbol).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolTable;

    fn sample(tab: &mut SymbolTable) -> Tree {
        // S -> A d ; A -> a A | b, parsing "abd" as in paper Fig. 2.
        let a = tab.terminal("a");
        let b = tab.terminal("b");
        let d = tab.terminal("d");
        let s = tab.nonterminal("S");
        let a_nt = tab.nonterminal("A");
        Tree::Node(
            s,
            vec![
                Tree::Node(
                    a_nt,
                    vec![
                        Tree::Leaf(Token::new(a, "a")),
                        Tree::Node(a_nt, vec![Tree::Leaf(Token::new(b, "b"))]),
                    ],
                ),
                Tree::Leaf(Token::new(d, "d")),
            ],
        )
    }

    #[test]
    fn yield_is_left_to_right() {
        let mut tab = SymbolTable::new();
        let tree = sample(&mut tab);
        let lexemes: Vec<String> = tree
            .yield_tokens()
            .iter()
            .map(|t| t.lexeme().to_owned())
            .collect();
        assert_eq!(lexemes, vec!["a", "b", "d"]);
    }

    #[test]
    fn counts_and_height() {
        let mut tab = SymbolTable::new();
        let tree = sample(&mut tab);
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(tree.size(), 6);
        assert_eq!(tree.height(), 4);
    }

    #[test]
    fn root_symbol_matches_structure() {
        let mut tab = SymbolTable::new();
        let tree = sample(&mut tab);
        assert_eq!(
            tree.root_symbol(),
            Some(Symbol::Nt(tab.lookup_nonterminal("S").unwrap()))
        );
    }

    #[test]
    fn error_nodes_carry_skipped_yield_and_no_root_symbol() {
        let mut tab = SymbolTable::new();
        let junk = Token::new(tab.terminal("junk"), "?!");
        let err = Tree::Error(ErrorNode {
            span: Span::at_offset(4),
            skipped: vec![junk.clone()],
            reason: "unexpected token".to_owned(),
        });
        assert_eq!(err.root_symbol(), None);
        assert!(err.has_errors());
        assert_eq!(err.yield_tokens(), vec![junk]);
        assert_eq!(err.leaf_count(), 1);
        assert_eq!(err.size(), 1);
        assert_eq!(err.height(), 1);

        let s = tab.nonterminal("S");
        let wrapped = Tree::Node(s, vec![err.clone()]);
        assert!(wrapped.has_errors());
        // Error roots are transparent to forest_roots.
        assert_eq!(forest_roots(&[err]), vec![]);
        assert_eq!(
            forest_roots(std::slice::from_ref(&wrapped)),
            vec![Symbol::Nt(s)]
        );
        assert!(wrapped.render(&tab).contains("error: unexpected token"));
        // Clean trees report no errors.
        let clean = sample(&mut tab);
        assert!(!clean.has_errors());
    }

    #[test]
    fn forest_helpers() {
        let mut tab = SymbolTable::new();
        let tree = sample(&mut tab);
        let forest = vec![tree.clone(), tree];
        assert_eq!(forest_yield(&forest).len(), 6);
        let roots = forest_roots(&forest);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0], roots[1]);
    }

    #[test]
    fn fold_computes_leaf_count() {
        let mut tab = SymbolTable::new();
        let tree = sample(&mut tab);
        let n: usize = tree.fold(
            &mut |_| 1usize,
            &mut |_, kids| kids.iter().sum(),
            &mut |e| e.skipped.len(),
        );
        assert_eq!(n, tree.leaf_count());
    }

    #[test]
    fn render_lists_all_symbols() {
        let mut tab = SymbolTable::new();
        let tree = sample(&mut tab);
        let s = tree.render(&tab);
        for name in ["S", "A", "a", "b", "d"] {
            assert!(s.contains(name), "missing {name} in {s}");
        }
    }
}
