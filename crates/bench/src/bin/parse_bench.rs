//! Emits the parse observability report (`BENCH_parse.json`).
//!
//! ```text
//! parse_bench [--quick|--standard] [--out PATH] [--check BASELINE]
//! ```
//!
//! Runs every benchmark-language corpus through the default
//! (NullObserver) parse path and the metrics-observed path, then writes a
//! JSON report with per-language throughput, the prediction-mode
//! breakdown (decisions, SLL-resolved fraction, failovers), cache hit
//! rates, and the observer overhead ratio. The human-readable table goes
//! to stderr; the JSON file is the artifact CI uploads.
//!
//! `--check BASELINE` compares the run against a committed baseline
//! report and exits nonzero if the observer overhead regressed by more
//! than 5% on any language — the CI gate for the "metrics collection
//! stays cheap, the default path stays free" claim.

use costar_bench::{parse_bench, Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::quick();
    let mut out = "BENCH_parse.json".to_owned();
    let mut check = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = Config::quick(),
            "--standard" => cfg = Config::standard(),
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--check needs a baseline path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: parse_bench [--quick|--standard] [--out PATH] [--check BASELINE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if cfg!(debug_assertions) {
        eprintln!("note: running unoptimized; use `cargo run --release --bin parse_bench`");
    }
    let report = parse_bench(&cfg);
    eprintln!("{report}");

    let json = report.to_json();
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        match report.check_against(&baseline, 0.05) {
            Ok(()) => eprintln!("observer overhead within 5% of {baseline_path}"),
            Err(msg) => {
                eprintln!("observer overhead regression vs {baseline_path}:\n{msg}");
                std::process::exit(1);
            }
        }
    }
}
