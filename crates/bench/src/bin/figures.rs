//! Regenerates the tables and figures of the paper's evaluation (§6).
//!
//! ```text
//! figures [--fig 8|9|10|11|ablations|all] [--quick|--standard]
//! ```
//!
//! Prints each requested artifact as a text table. Run with `--release`
//! for meaningful timings.

use costar_bench::{
    ablation_cache_reuse, ablation_general_cfg, ablation_grammar_size, ablation_incremental,
    ablation_recovery, ablation_sll_cache, ablation_static_fast_path, fig10, fig11, fig8, fig9,
    prediction_profile, Config,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut cfg = Config::standard();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                i += 1;
                which = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--fig needs an argument");
                    std::process::exit(2);
                });
            }
            "--quick" => cfg = Config::quick(),
            "--standard" => cfg = Config::standard(),
            "--files" => {
                i += 1;
                cfg.files = args[i].parse().expect("--files takes a number");
            }
            "--max-size" => {
                i += 1;
                cfg.max_size = args[i].parse().expect("--max-size takes a number");
            }
            "--trials" => {
                i += 1;
                cfg.trials = args[i].parse().expect("--trials takes a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: figures [--fig 8|9|10|11|profile|ablations|all] [--quick|--standard]"
                );
                eprintln!("               [--files N] [--max-size N] [--trials N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if cfg!(debug_assertions) {
        eprintln!("note: running unoptimized; use `cargo run --release --bin figures`");
    }
    eprintln!(
        "config: {} files/language, max size {}, {} trials",
        cfg.files, cfg.max_size, cfg.trials
    );

    let all = which == "all";
    if all || which == "8" {
        println!("{}", fig8(&cfg));
    }
    if all || which == "9" {
        println!("{}", fig9(&cfg));
    }
    if all || which == "10" {
        println!("{}", fig10(&cfg));
    }
    if all || which == "11" {
        println!("{}", fig11(&cfg));
    }
    if all || which == "profile" {
        println!("{}", prediction_profile(&cfg));
    }
    if all || which == "ablations" {
        println!("{}", ablation_sll_cache(&cfg));
        println!("{}", ablation_cache_reuse(&cfg));
        println!("{}", ablation_grammar_size(&cfg));
        println!("{}", ablation_general_cfg(&cfg));
        println!("{}", ablation_static_fast_path(&cfg));
        println!("{}", ablation_recovery(&cfg));
        println!("{}", ablation_incremental(&cfg));
    }
}
