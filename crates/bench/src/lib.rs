//! # costar-bench — the evaluation harness (paper §6)
//!
//! One function per table/figure of the paper's evaluation, each
//! returning a structured result that renders as a paper-style table:
//!
//! * [`fig8`] — grammar sizes and data-set sizes (Fig. 8);
//! * [`fig9`] — input size vs CoStar parse time, with least-squares and
//!   LOWESS linearity evidence (Fig. 9);
//! * [`fig10`] — CoStar slowdown relative to the `AntlrSim` baseline,
//!   parse-only and in a lexing/parsing pipeline (Fig. 10);
//! * [`fig11`] — the cache-warm-up effect on the Python baseline
//!   (Fig. 11);
//! * [`ablation_sll_cache`], [`ablation_cache_reuse`],
//!   [`ablation_grammar_size`] — ablations for the design choices
//!   DESIGN.md calls out.
//!
//! The `figures` binary prints any of them; the Criterion benches in
//! `benches/` wrap the same workloads for statistically disciplined
//! timing.

#![warn(missing_docs)]

use costar::{BatchParser, Edit, EditSession, ParseOutcome, Parser};
use costar_baselines::{earley_parse, AntlrSim};
use costar_grammar::analysis::{
    parse_cert_json, replay_certificate, to_cert_json, AuditTable, DecisionTable, GrammarAnalysis,
};
use costar_grammar::{Grammar, GrammarBuilder, Token};
use costar_langs::{all_languages, corpus, Language};
use costar_stats::{linear_fit, lowess, ratio_stats, LinearFit};
use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// Corpus and trial sizing for the experiments.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Files per language corpus.
    pub files: usize,
    /// Size knob of the largest file (roughly its token count).
    pub max_size: usize,
    /// Timing trials per measurement (the paper averaged five).
    pub trials: usize,
}

impl Config {
    /// Small sizes for CI and `cargo bench` smoke runs.
    pub fn quick() -> Config {
        Config {
            files: 8,
            max_size: 2_000,
            trials: 2,
        }
    }

    /// The default experiment scale (minutes of wall-clock overall).
    pub fn standard() -> Config {
        Config {
            files: 16,
            max_size: 10_000,
            trials: 5,
        }
    }
}

/// Times `f` over `trials` runs and returns the average seconds.
pub fn time_avg<R>(trials: usize, mut f: impl FnMut() -> R) -> f64 {
    let trials = trials.max(1);
    let start = Instant::now();
    for _ in 0..trials {
        black_box(f());
    }
    start.elapsed().as_secs_f64() / trials as f64
}

/// One language's prepared corpus: sources and token words.
pub struct PreparedCorpus {
    /// The language.
    pub lang: Language,
    /// Generated source files (ascending size).
    pub sources: Vec<String>,
    /// Tokenized words, one per source file.
    pub words: Vec<Vec<Token>>,
}

/// Generates and tokenizes the corpus for every language.
///
/// # Panics
///
/// Panics if a generated file fails to lex — that would be a generator
/// or lexer bug, not a measurement outcome.
pub fn prepare_corpora(cfg: &Config) -> Vec<PreparedCorpus> {
    all_languages()
        .into_iter()
        .map(|(lang, generate)| {
            let sources = corpus(generate, 0xC057A6, cfg.files, cfg.max_size);
            let words = sources
                .iter()
                .map(|s| {
                    lang.tokenize(s)
                        .unwrap_or_else(|e| panic!("{}: corpus file fails to lex: {e}", lang.name))
                })
                .collect();
            PreparedCorpus {
                lang,
                sources,
                words,
            }
        })
        .collect()
}

fn expect_unique(lang: &str, outcome: &ParseOutcome) {
    assert!(
        matches!(outcome, ParseOutcome::Unique(_)),
        "{lang}: benchmark file did not parse uniquely: {outcome:?}"
    );
}

// ---------------------------------------------------------------------
// Fig. 8
// ---------------------------------------------------------------------

/// One row of the Fig. 8 table.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Language name.
    pub name: &'static str,
    /// Terminal count of the desugared grammar.
    pub terminals: usize,
    /// Nonterminal count.
    pub nonterminals: usize,
    /// Production count.
    pub productions: usize,
    /// Number of corpus files.
    pub files: usize,
    /// Total corpus size in megabytes.
    pub megabytes: f64,
    /// Total corpus size in tokens.
    pub tokens: usize,
}

/// The Fig. 8 reproduction: grammar and data-set sizes per benchmark.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// One row per language.
    pub rows: Vec<Fig8Row>,
}

/// Reproduces Fig. 8: measures of grammar size and data-set size.
pub fn fig8(cfg: &Config) -> Fig8 {
    let rows = prepare_corpora(cfg)
        .into_iter()
        .map(|c| {
            let (t, n, p) = c.lang.grammar_stats();
            Fig8Row {
                name: c.lang.name,
                terminals: t,
                nonterminals: n,
                productions: p,
                files: c.sources.len(),
                megabytes: c.sources.iter().map(String::len).sum::<usize>() as f64 / 1e6,
                tokens: c.words.iter().map(Vec::len).sum(),
            }
        })
        .collect();
    Fig8 { rows }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8: grammar size and data set size per benchmark")?;
        writeln!(
            f,
            "{:<10} {:>5} {:>5} {:>5} {:>8} {:>8} {:>10}",
            "Benchmark", "|T|", "|N|", "|P|", "# files", "MB", "tokens"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>5} {:>5} {:>5} {:>8} {:>8.3} {:>10}",
                r.name, r.terminals, r.nonterminals, r.productions, r.files, r.megabytes, r.tokens
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fig. 9
// ---------------------------------------------------------------------

/// Linearity evidence for one language (one Fig. 9 panel).
#[derive(Debug, Clone)]
pub struct Fig9Panel {
    /// Language name.
    pub name: &'static str,
    /// (tokens, seconds) per file, ascending tokens.
    pub points: Vec<(usize, f64)>,
    /// The least-squares fit of seconds against tokens.
    pub fit: Option<LinearFit>,
    /// Maximum relative deviation of the LOWESS curve from the fit — the
    /// paper's linearity criterion is that this stays small.
    pub lowess_deviation: f64,
    /// Mean throughput in tokens per second.
    pub tokens_per_sec: f64,
}

/// The Fig. 9 reproduction.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// One panel per language.
    pub panels: Vec<Fig9Panel>,
}

/// Reproduces Fig. 9: input size vs CoStar parse time per language, with
/// regression + LOWESS linearity evidence. Every file must parse
/// `Unique` (the §6.1 claim).
pub fn fig9(cfg: &Config) -> Fig9 {
    let panels = prepare_corpora(cfg)
        .into_iter()
        .map(|c| {
            let mut parser = Parser::new(c.lang.grammar().clone());
            let mut points: Vec<(usize, f64)> = c
                .words
                .iter()
                .map(|w| {
                    expect_unique(c.lang.name, &parser.parse(w));
                    let secs = time_avg(cfg.trials, || parser.parse(w));
                    (w.len(), secs)
                })
                .collect();
            points.sort_by_key(|&(n, _)| n);
            let xs: Vec<f64> = points.iter().map(|&(n, _)| n as f64).collect();
            let ys: Vec<f64> = points.iter().map(|&(_, s)| s).collect();
            let fit = linear_fit(&xs, &ys);
            let lowess_deviation = match &fit {
                Some(fit) if xs.len() >= 4 => {
                    // Small corpora need a wider LOWESS window than the
                    // paper's f = 0.1 (which presumes hundreds of files).
                    let f_param = (0.1f64).max(4.0 / xs.len() as f64).min(1.0);
                    let smooth = lowess(&xs, &ys, f_param);
                    let fitted: Vec<f64> = xs.iter().map(|&x| fit.predict(x)).collect();
                    // Normalize by the fitted range rather than pointwise
                    // (pointwise deviation explodes near the origin where
                    // fixed per-parse overhead dominates tiny files).
                    let scale = fitted.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-12);
                    smooth
                        .iter()
                        .zip(&fitted)
                        .map(|(s, l)| (s - l).abs() / scale)
                        .fold(0.0, f64::max)
                }
                _ => 0.0,
            };
            let total_tokens: usize = points.iter().map(|&(n, _)| n).sum();
            let total_secs: f64 = ys.iter().sum();
            Fig9Panel {
                name: c.lang.name,
                points,
                fit,
                lowess_deviation,
                tokens_per_sec: total_tokens as f64 / total_secs.max(1e-12),
            }
        })
        .collect();
    Fig9 { panels }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9: input size vs CoStar parse time (linearity)")?;
        writeln!(
            f,
            "{:<10} {:>7} {:>14} {:>8} {:>12} {:>12}",
            "Benchmark", "files", "slope(us/tok)", "R^2", "LOWESS dev", "tokens/sec"
        )?;
        for p in &self.panels {
            let (slope, r2) = p
                .fit
                .map_or((f64::NAN, f64::NAN), |fit| (fit.slope * 1e6, fit.r_squared));
            writeln!(
                f,
                "{:<10} {:>7} {:>14.3} {:>8.4} {:>11.1}% {:>12.0}",
                p.name,
                p.points.len(),
                slope,
                r2,
                p.lowess_deviation * 100.0,
                p.tokens_per_sec
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fig. 10
// ---------------------------------------------------------------------

/// One language's slowdown bars.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Language name.
    pub name: &'static str,
    /// CoStar slowdown w.r.t. the AntlrSim parser (mean, std dev).
    pub parser_slowdown: (f64, f64),
    /// (lexer, CoStar) pipeline slowdown w.r.t. (lexer, AntlrSim).
    pub pipeline_slowdown: (f64, f64),
}

/// The Fig. 10 reproduction.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// One row per language.
    pub rows: Vec<Fig10Row>,
}

/// Reproduces Fig. 10: CoStar's average slowdown relative to the ANTLR
/// stand-in, parse-only and as a lexing/parsing pipeline.
///
/// Per the paper's §6.2 methodology, the baseline parser starts each
/// trial with an empty cache ("in each ANTLR parser trial, we
/// instantiated a new parser with an empty cache because CoStar does not
/// currently offer a way to reuse a cache across multiple inputs"), and
/// lexing time is measured separately and added to both pipelines.
pub fn fig10(cfg: &Config) -> Fig10 {
    let rows = prepare_corpora(cfg)
        .into_iter()
        .map(|c| {
            let mut costar = Parser::new(c.lang.grammar().clone());
            let mut antlr = AntlrSim::with_cold_cache(c.lang.grammar().clone());
            let mut costar_secs = Vec::new();
            let mut antlr_secs = Vec::new();
            let mut lex_secs = Vec::new();
            for (src, w) in c.sources.iter().zip(&c.words) {
                expect_unique(c.lang.name, &costar.parse(w));
                assert!(
                    antlr.parse(w).is_accept(),
                    "{}: baseline rejects",
                    c.lang.name
                );
                costar_secs.push(time_avg(cfg.trials, || costar.parse(w)));
                antlr_secs.push(time_avg(cfg.trials, || antlr.parse(w)));
                lex_secs.push(time_avg(cfg.trials, || c.lang.tokenize(src)));
            }
            let parser = ratio_stats(&costar_secs, &antlr_secs);
            let pipe_costar: Vec<f64> = costar_secs
                .iter()
                .zip(&lex_secs)
                .map(|(p, l)| p + l)
                .collect();
            let pipe_antlr: Vec<f64> = antlr_secs
                .iter()
                .zip(&lex_secs)
                .map(|(p, l)| p + l)
                .collect();
            let pipeline = ratio_stats(&pipe_costar, &pipe_antlr);
            Fig10Row {
                name: c.lang.name,
                parser_slowdown: (parser.mean, parser.std_dev),
                pipeline_slowdown: (pipeline.mean, pipeline.std_dev),
            }
        })
        .collect();
    Fig10 { rows }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 10: CoStar average slowdown vs AntlrSim")?;
        writeln!(
            f,
            "{:<10} {:>22} {:>26}",
            "Benchmark", "parser slowdown", "lex+parse pipeline"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>14.2}x ± {:<5.2} {:>18.2}x ± {:<5.2}",
                r.name,
                r.parser_slowdown.0,
                r.parser_slowdown.1,
                r.pipeline_slowdown.0,
                r.pipeline_slowdown.1
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fig. 11
// ---------------------------------------------------------------------

/// One Python corpus file's cold vs warm timing.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// File size in tokens.
    pub tokens: usize,
    /// Per-kilotoken parse time with a cold (per-file) cache.
    pub cold_ms_per_ktok: f64,
    /// Per-kilotoken parse time with a pre-warmed persistent cache.
    pub warm_ms_per_ktok: f64,
}

/// The Fig. 11 reproduction.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Per-file cold/warm timings, ascending size.
    pub points: Vec<Fig11Point>,
    /// Ratio of smallest-file to largest-file cold per-token cost: values
    /// well above 1 reproduce the paper's "performance improves slightly
    /// as file size increases" observation for the cold parser.
    pub cold_small_over_large: f64,
    /// The same ratio for the warmed parser: near 1 reproduces "this
    /// slight nonlinear effect disappears".
    pub warm_small_over_large: f64,
}

/// Reproduces Fig. 11: the AntlrSim Python parser with and without cache
/// warm-up.
pub fn fig11(cfg: &Config) -> Fig11 {
    let c = prepare_corpora(cfg)
        .into_iter()
        .find(|c| c.lang.name == "Python")
        .expect("Python corpus");
    let mut cold = AntlrSim::with_cold_cache(c.lang.grammar().clone());
    let mut warm = AntlrSim::new(c.lang.grammar().clone());
    warm.warm_up(&c.words);

    let mut points: Vec<Fig11Point> = c
        .words
        .iter()
        .map(|w| {
            let ktok = w.len() as f64 / 1e3;
            let cold_secs = time_avg(cfg.trials, || cold.parse(w));
            let warm_secs = time_avg(cfg.trials, || warm.parse(w));
            Fig11Point {
                tokens: w.len(),
                cold_ms_per_ktok: cold_secs * 1e3 / ktok,
                warm_ms_per_ktok: warm_secs * 1e3 / ktok,
            }
        })
        .collect();
    points.sort_by_key(|p| p.tokens);
    let first = points.first().cloned();
    let last = points.last().cloned();
    let (cold_ratio, warm_ratio) = match (first, last) {
        (Some(a), Some(b)) if b.cold_ms_per_ktok > 0.0 && b.warm_ms_per_ktok > 0.0 => (
            a.cold_ms_per_ktok / b.cold_ms_per_ktok,
            a.warm_ms_per_ktok / b.warm_ms_per_ktok,
        ),
        _ => (1.0, 1.0),
    };
    Fig11 {
        points,
        cold_small_over_large: cold_ratio,
        warm_small_over_large: warm_ratio,
    }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 11: AntlrSim Python parser, cold vs warmed cache")?;
        writeln!(
            f,
            "{:>10} {:>18} {:>18}",
            "tokens", "cold ms/ktok", "warm ms/ktok"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>10} {:>18.3} {:>18.3}",
                p.tokens, p.cold_ms_per_ktok, p.warm_ms_per_ktok
            )?;
        }
        writeln!(
            f,
            "small/large per-token cost: cold {:.2}x, warm {:.2}x",
            self.cold_small_over_large, self.warm_small_over_large
        )
    }
}

// ---------------------------------------------------------------------
// Prediction profile (§3.4 in practice)
// ---------------------------------------------------------------------

/// How prediction behaved on one language's corpus.
#[derive(Debug, Clone)]
pub struct PredictionProfileRow {
    /// Language name.
    pub name: &'static str,
    /// Multi-alternative decisions.
    pub predictions: u64,
    /// Single-alternative short-circuits.
    pub single_alternative: u64,
    /// Fraction of decisions SLL resolved without failover.
    pub sll_fraction: f64,
    /// LL failovers.
    pub failovers: u64,
    /// Mean lookahead tokens per decision.
    pub mean_lookahead: f64,
    /// Deepest lookahead any decision needed.
    pub max_lookahead: usize,
}

/// Decision behavior per benchmark language.
#[derive(Debug, Clone)]
pub struct PredictionProfile {
    /// One row per language.
    pub rows: Vec<PredictionProfileRow>,
}

/// Profiles `adaptivePredict` (paper §3.4) across the corpora: how many
/// decisions there are, how many SLL settles, how often the LL failover
/// runs, and how much lookahead decisions need. The original ALL(*)
/// evaluation reports these quantities for ANTLR; they explain *why* the
/// cached-SLL design is the common case fast path.
pub fn prediction_profile(cfg: &Config) -> PredictionProfile {
    let rows = prepare_corpora(cfg)
        .into_iter()
        .map(|c| {
            let mut parser = Parser::with_cache_reuse(c.lang.grammar().clone());
            for w in &c.words {
                expect_unique(c.lang.name, &parser.parse(w));
            }
            let s = parser.prediction_stats();
            let decided = s.sll_resolved + s.failovers;
            PredictionProfileRow {
                name: c.lang.name,
                predictions: s.predictions,
                single_alternative: s.single_alternative,
                sll_fraction: if decided == 0 {
                    1.0
                } else {
                    s.sll_resolved as f64 / decided as f64
                },
                failovers: s.failovers,
                mean_lookahead: s.mean_lookahead(),
                max_lookahead: s.max_lookahead,
            }
        })
        .collect();
    PredictionProfile { rows }
}

impl fmt::Display for PredictionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Prediction profile: adaptivePredict behavior per corpus")?;
        writeln!(
            f,
            "{:<10} {:>11} {:>11} {:>8} {:>10} {:>10} {:>8}",
            "Benchmark", "decisions", "1-alt", "SLL %", "failovers", "mean LA", "max LA"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>11} {:>11} {:>7.1}% {:>10} {:>10.2} {:>8}",
                r.name,
                r.predictions,
                r.single_alternative,
                r.sll_fraction * 100.0,
                r.failovers,
                r.mean_lookahead,
                r.max_lookahead
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Parse observability report (BENCH_parse.json)
// ---------------------------------------------------------------------

/// One language's observed-parse measurements.
#[derive(Debug, Clone)]
pub struct ParseBenchRow {
    /// Language name.
    pub name: &'static str,
    /// Total corpus tokens parsed per trial.
    pub tokens: usize,
    /// Throughput of the default (NullObserver) parse path.
    pub null_tokens_per_sec: f64,
    /// Throughput with a [`costar::observe::MetricsObserver`] attached.
    pub observed_tokens_per_sec: f64,
    /// Observed time / null time — the price of metrics collection.
    pub observer_overhead: f64,
    /// Recovering-parse time / null time on the same (valid) corpus — the
    /// price of routing clean input through `Parser::parse_recovering`.
    /// On valid words the recovery driver takes the identical machine
    /// path, so this prices only the driver's bookkeeping.
    pub recovery_overhead: f64,
    /// Multi-alternative prediction decisions over the corpus.
    pub decisions: u64,
    /// Single-alternative short-circuits.
    pub single_alternative: u64,
    /// Decisions SLL resolved without failover.
    pub sll_resolved: u64,
    /// SLL→LL failovers.
    pub failovers: u64,
    /// Fraction of decided decisions that SLL settled.
    pub sll_fraction: f64,
    /// Decisions dispatched through the precompiled static LL(1) map,
    /// skipping subparser simulation and the cache entirely.
    pub static_fast_path_hits: u64,
    /// static_fast_path_hits / decisions (1.0 when there were none).
    pub static_fast_path_fraction: f64,
    /// Microseconds to precompute the grammar's decision table (the
    /// one-time cost the fast path amortizes).
    pub decision_table_micros: f64,
    /// Microseconds for the full audit pass (exact lookahead bounds,
    /// dead/shadowed detection) — what a cache miss recomputes.
    pub audit_micros: f64,
    /// Microseconds to structurally parse and witness-replay the
    /// grammar's own `costar-cert-v1` certificate — what a cache hit
    /// pays instead of the full audit.
    pub cert_validate_micros: f64,
    /// audit_micros / cert_validate_micros — how much cheaper a cached
    /// load's certificate validation is than recomputing the audit.
    pub cert_speedup: f64,
    /// SLL cache lookups.
    pub cache_lookups: u64,
    /// SLL cache hits.
    pub cache_hits: u64,
    /// hits / lookups (1.0 when there were no lookups).
    pub cache_hit_rate: f64,
    /// Machine steps over the corpus.
    pub machine_steps: u64,
    /// Prediction (lookahead) steps over the corpus.
    pub prediction_steps: u64,
    /// Meter-admitted steps over the corpus.
    pub meter_steps: u64,
    /// Certified fuel (`CostModel::bound_for`) summed over the corpus —
    /// what `--max-steps auto` would have budgeted.
    pub predicted_steps: u64,
    /// Parses whose metered step count exceeded the certified bound.
    /// Soundness of the cost certificate: gated at zero.
    pub cost_violations: u64,
    /// predicted_steps / meter_steps — how loose the certified bound is
    /// against real metered work. At least 1.0 when the certificate is
    /// sound; 0.0 only when unmeasured.
    pub cost_bound_ratio: f64,
    /// Microseconds to splice a single-token edit into a live
    /// [`costar::EditSession`] on the largest corpus file (0.0 on
    /// languages whose tokenizer is not incremental-capable — Python's
    /// INDENT/DEDENT synthesis is line-global).
    pub splice_micros: f64,
    /// Microseconds for a full from-scratch lex of the same file — what
    /// the splice avoids (0.0 when the arm did not run).
    pub full_relex_micros: f64,
    /// full_relex_micros / splice_micros — the incremental-lexing payoff
    /// for a single-token edit. Gated at 10x on JSON: a pure same-build
    /// compute ratio, stable across hosts.
    pub incremental_speedup: f64,
    /// Whether the spliced token vector was byte-identical (kind, lexeme,
    /// span) to a from-scratch lex of the edited source — the
    /// `H-INCR-LEX-SOUND` equality, re-checked on every bench run and
    /// gated unconditionally. Vacuously true where the arm did not run.
    pub incremental_equal: bool,
    /// Whether every per-input [`costar::ParseMetrics`] reconciled.
    pub reconciles: bool,
}

/// The parse observability report: per-language throughput, a
/// prediction-mode breakdown, cache hit rates, and the cost of turning
/// the metrics observer on. Serialized to `BENCH_parse.json`.
#[derive(Debug, Clone)]
pub struct ParseBench {
    /// One row per benchmark language.
    pub rows: Vec<ParseBenchRow>,
    /// Time-weighted overhead across all corpora: total observed seconds
    /// over total null seconds. This is the CI gate's number — the
    /// per-language ratios on fast corpora are noise-prone (a JSON pass
    /// is a few milliseconds), while the aggregate is dominated by the
    /// slowest corpus and stays stable run to run.
    pub overall_overhead: f64,
    /// Time-weighted recovering-parse overhead across all corpora (total
    /// recovering seconds over total null seconds), gated like
    /// `overall_overhead`: clean input must not pay for the recovery
    /// machinery it never uses.
    pub overall_recovery_overhead: f64,
    /// Host parallelism observed during the run
    /// (`std::thread::available_parallelism`). The speedup gate only
    /// applies when this is at least 4 — a single-core runner cannot show
    /// parallel speedup no matter how correct the batch engine is.
    pub batch_available: usize,
    /// Wall-clock speedup of [`costar::BatchParser`] at 4 workers over the
    /// same batch at 1 worker, time-weighted across all corpora.
    pub batch_speedup_4: f64,
    /// Whether every per-input outcome and deterministic metrics view from
    /// the 4-worker batch was identical to the 1-worker batch — the
    /// determinism contract, checked on every bench run and always gated.
    pub batch_equal: bool,
    /// Time-weighted certificate-validation speedup across all grammars:
    /// total full-audit seconds over total parse-and-replay seconds. A
    /// pure same-build compute ratio (like the batch determinism check,
    /// not a wall-clock throughput), gated at 10x — validating the
    /// embedded certificate must stay an order of magnitude cheaper than
    /// the recompute it saves, or the cache's audit embedding has lost
    /// its point.
    pub overall_cert_speedup: f64,
}

/// Runs every language corpus through the default parse path and the
/// metrics-observed path, collecting the [`ParseBench`] report.
pub fn parse_bench(cfg: &Config) -> ParseBench {
    let mut total_null = 0.0;
    let mut total_observed = 0.0;
    let mut total_recovering = 0.0;
    let mut total_audit = 0.0;
    let mut total_validate = 0.0;
    let corpora = prepare_corpora(cfg);
    let rows = corpora
        .iter()
        .map(|c| {
            let mut parser = Parser::new(c.lang.grammar().clone());
            for w in &c.words {
                expect_unique(c.lang.name, &parser.parse(w));
            }
            let tokens: usize = c.words.iter().map(Vec::len).sum();

            // Price the one-time decision-table precompute (min over a few
            // reps, like the timing arms below).
            let analysis = GrammarAnalysis::compute(c.lang.grammar());
            let mut table_secs = f64::INFINITY;
            for _ in 0..cfg.trials.max(3) {
                let start = Instant::now();
                black_box(DecisionTable::compute(
                    c.lang.grammar(),
                    &analysis.nullable,
                    &analysis.first,
                    &analysis.follow,
                    &analysis.stable_frames,
                ));
                table_secs = table_secs.min(start.elapsed().as_secs_f64());
            }
            // Price the full audit pass against validating its own
            // serialized certificate — cache miss vs cache hit. Both are
            // pure compute on the same build, so the ratio below is
            // machine-independent enough to gate.
            let mut audit_secs = f64::INFINITY;
            for _ in 0..cfg.trials.max(3) {
                let start = Instant::now();
                black_box(AuditTable::compute(
                    c.lang.grammar(),
                    &analysis.stable_frames,
                    &analysis.productivity,
                ));
                audit_secs = audit_secs.min(start.elapsed().as_secs_f64());
            }
            let cert_text = to_cert_json(c.lang.grammar(), &analysis.audit);
            let mut validate_secs = f64::INFINITY;
            for _ in 0..cfg.trials.max(3) {
                let start = Instant::now();
                let table = parse_cert_json(c.lang.grammar(), &cert_text)
                    .expect("a freshly serialized certificate parses");
                let replayed = replay_certificate(
                    c.lang.grammar(),
                    &analysis.stable_frames,
                    &analysis.productivity,
                    &table,
                );
                validate_secs = validate_secs.min(start.elapsed().as_secs_f64());
                assert!(replayed, "{}: own certificate must replay", c.lang.name);
            }
            total_audit += audit_secs;
            total_validate += validate_secs;
            // The overhead ratio feeds a CI gate, so the estimator must be
            // noise-robust: interleave the two arms and keep each arm's
            // minimum over several repetitions (the minimum is the least
            // contaminated by scheduler noise; a mean-of-few flakes).
            let reps = cfg.trials.max(5);
            let mut null_secs = f64::INFINITY;
            let mut observed_secs = f64::INFINITY;
            let mut recovering_secs = f64::INFINITY;
            for _ in 0..reps {
                let start = Instant::now();
                for w in &c.words {
                    black_box(parser.parse(w));
                }
                null_secs = null_secs.min(start.elapsed().as_secs_f64());
                let start = Instant::now();
                for w in &c.words {
                    black_box(parser.parse_with_metrics(w));
                }
                observed_secs = observed_secs.min(start.elapsed().as_secs_f64());
                let start = Instant::now();
                for w in &c.words {
                    black_box(parser.parse_recovering(w));
                }
                recovering_secs = recovering_secs.min(start.elapsed().as_secs_f64());
            }
            total_null += null_secs;
            total_observed += observed_secs;
            total_recovering += recovering_secs;

            // One more observed pass to aggregate the counters (timing
            // excluded so the throughput numbers above stay clean).
            let mut row = ParseBenchRow {
                name: c.lang.name,
                tokens,
                null_tokens_per_sec: tokens as f64 / null_secs.max(1e-12),
                observed_tokens_per_sec: tokens as f64 / observed_secs.max(1e-12),
                observer_overhead: observed_secs / null_secs.max(1e-12),
                recovery_overhead: recovering_secs / null_secs.max(1e-12),
                decisions: 0,
                single_alternative: 0,
                sll_resolved: 0,
                failovers: 0,
                sll_fraction: 1.0,
                static_fast_path_hits: 0,
                static_fast_path_fraction: 1.0,
                decision_table_micros: table_secs * 1e6,
                audit_micros: audit_secs * 1e6,
                cert_validate_micros: validate_secs * 1e6,
                cert_speedup: audit_secs / validate_secs.max(1e-12),
                cache_lookups: 0,
                cache_hits: 0,
                cache_hit_rate: 1.0,
                machine_steps: 0,
                prediction_steps: 0,
                meter_steps: 0,
                predicted_steps: 0,
                cost_violations: 0,
                cost_bound_ratio: 0.0,
                splice_micros: 0.0,
                full_relex_micros: 0.0,
                incremental_speedup: 0.0,
                incremental_equal: true,
                reconciles: true,
            };
            for w in &c.words {
                let (_, m) = parser.parse_with_metrics(w);
                row.decisions += m.decisions;
                row.single_alternative += m.single_alternative;
                row.sll_resolved += m.sll_resolved;
                row.failovers += m.failovers;
                row.static_fast_path_hits += m.static_fast_path_hits;
                row.cache_lookups += m.cache_lookups;
                row.cache_hits += m.cache_hits;
                row.machine_steps += m.machine_steps;
                row.prediction_steps += m.prediction_steps;
                row.meter_steps += m.meter_steps;
                row.predicted_steps = row.predicted_steps.saturating_add(m.predicted_steps);
                row.cost_violations += m.cost_violations;
                row.reconciles &= m.reconciles();
            }
            if row.meter_steps > 0 && row.predicted_steps > 0 {
                row.cost_bound_ratio = row.predicted_steps as f64 / row.meter_steps as f64;
            }
            let decided = row.sll_resolved + row.failovers;
            if decided > 0 {
                row.sll_fraction = row.sll_resolved as f64 / decided as f64;
            }
            if row.decisions > 0 {
                row.static_fast_path_fraction =
                    row.static_fast_path_hits as f64 / row.decisions as f64;
            }
            if row.cache_lookups > 0 {
                row.cache_hit_rate = row.cache_hits as f64 / row.cache_lookups as f64;
            }

            // Incremental-lexing arm: splice a single-token edit into a
            // live session on the largest corpus file vs a full
            // from-scratch re-lex of the same file. The edit replaces the
            // mid-file token's lexeme with itself — lexability is
            // guaranteed while the splice pays the same restart→resync
            // relex cost as a real same-size change. The equality leg
            // re-checks the spliced vector against the from-scratch
            // oracle outside the timing loops.
            if c.lang.incremental_lexing() {
                let src = c.sources.last().expect("nonempty corpus");
                let mut session = EditSession::new(c.lang.lexer(), src).expect("corpus file lexes");
                let mid = session.tokens()[session.tokens().len() / 2].clone();
                let span = mid.span();
                let edit = Edit::new(span.offset..span.offset + span.len, mid.lexeme().to_owned());
                session.apply(&edit).expect("self-splice lexes");
                let oracle = c
                    .lang
                    .tokenize(session.source())
                    .expect("edited source lexes");
                row.incremental_equal = oracle.as_slice() == session.tokens();
                // A splice on a warm session is microseconds; batch
                // several per timing sample so the clock read does not
                // dominate, then keep the per-edit minimum.
                const EDITS_PER_SAMPLE: u32 = 16;
                let mut splice_secs = f64::INFINITY;
                let mut relex_secs = f64::INFINITY;
                for _ in 0..reps {
                    let start = Instant::now();
                    for _ in 0..EDITS_PER_SAMPLE {
                        black_box(session.apply(&edit).expect("self-splice lexes"));
                    }
                    splice_secs = splice_secs
                        .min(start.elapsed().as_secs_f64() / f64::from(EDITS_PER_SAMPLE));
                    let start = Instant::now();
                    black_box(c.lang.tokenize(src).expect("corpus file lexes"));
                    relex_secs = relex_secs.min(start.elapsed().as_secs_f64());
                }
                row.splice_micros = splice_secs * 1e6;
                row.full_relex_micros = relex_secs * 1e6;
                row.incremental_speedup = relex_secs / splice_secs.max(1e-12);
            }
            row
        })
        .collect();

    // Batch-parsing arm: every corpus runs through `BatchParser` at 1
    // worker and at 4. The 1-worker run doubles as the determinism oracle:
    // per-input outcomes and deterministic metrics must be identical at
    // both worker counts (gated unconditionally), and on hosts with at
    // least 4 cores the wall-clock ratio is the speedup row.
    let batch_available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut batch_equal = true;
    let mut seq_total = 0.0;
    let mut par_total = 0.0;
    for c in &corpora {
        let grammar = std::sync::Arc::new(c.lang.grammar().clone());
        let analysis = std::sync::Arc::new(GrammarAnalysis::compute(&grammar));
        let seq_parser =
            BatchParser::with_shared(std::sync::Arc::clone(&grammar), analysis.clone())
                .with_jobs(1);
        let par_parser = BatchParser::with_shared(grammar, analysis).with_jobs(4);
        let seq = seq_parser.parse_many(&c.words);
        let par = par_parser.parse_many(&c.words);
        batch_equal &= seq.items.len() == par.items.len()
            && seq.items.iter().zip(&par.items).all(|(a, b)| {
                a.outcome() == b.outcome() && a.metrics.deterministic() == b.metrics.deterministic()
            });
        let mut seq_secs = f64::INFINITY;
        let mut par_secs = f64::INFINITY;
        for _ in 0..cfg.trials.max(3) {
            let start = Instant::now();
            black_box(seq_parser.parse_many(&c.words));
            seq_secs = seq_secs.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(par_parser.parse_many(&c.words));
            par_secs = par_secs.min(start.elapsed().as_secs_f64());
        }
        seq_total += seq_secs;
        par_total += par_secs;
    }

    ParseBench {
        rows,
        overall_overhead: total_observed / total_null.max(1e-12),
        overall_recovery_overhead: total_recovering / total_null.max(1e-12),
        batch_available,
        batch_speedup_4: seq_total / par_total.max(1e-12),
        batch_equal,
        overall_cert_speedup: total_audit / total_validate.max(1e-12),
    }
}

impl ParseBench {
    /// Serializes the report as JSON (hand-rolled; the workspace carries
    /// no serialization dependency).
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut s = String::from("{\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":{:?},\"tokens\":{},\"null_tokens_per_sec\":{:.1},\
                 \"observed_tokens_per_sec\":{:.1},\"observer_overhead\":{:.4},\
                 \"recovery_overhead\":{:.4},\"decisions\":{},\"single_alternative\":{},\"sll_resolved\":{},\
                 \"failovers\":{},\"sll_fraction\":{:.4},\
                 \"static_fast_path_hits\":{},\"static_fast_path_fraction\":{:.4},\
                 \"decision_table_micros\":{:.1},\"audit_micros\":{:.1},\
                 \"cert_validate_micros\":{:.1},\"cert_speedup\":{:.1},\
                 \"cache_lookups\":{},\
                 \"cache_hits\":{},\"cache_hit_rate\":{:.4},\"machine_steps\":{},\
                 \"prediction_steps\":{},\"meter_steps\":{},\"predicted_steps\":{},\
                 \"cost_violations\":{},\"cost_bound_ratio\":{:.4},\
                 \"splice_micros\":{:.2},\"full_relex_micros\":{:.2},\
                 \"incremental_speedup\":{:.1},\"incremental_equal\":{},\
                 \"reconciles\":{}}}",
                r.name,
                r.tokens,
                r.null_tokens_per_sec,
                r.observed_tokens_per_sec,
                r.observer_overhead,
                r.recovery_overhead,
                r.decisions,
                r.single_alternative,
                r.sll_resolved,
                r.failovers,
                r.sll_fraction,
                r.static_fast_path_hits,
                r.static_fast_path_fraction,
                r.decision_table_micros,
                r.audit_micros,
                r.cert_validate_micros,
                r.cert_speedup,
                r.cache_lookups,
                r.cache_hits,
                r.cache_hit_rate,
                r.machine_steps,
                r.prediction_steps,
                r.meter_steps,
                r.predicted_steps,
                r.cost_violations,
                r.cost_bound_ratio,
                r.splice_micros,
                r.full_relex_micros,
                r.incremental_speedup,
                r.incremental_equal,
                r.reconciles
            );
        }
        let _ = write!(
            s,
            "],\"overall_overhead\":{:.4},\"overall_recovery_overhead\":{:.4},\
             \"batch_available\":{},\"batch_speedup_4\":{:.4},\"batch_equal\":{},\
             \"overall_cert_speedup\":{:.1}}}",
            self.overall_overhead,
            self.overall_recovery_overhead,
            self.batch_available,
            self.batch_speedup_4,
            self.batch_equal,
            self.overall_cert_speedup
        );
        s
    }

    /// Compares this run's observer overhead against a committed baseline
    /// report (`to_json` output). Fails when the time-weighted overall
    /// overhead exceeds the baseline's by more than the relative
    /// `tolerance` (e.g. 0.05 for 5%) *and* is itself more than
    /// `tolerance` above parity — so timing noise around a near-1.0 ratio
    /// never fails the gate, only a real regression of the observer hot
    /// path does. Per-language ratios are reported but not gated (a few
    /// milliseconds of fast-corpus parse time is too noisy to gate on);
    /// a reconciliation failure on any language always fails.
    pub fn check_against(&self, baseline_json: &str, tolerance: f64) -> Result<(), String> {
        let mut failures = Vec::new();
        let Some(base) = extract_number(baseline_json, "overall_overhead") else {
            return Err("baseline has no overall_overhead field".into());
        };
        if self.overall_overhead > base * (1.0 + tolerance)
            && self.overall_overhead > 1.0 + tolerance
        {
            failures.push(format!(
                "overall observer overhead {:.3}x exceeds baseline {:.3}x by more than {:.0}%",
                self.overall_overhead,
                base,
                tolerance * 100.0
            ));
        }
        // Same envelope for the recovering-parse path on clean input: the
        // recovery machinery must stay free when unused. Baselines written
        // before the field existed gate against parity (1.0).
        let recovery_base =
            extract_number(baseline_json, "overall_recovery_overhead").unwrap_or(1.0);
        if self.overall_recovery_overhead > recovery_base * (1.0 + tolerance)
            && self.overall_recovery_overhead > 1.0 + tolerance
        {
            failures.push(format!(
                "overall recovery overhead {:.3}x exceeds baseline {:.3}x by more than {:.0}%",
                self.overall_recovery_overhead,
                recovery_base,
                tolerance * 100.0
            ));
        }
        for r in &self.rows {
            if !r.reconciles {
                failures.push(format!("{}: metrics failed to reconcile", r.name));
            }
        }
        // The cost certificate must stay sound (no parse may out-step its
        // certified bound) and useful (the bound may be loose — it is a
        // worst case — but a blowup past the fixed envelope means the
        // ε-analysis degenerated, e.g. a saturating hazard fallback where
        // an exact bound used to hold). Pure counter ratios: absolute
        // gates, stable across hosts.
        const COST_RATIO_CEILING: f64 = 1_000_000.0;
        for r in &self.rows {
            if r.cost_violations > 0 {
                failures.push(format!(
                    "{}: {} parses exceeded the certified cost bound",
                    r.name, r.cost_violations
                ));
            }
            if r.predicted_steps > 0 {
                if r.cost_bound_ratio < 1.0 {
                    failures.push(format!(
                        "{}: cost bound ratio {:.4} below parity — the certificate \
                         under-predicts real metered work",
                        r.name, r.cost_bound_ratio
                    ));
                }
                if r.cost_bound_ratio > COST_RATIO_CEILING {
                    failures.push(format!(
                        "{}: cost bound ratio {:.0} exceeds the {COST_RATIO_CEILING:.0} \
                         envelope — the certified bound degenerated",
                        r.name, r.cost_bound_ratio
                    ));
                }
            }
        }
        // The batch determinism contract is gated unconditionally: 4-worker
        // results must be identical to 1-worker results on every host.
        if !self.batch_equal {
            failures.push("batch: 4-worker results diverged from the sequential oracle".into());
        }
        // The speedup row is only meaningful with real cores behind the
        // workers; a single- or dual-core runner cannot show parallel
        // speedup regardless of engine quality, so the absolute 1.8x
        // floor applies only on hosts with at least 4 cores.
        if self.batch_available >= 4 && self.batch_speedup_4 < 1.8 {
            failures.push(format!(
                "batch speedup {:.2}x at 4 workers fell below the 1.80x gate",
                self.batch_speedup_4
            ));
        }
        // The incremental-lexing arm. Equality is the soundness claim —
        // the spliced token vector must match a from-scratch lex of the
        // edited source — and is gated unconditionally on every language
        // the arm ran on. The speedup is a pure same-build compute ratio
        // (like cert_speedup), so the 10x floor is absolute, gated on the
        // large-JSON single-token edit where the claim is made.
        for r in &self.rows {
            if !r.incremental_equal {
                failures.push(format!(
                    "{}: spliced tokens diverged from the from-scratch lex",
                    r.name
                ));
            }
        }
        if let Some(json_row) = self.rows.iter().find(|r| r.name == "JSON") {
            if json_row.incremental_speedup < 10.0 {
                failures.push(format!(
                    "JSON: incremental splice speedup {:.1}x fell below the 10x gate",
                    json_row.incremental_speedup
                ));
            }
        }
        // Validating the embedded audit certificate must stay an order of
        // magnitude cheaper than the full recompute it replaces on cached
        // loads. Like the batch determinism check this is a same-build
        // compute ratio, not a wall-clock throughput, so the absolute
        // floor is stable across runner generations.
        if self.overall_cert_speedup < 10.0 {
            failures.push(format!(
                "certificate validation speedup {:.1}x fell below the 10x gate",
                self.overall_cert_speedup
            ));
        }
        // The static fast path must stay engaged. The JSON grammar is
        // entirely LL(1), so zero hits there means the decision table
        // stopped reaching the parser; and on the deterministic corpora
        // (JSON/XML/DOT — Python's generator varies more run to run) the
        // hit *fraction* is a pure counter ratio, so a drop beyond the
        // tolerance vs the committed baseline is a real wiring
        // regression, not timing noise.
        if let Some(json_row) = self.rows.iter().find(|r| r.name == "JSON") {
            if json_row.static_fast_path_hits == 0 {
                failures.push("JSON: static fast path never fired".into());
            }
        }
        for r in &self.rows {
            if !matches!(r.name, "JSON" | "XML" | "DOT") {
                continue;
            }
            if let Some(base_frac) =
                extract_row_number(baseline_json, r.name, "static_fast_path_fraction")
            {
                if r.static_fast_path_fraction < base_frac - tolerance {
                    failures.push(format!(
                        "{}: static fast-path fraction {:.4} fell below baseline {:.4}",
                        r.name, r.static_fast_path_fraction, base_frac
                    ));
                }
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("\n"))
        }
    }
}

/// Pulls the first numeric value keyed by `key` out of a
/// `ParseBench::to_json` document. A tiny purpose-built scanner — the
/// workspace has no JSON parser dependency and the format is our own.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("{:?}:", key);
    let at = json.find(&needle)? + needle.len();
    let tail = &json[at..];
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Like [`extract_number`], but scoped to the row object whose
/// `"name"` equals `row_name` (the scan window runs to the next row's
/// name key, so keys repeated across rows resolve per row).
fn extract_row_number(json: &str, row_name: &str, key: &str) -> Option<f64> {
    let marker = format!("\"name\":{row_name:?}");
    let at = json.find(&marker)? + marker.len();
    let tail = &json[at..];
    let window = match tail.find("\"name\":") {
        Some(next) => &tail[..next],
        None => tail,
    };
    extract_number(window, key)
}

impl fmt::Display for ParseBench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Parse observability report")?;
        writeln!(
            f,
            "{:<10} {:>10} {:>12} {:>9} {:>9} {:>10} {:>8} {:>9} {:>10} {:>9}",
            "Benchmark",
            "tokens",
            "tok/s(null)",
            "obs cost",
            "rec cost",
            "decisions",
            "SLL %",
            "static %",
            "failovers",
            "hit rate"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>10} {:>12.0} {:>8.2}x {:>8.2}x {:>10} {:>7.1}% {:>8.1}% {:>10} {:>8.1}%",
                r.name,
                r.tokens,
                r.null_tokens_per_sec,
                r.observer_overhead,
                r.recovery_overhead,
                r.decisions,
                r.sll_fraction * 100.0,
                r.static_fast_path_fraction * 100.0,
                r.failovers,
                r.cache_hit_rate * 100.0
            )?;
        }
        writeln!(
            f,
            "overall observer overhead (time-weighted): {:.2}x",
            self.overall_overhead
        )?;
        writeln!(
            f,
            "overall recovery overhead on clean input (time-weighted): {:.2}x",
            self.overall_recovery_overhead
        )?;
        writeln!(
            f,
            "audit: certificate validation {:.1}x faster than full recompute \
             (time-weighted)",
            self.overall_cert_speedup
        )?;
        let incr: Vec<String> = self
            .rows
            .iter()
            .filter(|r| r.splice_micros > 0.0)
            .map(|r| {
                format!(
                    "{} {:.0}x{}",
                    r.name,
                    r.incremental_speedup,
                    if r.incremental_equal {
                        ""
                    } else {
                        " (DIVERGED)"
                    }
                )
            })
            .collect();
        if !incr.is_empty() {
            writeln!(
                f,
                "incremental: single-token edit splice vs full re-lex: {}",
                incr.join(", ")
            )?;
        }
        let max_cost_ratio = self
            .rows
            .iter()
            .map(|r| r.cost_bound_ratio)
            .fold(0.0, f64::max);
        let total_violations: u64 = self.rows.iter().map(|r| r.cost_violations).sum();
        writeln!(
            f,
            "cost: certified bound held on every parse ({total_violations} violations), \
             loosest bound/actual ratio {max_cost_ratio:.0}x"
        )?;
        writeln!(
            f,
            "batch: {:.2}x speedup at 4 workers ({} cores available), \
             results {} sequential",
            self.batch_speedup_4,
            self.batch_available,
            if self.batch_equal {
                "identical to"
            } else {
                "DIVERGED from"
            }
        )
    }
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// One row of an ablation comparison.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// What the row measures (language or parameter value).
    pub label: String,
    /// Baseline configuration seconds.
    pub base_secs: f64,
    /// Variant configuration seconds.
    pub variant_secs: f64,
}

impl AblationRow {
    /// variant / base.
    pub fn ratio(&self) -> f64 {
        self.variant_secs / self.base_secs.max(1e-12)
    }
}

/// A named two-arm ablation result.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Experiment name.
    pub name: &'static str,
    /// Label of the baseline arm.
    pub base_label: &'static str,
    /// Label of the variant arm.
    pub variant_label: &'static str,
    /// Rows.
    pub rows: Vec<AblationRow>,
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: {}", self.name)?;
        writeln!(
            f,
            "{:<14} {:>14} {:>14} {:>8}",
            "case", self.base_label, self.variant_label, "ratio"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>12.2}ms {:>12.2}ms {:>7.2}x",
                r.label,
                r.base_secs * 1e3,
                r.variant_secs * 1e3,
                r.ratio()
            )?;
        }
        Ok(())
    }
}

/// Ablation: SLL prediction + DFA cache (the paper's algorithm) vs
/// LL-only prediction (no SLL, no cache) — quantifies §2's claim that
/// memoized SLL prediction is what makes ALL(*) efficient.
pub fn ablation_sll_cache(cfg: &Config) -> Ablation {
    let rows = prepare_corpora(cfg)
        .into_iter()
        .map(|c| {
            let w = c.words.last().expect("nonempty corpus");
            let mut adaptive = Parser::new(c.lang.grammar().clone());
            let mut ll_only = Parser::with_ll_only(c.lang.grammar().clone());
            expect_unique(c.lang.name, &adaptive.parse(w));
            assert_eq!(
                adaptive.parse(w),
                ll_only.parse(w),
                "{}: modes must agree",
                c.lang.name
            );
            AblationRow {
                label: c.lang.name.to_owned(),
                base_secs: time_avg(cfg.trials, || adaptive.parse(w)),
                variant_secs: time_avg(cfg.trials, || ll_only.parse(w)),
            }
        })
        .collect();
    Ablation {
        name: "SLL + DFA cache vs LL-only prediction",
        base_label: "adaptive",
        variant_label: "LL-only",
        rows,
    }
}

/// Ablation: the precompiled static LL(1) fast path (default) vs full
/// adaptive prediction at every decision point — prices what the static
/// decision table buys on each corpus. Outcomes are asserted identical;
/// only where prediction work happens differs.
pub fn ablation_static_fast_path(cfg: &Config) -> Ablation {
    let rows = prepare_corpora(cfg)
        .into_iter()
        .map(|c| {
            let w = c.words.last().expect("nonempty corpus");
            let mut fast = Parser::new(c.lang.grammar().clone());
            let mut full = Parser::with_no_static_fast_path(c.lang.grammar().clone());
            expect_unique(c.lang.name, &fast.parse(w));
            assert_eq!(
                fast.parse(w),
                full.parse(w),
                "{}: modes must agree",
                c.lang.name
            );
            AblationRow {
                label: c.lang.name.to_owned(),
                base_secs: time_avg(cfg.trials, || fast.parse(w)),
                variant_secs: time_avg(cfg.trials, || full.parse(w)),
            }
        })
        .collect();
    Ablation {
        name: "static LL(1) fast path vs full adaptive prediction",
        base_label: "fast path",
        variant_label: "no table",
        rows,
    }
}

/// Ablation: the plain parse entry point vs the recovering entry point
/// (`Parser::parse_recovering`) on the *same valid corpora* — prices the
/// resynchronizing driver's bookkeeping when no error ever fires. On
/// clean input the recovering driver replays the identical machine step
/// sequence (the `H-RECOVER-SOUND` identity), so any ratio above parity
/// is pure driver overhead; the CI gate keeps the time-weighted version
/// of this number inside the 5% envelope.
pub fn ablation_recovery(cfg: &Config) -> Ablation {
    let rows = prepare_corpora(cfg)
        .into_iter()
        .map(|c| {
            let w = c.words.last().expect("nonempty corpus");
            let mut parser = Parser::new(c.lang.grammar().clone());
            expect_unique(c.lang.name, &parser.parse(w));
            let recovered = parser.parse_recovering(w);
            assert!(
                recovered.is_clean(),
                "{}: valid corpus word did not recover cleanly",
                c.lang.name
            );
            AblationRow {
                label: c.lang.name.to_owned(),
                base_secs: time_avg(cfg.trials, || parser.parse(w)),
                variant_secs: time_avg(cfg.trials, || parser.parse_recovering(w)),
            }
        })
        .collect();
    Ablation {
        name: "plain parse vs recovering parse on valid input",
        base_label: "parse",
        variant_label: "recovering",
        rows,
    }
}

/// Ablation: a full from-scratch re-lex vs splicing a single-token edit
/// into a live [`costar::EditSession`] — the incremental-lexing payoff
/// on each language's largest corpus file. Python is absent: its
/// INDENT/DEDENT synthesis is a line-global pass over the raw token
/// stream, so its editors must re-tokenize from scratch
/// ([`Language::incremental_lexing`]).
pub fn ablation_incremental(cfg: &Config) -> Ablation {
    let rows = prepare_corpora(cfg)
        .into_iter()
        .filter(|c| c.lang.incremental_lexing())
        .map(|c| {
            let src = c.sources.last().expect("nonempty corpus");
            let mut session = EditSession::new(c.lang.lexer(), src).expect("corpus file lexes");
            let mid = session.tokens()[session.tokens().len() / 2].clone();
            let span = mid.span();
            let edit = Edit::new(span.offset..span.offset + span.len, mid.lexeme().to_owned());
            session.apply(&edit).expect("self-splice lexes");
            assert_eq!(
                c.lang
                    .tokenize(session.source())
                    .expect("edited source lexes"),
                session.tokens(),
                "{}: spliced tokens must match the from-scratch lex",
                c.lang.name
            );
            AblationRow {
                label: c.lang.name.to_owned(),
                base_secs: time_avg(cfg.trials, || c.lang.tokenize(src)),
                variant_secs: time_avg(cfg.trials, || {
                    session.apply(&edit).expect("self-splice lexes")
                }),
            }
        })
        .collect();
    Ablation {
        name: "full re-lex vs incremental splice (single-token edit)",
        base_label: "full re-lex",
        variant_label: "splice",
        rows,
    }
}

/// Ablation: the published per-input cache policy vs our cross-input
/// cache-reuse extension, over many small files (where start-up cost
/// matters most — the CoStar-side mirror of Fig. 11).
pub fn ablation_cache_reuse(cfg: &Config) -> Ablation {
    let rows = all_languages()
        .into_iter()
        .map(|(lang, generate)| {
            // Many small files: the regime where cache reuse pays.
            let sources = corpus(generate, 7, cfg.files.max(8), cfg.max_size / 10 + 50);
            let words: Vec<Vec<Token>> = sources
                .iter()
                .map(|s| lang.tokenize(s).expect("corpus lexes"))
                .collect();
            let mut fresh = Parser::new(lang.grammar().clone());
            let mut reuse = Parser::with_cache_reuse(lang.grammar().clone());
            for w in &words {
                assert_eq!(
                    fresh.parse(w),
                    reuse.parse(w),
                    "{}: policies agree",
                    lang.name
                );
            }
            let base_secs = time_avg(cfg.trials, || words.iter().map(|w| fresh.parse(w)).count());
            let variant_secs =
                time_avg(cfg.trials, || words.iter().map(|w| reuse.parse(w)).count());
            AblationRow {
                label: lang.name.to_owned(),
                base_secs,
                variant_secs,
            }
        })
        .collect();
    Ablation {
        name: "per-input cache (paper) vs cross-input cache reuse (extension)",
        base_label: "per-input",
        variant_label: "reuse",
        rows,
    }
}

/// Builds a synthetic grammar family member with `width` distinct
/// keyword-dispatched statement forms — growing `|N|` and `|P|` while the
/// parsed input stays similar. Used by [`ablation_grammar_size`] to
/// reproduce the §6.1 observation that per-token cost grows with grammar
/// size.
pub fn synthetic_grammar(width: usize) -> (Grammar, Vec<Token>) {
    let mut gb = GrammarBuilder::new();
    gb.rule("program", &["stmt", "program"]);
    gb.rule("program", &[]);
    for i in 0..width {
        let stmt_i = format!("stmt{i}");
        let kw = format!("kw{i}");
        let body = format!("body{i}");
        gb.rule("stmt", &[&stmt_i]);
        gb.rule(&stmt_i, &[&kw, &body, "Semi"]);
        gb.rule(&body, &["Int"]);
        gb.rule(&body, &["Int", "Comma", &body]);
    }
    let g = gb.start("program").build().expect("synthetic grammar");
    // An input exercising every statement kind round-robin.
    let mut word = Vec::new();
    let sym = |n: &str| g.symbols().lookup_terminal(n).expect("terminal");
    for k in 0..200 {
        let i = k % width;
        word.push(Token::new(sym(&format!("kw{i}")), "kw"));
        word.push(Token::new(sym("Int"), "1"));
        word.push(Token::new(sym("Comma"), ","));
        word.push(Token::new(sym("Int"), "2"));
        word.push(Token::new(sym("Semi"), ";"));
    }
    (g, word)
}

/// Comparison: CoStar vs the general-CFG Earley parser on the benchmark
/// corpora — the performance argument of the paper's §7: general parsers
/// "are designed to be compatible with all CFGs ... traits \[that\] are
/// likely to hinder fast and predictable performance on the deterministic
/// grammars that are sufficient for many practical applications."
pub fn ablation_general_cfg(cfg: &Config) -> Ablation {
    let small = Config {
        // Earley is O(n³) worst case and much slower in practice —
        // especially on the large Python grammar, where a single
        // ~1000-token file takes minutes; keep its inputs small. The
        // point (orders of magnitude, §7) is visible well before that.
        files: cfg.files.min(4),
        max_size: cfg.max_size.min(400),
        trials: cfg.trials.min(2),
    };
    let rows = prepare_corpora(&small)
        .into_iter()
        .map(|c| {
            let w = c.words.last().expect("nonempty corpus");
            let mut costar = Parser::new(c.lang.grammar().clone());
            expect_unique(c.lang.name, &costar.parse(w));
            assert!(
                earley_parse(c.lang.grammar(), w).is_some(),
                "{}: Earley rejects a corpus file",
                c.lang.name
            );
            AblationRow {
                label: c.lang.name.to_owned(),
                base_secs: time_avg(small.trials, || costar.parse(w)),
                variant_secs: time_avg(small.trials, || earley_parse(c.lang.grammar(), w)),
            }
        })
        .collect();
    Ablation {
        name: "CoStar vs general-CFG Earley parser (the §7 performance argument)",
        base_label: "costar",
        variant_label: "earley",
        rows,
    }
}

/// Ablation: parse time per token as the grammar grows (a synthetic
/// family with increasing statement-kind counts), reproducing the §6.1
/// profiling discussion ("our largest evaluation grammar is Python, so
/// the fact that our Python benchmark is the slowest in terms of tokens
/// processed per second does not come as a surprise").
pub fn ablation_grammar_size(cfg: &Config) -> Ablation {
    let widths = [10usize, 40, 160];
    let (small_g, small_w) = synthetic_grammar(widths[0]);
    let mut small = Parser::new(small_g);
    expect_unique("synthetic", &small.parse(&small_w));
    let base = time_avg(cfg.trials, || small.parse(&small_w));
    let rows = widths
        .into_iter()
        .map(|w| {
            let (g, word) = synthetic_grammar(w);
            let mut parser = Parser::new(g);
            expect_unique("synthetic", &parser.parse(&word));
            AblationRow {
                label: format!("width {w}"),
                base_secs: base,
                variant_secs: time_avg(cfg.trials, || parser.parse(&word)),
            }
        })
        .collect();
    Ablation {
        name: "per-token cost vs grammar size (synthetic family)",
        base_label: "width 10",
        variant_label: "this width",
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            files: 4,
            max_size: 300,
            trials: 1,
        }
    }

    #[test]
    fn fig8_reports_all_languages() {
        let f = fig8(&tiny());
        assert_eq!(f.rows.len(), 4);
        assert!(f.rows.iter().all(|r| r.tokens > 0 && r.megabytes > 0.0));
        assert!(f.to_string().contains("JSON"));
    }

    #[test]
    fn fig9_produces_fits() {
        // Slope sign is asserted only in the release harness runs: at
        // unit-test scale (tiny corpora, debug build, shared CI cores)
        // wall-clock noise can dominate, and a flaky slope assertion
        // would tell us nothing about the code.
        let f = fig9(&tiny());
        for p in &f.panels {
            let fit = p.fit.expect("enough points to fit");
            assert!(fit.slope.is_finite(), "{}: slope {}", p.name, fit.slope);
            assert!(p.tokens_per_sec > 0.0);
            assert!(p.points.iter().all(|&(n, s)| n > 0 && s >= 0.0));
        }
        assert!(f.to_string().contains("LOWESS"));
    }

    #[test]
    fn fig10_produces_ratios() {
        let f = fig10(&tiny());
        assert_eq!(f.rows.len(), 4);
        for r in &f.rows {
            assert!(r.parser_slowdown.0 > 0.0);
            assert!(r.pipeline_slowdown.0 > 0.0);
        }
    }

    #[test]
    fn fig11_produces_cold_and_warm_points() {
        let f = fig11(&tiny());
        assert_eq!(f.points.len(), 4);
        for p in &f.points {
            assert!(p.cold_ms_per_ktok > 0.0 && p.warm_ms_per_ktok > 0.0);
        }
    }

    #[test]
    fn prediction_profile_reports_sane_numbers() {
        let p = prediction_profile(&tiny());
        assert_eq!(p.rows.len(), 4);
        for r in &p.rows {
            assert!(r.predictions > 0, "{}", r.name);
            assert!((0.0..=1.0).contains(&r.sll_fraction));
            assert!(r.mean_lookahead >= 0.0);
        }
        // The XML element decision needs real lookahead (attribute lists).
        let xml = p.rows.iter().find(|r| r.name == "XML").unwrap();
        assert!(xml.max_lookahead >= 3, "XML max LA {}", xml.max_lookahead);
        assert!(p.to_string().contains("failovers"));
    }

    #[test]
    fn ablations_run_and_agree() {
        let a = ablation_sll_cache(&tiny());
        assert_eq!(a.rows.len(), 4);
        let b = ablation_cache_reuse(&tiny());
        assert_eq!(b.rows.len(), 4);
        let c = ablation_grammar_size(&tiny());
        assert_eq!(c.rows.len(), 3);
        assert!(!c.to_string().is_empty());
        let d = ablation_static_fast_path(&tiny());
        assert_eq!(d.rows.len(), 4);
        assert!(d.rows.iter().all(|r| r.base_secs > 0.0));
        let e = ablation_recovery(&tiny());
        assert_eq!(e.rows.len(), 4);
        assert!(e
            .rows
            .iter()
            .all(|r| r.base_secs > 0.0 && r.variant_secs > 0.0));
        assert!(e.to_string().contains("recovering"));
        // Incremental splice: the three Plain-tokenizer languages (no
        // Python — its tokenizer is not incremental-capable).
        let g = ablation_incremental(&tiny());
        assert_eq!(g.rows.len(), 3);
        assert!(g.rows.iter().all(|r| r.label != "Python"));
        assert!(g
            .rows
            .iter()
            .all(|r| r.base_secs > 0.0 && r.variant_secs > 0.0));
        assert!(g.to_string().contains("splice"));
    }

    #[test]
    fn general_cfg_comparison_runs() {
        // Earley is O(n³)-ish and this test runs unoptimized: keep the
        // corpus very small.
        let cfg = Config {
            files: 2,
            max_size: 60,
            trials: 1,
        };
        let a = ablation_general_cfg(&cfg);
        assert_eq!(a.rows.len(), 4);
        for r in &a.rows {
            assert!(r.variant_secs > 0.0 && r.base_secs > 0.0, "{}", r.label);
        }
    }

    #[test]
    fn parse_bench_reconciles_and_gates() {
        let mut p = parse_bench(&tiny());
        assert_eq!(p.rows.len(), 4);
        for r in &p.rows {
            assert!(r.reconciles, "{}: metrics must reconcile", r.name);
            assert!(r.tokens > 0 && r.null_tokens_per_sec > 0.0);
            assert!(r.decisions > 0, "{}", r.name);
            assert!((0.0..=1.0).contains(&r.cache_hit_rate));
        }
        // The JSON grammar is pure LL(1): every decision must dispatch
        // through the static fast path.
        let json_row = p.rows.iter().find(|r| r.name == "JSON").unwrap();
        assert!(json_row.static_fast_path_hits > 0);
        assert!(
            json_row.static_fast_path_fraction >= 0.5,
            "JSON static fraction {}",
            json_row.static_fast_path_fraction
        );
        assert!(json_row.decision_table_micros > 0.0);
        // The audit/certificate arm: both sides measured, and validation
        // beats the full recompute by the gated order of magnitude even
        // at unit-test scale (it is a compute ratio, not wall-clock).
        for r in &p.rows {
            assert!(
                r.audit_micros > 0.0 && r.cert_validate_micros > 0.0,
                "{}: audit arm unmeasured",
                r.name
            );
            assert!(r.cert_speedup > 0.0, "{}", r.name);
        }
        // The 10x gate is calibrated for CI's release-mode bench-smoke
        // run (which measures ~12x); an unoptimized build lands around
        // the threshold, so assert a debug-safe floor on the measured
        // ratio here and pin the value before exercising the gate logic
        // below so the self-comparison stays deterministic.
        assert!(
            p.overall_cert_speedup >= 3.0,
            "certificate validation only {:.1}x faster than recompute",
            p.overall_cert_speedup
        );
        p.overall_cert_speedup = p.overall_cert_speedup.max(10.0);
        // The incremental arm: measured on the three Plain-tokenizer
        // languages, skipped on Python, and sound (spliced == oracle)
        // everywhere. Like the cert gate, the 10x speedup floor is
        // calibrated for the release-mode CI run; at unit-test scale
        // (tiny files, debug build) assert a debug-safe floor and pin
        // the value before exercising the gate logic below.
        for r in &p.rows {
            assert!(r.incremental_equal, "{}: splice diverged", r.name);
            if r.name == "Python" {
                assert_eq!(r.splice_micros, 0.0, "Python must skip the arm");
                assert_eq!(r.incremental_speedup, 0.0);
            } else {
                assert!(
                    r.splice_micros > 0.0 && r.full_relex_micros > 0.0,
                    "{}: incremental arm unmeasured",
                    r.name
                );
                assert!(
                    r.incremental_speedup >= 2.0,
                    "{}: splice only {:.1}x faster than full re-lex",
                    r.name,
                    r.incremental_speedup
                );
            }
        }
        for r in &mut p.rows {
            if r.incremental_speedup > 0.0 {
                r.incremental_speedup = r.incremental_speedup.max(10.0);
            }
        }
        for r in &p.rows {
            assert!(
                r.recovery_overhead > 0.0,
                "{}: recovery overhead unmeasured",
                r.name
            );
        }
        // The batch arm must have run its determinism oracle on every
        // corpus; on any host count it must match sequential exactly.
        assert!(p.batch_equal, "batch results diverged from sequential");
        assert!(p.batch_available >= 1 && p.batch_speedup_4 > 0.0);
        let json = p.to_json();
        assert!(json.contains("\"batch_available\""));
        assert!(json.contains("\"batch_speedup_4\""));
        assert!(json.contains("\"batch_equal\":true"));
        assert!(p.to_string().contains("speedup at 4 workers"));
        assert!(json.contains("\"observer_overhead\""));
        assert!(json.contains("\"overall_overhead\""));
        assert!(json.contains("\"recovery_overhead\""));
        assert!(json.contains("\"overall_recovery_overhead\""));
        assert!(json.contains("\"static_fast_path_hits\""));
        assert!(json.contains("\"static_fast_path_fraction\""));
        assert!(json.contains("\"decision_table_micros\""));
        assert!(json.contains("\"audit_micros\""));
        assert!(json.contains("\"cert_validate_micros\""));
        assert!(json.contains("\"cert_speedup\""));
        assert!(json.contains("\"overall_cert_speedup\""));
        assert!(p.to_string().contains("faster than full recompute"));
        assert!(json.contains("\"reconciles\":true"));
        // The cost-certificate arm: every parse stayed within its
        // certified bound, and the bound itself was measured.
        for r in &p.rows {
            assert_eq!(r.cost_violations, 0, "{}: bound violated", r.name);
            assert!(
                r.predicted_steps >= r.meter_steps,
                "{}: predicted {} < metered {}",
                r.name,
                r.predicted_steps,
                r.meter_steps
            );
            assert!(
                r.cost_bound_ratio >= 1.0,
                "{}: cost bound ratio {}",
                r.name,
                r.cost_bound_ratio
            );
        }
        assert!(json.contains("\"predicted_steps\""));
        assert!(json.contains("\"cost_violations\":0"));
        assert!(json.contains("\"cost_bound_ratio\""));
        assert!(p.to_string().contains("certified bound held"));
        assert!(json.contains("\"splice_micros\""));
        assert!(json.contains("\"full_relex_micros\""));
        assert!(json.contains("\"incremental_speedup\""));
        assert!(json.contains("\"incremental_equal\":true"));
        assert!(p.to_string().contains("single-token edit splice"));
        // The gate accepts a run against its own baseline...
        p.check_against(&json, 0.05)
            .expect("self-comparison passes");
        // ...and rejects a genuinely regressed observer path.
        let mut worse = p.clone();
        worse.overall_overhead = 10.0;
        assert!(worse.check_against(&json, 0.05).is_err());
        // ...and a regressed recovering path on clean input, even against
        // a baseline predating the recovery field (parity fallback).
        let mut slow_recovery = p.clone();
        slow_recovery.overall_recovery_overhead = 10.0;
        assert!(slow_recovery.check_against(&json, 0.05).is_err());
        let legacy = json.replace("\"overall_recovery_overhead\"", "\"renamed_away\"");
        assert!(slow_recovery.check_against(&legacy, 0.05).is_err());
        // ...and a baseline without the gate number is a configuration
        // error, not a pass.
        assert!(p.check_against("{\"rows\":[]}", 0.05).is_err());
        // A torn metrics report always fails.
        let mut torn = p.clone();
        torn.rows[0].reconciles = false;
        assert!(torn.check_against(&json, 0.05).is_err());
        // A parse that out-stepped its certified cost bound always fails,
        // as does a bound below parity or one past the fixed envelope.
        let mut unsound_cost = p.clone();
        unsound_cost.rows[0].cost_violations = 1;
        assert!(unsound_cost.check_against(&json, 0.05).is_err());
        let mut tight_cost = p.clone();
        tight_cost.rows[0].cost_bound_ratio = 0.5;
        assert!(tight_cost.check_against(&json, 0.05).is_err());
        let mut loose_cost = p.clone();
        loose_cost.rows[0].cost_bound_ratio = 2_000_000.0;
        assert!(loose_cost.check_against(&json, 0.05).is_err());
        // A run where the static fast path stopped firing fails the gate.
        let mut unplugged = p.clone();
        for r in &mut unplugged.rows {
            r.static_fast_path_hits = 0;
            r.static_fast_path_fraction = 0.0;
        }
        assert!(unplugged.check_against(&json, 0.05).is_err());
        // A run whose certificate validation lost its order-of-magnitude
        // edge over the full recompute fails the 10x gate.
        let mut slow_cert = p.clone();
        slow_cert.overall_cert_speedup = 2.0;
        assert!(slow_cert.check_against(&json, 0.05).is_err());
        // An incremental splice that diverged from the from-scratch lex
        // always fails, and a JSON single-token-edit speedup below the
        // 10x floor fails the absolute gate.
        let mut torn_splice = p.clone();
        torn_splice.rows[0].incremental_equal = false;
        assert!(torn_splice.check_against(&json, 0.05).is_err());
        let mut slow_splice = p.clone();
        for r in &mut slow_splice.rows {
            if r.name == "JSON" {
                r.incremental_speedup = 3.0;
            }
        }
        assert!(slow_splice.check_against(&json, 0.05).is_err());
        // A batch run that diverged from the sequential oracle always
        // fails, on any host.
        let mut torn_batch = p.clone();
        torn_batch.batch_equal = false;
        assert!(torn_batch.check_against(&json, 0.05).is_err());
        // On a >=4-core host, a speedup below the 1.8x floor fails; under
        // 4 cores the determinism gate still applies but the floor does
        // not (a serial machine cannot exhibit parallel speedup).
        let mut slow_batch = p.clone();
        slow_batch.batch_available = 8;
        slow_batch.batch_speedup_4 = 1.0;
        assert!(slow_batch.check_against(&json, 0.05).is_err());
        slow_batch.batch_available = 1;
        assert!(slow_batch.check_against(&json, 0.05).is_ok());
    }

    #[test]
    fn synthetic_grammar_scales_with_width() {
        let (g10, w) = synthetic_grammar(10);
        let (g40, _) = synthetic_grammar(40);
        assert!(g40.num_nonterminals() > g10.num_nonterminals());
        assert_eq!(w.len(), 1000);
    }
}
