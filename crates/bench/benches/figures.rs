//! Criterion benches: one group per paper table/figure plus the
//! ablations. Each group wraps the same workloads as the corresponding
//! `costar-bench` harness function, sized so `cargo bench --workspace`
//! completes in minutes while still exercising every experiment.
//!
//! * `fig8_grammar_stats` — grammar construction + analysis per language
//!   (the static half of the Fig. 8 table).
//! * `fig9_costar_scaling` — CoStar parse time at three input sizes per
//!   language: the linearity experiment's core measurement.
//! * `fig10_slowdown` — CoStar vs AntlrSim vs lexing on the same file.
//! * `fig11_cache_warmup` — cold-cache vs warmed-cache AntlrSim runs on
//!   the Python corpus.
//! * `ablation_*` — the design-choice ablations from DESIGN.md, plus
//!   `ablation_budget_overhead`, which prices the resource-governance
//!   layer (budget metering and cache caps) against an ungoverned parse,
//!   and `ablation_observer_overhead`, which prices the observability
//!   layer: the monomorphized NullObserver path must cost the same as a
//!   plain parse, and the metrics/trace observers must stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use costar::{Budget, Edit, EditSession, MetricsObserver, NullObserver, Parser, TraceObserver};
use costar_baselines::AntlrSim;
use costar_bench::synthetic_grammar;
use costar_grammar::analysis::GrammarAnalysis;
use costar_langs::all_languages;

fn fig8_grammar_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_grammar_stats");
    group.sample_size(10);
    for (lang, _) in all_languages() {
        let grammar = lang.grammar().clone();
        group.bench_function(BenchmarkId::from_parameter(lang.name), |b| {
            b.iter(|| GrammarAnalysis::compute(black_box(&grammar)))
        });
    }
    group.finish();
}

fn fig9_costar_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_costar_scaling");
    group.sample_size(10);
    for (lang, generate) in all_languages() {
        for size in [500usize, 2_000, 8_000] {
            let src = generate(42, size);
            let word = lang.tokenize(&src).expect("corpus lexes");
            let mut parser = Parser::new(lang.grammar().clone());
            assert!(parser.parse(&word).is_accept());
            group.throughput(Throughput::Elements(word.len() as u64));
            group.bench_function(BenchmarkId::new(lang.name, word.len()), |b| {
                b.iter(|| parser.parse(black_box(&word)))
            });
        }
    }
    group.finish();
}

fn fig10_slowdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_slowdown");
    group.sample_size(10);
    for (lang, generate) in all_languages() {
        let src = generate(7, 4_000);
        let word = lang.tokenize(&src).expect("corpus lexes");
        group.throughput(Throughput::Elements(word.len() as u64));

        let mut costar = Parser::new(lang.grammar().clone());
        assert!(costar.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("costar", lang.name), |b| {
            b.iter(|| costar.parse(black_box(&word)))
        });

        let mut antlr = AntlrSim::with_cold_cache(lang.grammar().clone());
        assert!(antlr.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("antlr_sim", lang.name), |b| {
            b.iter(|| antlr.parse(black_box(&word)))
        });

        group.bench_function(BenchmarkId::new("lexer", lang.name), |b| {
            b.iter(|| lang.tokenize(black_box(&src)))
        });
    }
    group.finish();
}

fn fig11_cache_warmup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_cache_warmup");
    group.sample_size(10);
    let (lang, generate) = all_languages()
        .into_iter()
        .find(|(l, _)| l.name == "Python")
        .expect("Python present");
    for size in [300usize, 4_000] {
        let src = generate(11, size);
        let word = lang.tokenize(&src).expect("corpus lexes");
        group.throughput(Throughput::Elements(word.len() as u64));

        let mut cold = AntlrSim::with_cold_cache(lang.grammar().clone());
        assert!(cold.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("cold", word.len()), |b| {
            b.iter(|| cold.parse(black_box(&word)))
        });

        let mut warm = AntlrSim::new(lang.grammar().clone());
        warm.warm_up(std::slice::from_ref(&word));
        group.bench_function(BenchmarkId::new("warm", word.len()), |b| {
            b.iter(|| warm.parse(black_box(&word)))
        });
    }
    group.finish();
}

fn ablation_sll_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sll_cache");
    group.sample_size(10);
    for (lang, generate) in all_languages() {
        let src = generate(3, 1_500);
        let word = lang.tokenize(&src).expect("corpus lexes");
        group.throughput(Throughput::Elements(word.len() as u64));

        let mut adaptive = Parser::new(lang.grammar().clone());
        assert!(adaptive.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("adaptive", lang.name), |b| {
            b.iter(|| adaptive.parse(black_box(&word)))
        });

        let mut ll_only = Parser::with_ll_only(lang.grammar().clone());
        assert!(ll_only.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("ll_only", lang.name), |b| {
            b.iter(|| ll_only.parse(black_box(&word)))
        });
    }
    group.finish();
}

fn ablation_cache_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cache_reuse");
    group.sample_size(10);
    for (lang, generate) in all_languages() {
        // Many small files: where cross-input reuse pays.
        let words: Vec<_> = (0..12u64)
            .map(|s| {
                let src = generate(s, 120);
                lang.tokenize(&src).expect("corpus lexes")
            })
            .collect();

        let mut fresh = Parser::new(lang.grammar().clone());
        group.bench_function(BenchmarkId::new("per_input", lang.name), |b| {
            b.iter(|| words.iter().map(|w| fresh.parse(black_box(w))).count())
        });

        let mut reuse = Parser::with_cache_reuse(lang.grammar().clone());
        group.bench_function(BenchmarkId::new("reuse", lang.name), |b| {
            b.iter(|| words.iter().map(|w| reuse.parse(black_box(w))).count())
        });
    }
    group.finish();
}

fn ablation_grammar_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_grammar_size");
    group.sample_size(10);
    for width in [10usize, 40, 160] {
        let (grammar, word) = synthetic_grammar(width);
        let mut parser = Parser::new(grammar);
        assert!(parser.parse(&word).is_accept());
        group.throughput(Throughput::Elements(word.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(width), |b| {
            b.iter(|| parser.parse(black_box(&word)))
        });
    }
    group.finish();
}

fn ablation_budget_overhead(c: &mut Criterion) {
    // Cost of resource governance on the hot path: an unlimited budget
    // (one saturating counter add per step), a derived fuel bound plus
    // deadline (counter compare + amortized clock read), and a capped
    // cache (LRU bookkeeping on every intern/lookup). All three must
    // accept the same inputs; the delta is the bench's entire point.
    let mut group = c.benchmark_group("ablation_budget_overhead");
    group.sample_size(10);
    for (lang, generate) in all_languages() {
        let src = generate(11, 1_500);
        let word = lang.tokenize(&src).expect("corpus lexes");
        group.throughput(Throughput::Elements(word.len() as u64));

        let mut unlimited = Parser::new(lang.grammar().clone());
        assert!(unlimited.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("unlimited", lang.name), |b| {
            b.iter(|| unlimited.parse(black_box(&word)))
        });

        let budget = Budget::derived(lang.grammar(), word.len())
            .with_deadline(std::time::Duration::from_secs(600));
        let mut governed = Parser::with_budget(lang.grammar().clone(), budget);
        assert!(governed.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("derived_budget", lang.name), |b| {
            b.iter(|| governed.parse(black_box(&word)))
        });

        let mut capped = Parser::with_budget(
            lang.grammar().clone(),
            Budget::unlimited().with_max_cache_entries(64),
        );
        assert!(capped.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("cache_cap_64", lang.name), |b| {
            b.iter(|| capped.parse(black_box(&word)))
        });
    }
    group.finish();
}

fn ablation_static_fast_path(c: &mut Criterion) {
    // Cost of consulting the precompiled decision table on the hot path
    // versus always running full adaptive prediction. On heavily-LL(1)
    // grammars (JSON is 5/5) the "fast_path" arm should win by skipping
    // SLL simulation and cache traffic entirely; "no_table" prices what
    // prediction costs without the static analysis.
    let mut group = c.benchmark_group("ablation_static_fast_path");
    group.sample_size(10);
    for (lang, generate) in all_languages() {
        let src = generate(23, 1_500);
        let word = lang.tokenize(&src).expect("corpus lexes");
        group.throughput(Throughput::Elements(word.len() as u64));

        let mut fast = Parser::new(lang.grammar().clone());
        assert!(fast.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("fast_path", lang.name), |b| {
            b.iter(|| fast.parse(black_box(&word)))
        });

        let mut full = Parser::with_no_static_fast_path(lang.grammar().clone());
        assert!(full.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("no_table", lang.name), |b| {
            b.iter(|| full.parse(black_box(&word)))
        });
    }
    group.finish();
}

fn ablation_incremental(c: &mut Criterion) {
    // Incremental lexing: splicing a single-token edit into a live
    // EditSession vs re-lexing the whole file from scratch. The edit
    // replaces the mid-file token's lexeme with itself — each iteration
    // pays the same restart→resync relex cost as a real same-size change
    // while leaving the session unchanged, so no per-iteration setup is
    // needed. Python is absent: its INDENT/DEDENT synthesis is
    // line-global, so it has no incremental path to measure.
    let mut group = c.benchmark_group("ablation_incremental");
    group.sample_size(10);
    for (lang, generate) in all_languages() {
        if !lang.incremental_lexing() {
            continue;
        }
        let src = generate(29, 4_000);
        let mut session = EditSession::new(lang.lexer(), &src).expect("corpus lexes");
        let mid = session.tokens()[session.tokens().len() / 2].clone();
        let span = mid.span();
        let edit = Edit::new(span.offset..span.offset + span.len, mid.lexeme().to_owned());
        assert!(session.apply(&edit).is_ok());
        group.throughput(Throughput::Bytes(src.len() as u64));

        group.bench_function(BenchmarkId::new("splice", lang.name), |b| {
            b.iter(|| session.apply(black_box(&edit)).expect("self-splice lexes"))
        });
        group.bench_function(BenchmarkId::new("full_relex", lang.name), |b| {
            b.iter(|| lang.tokenize(black_box(&src)))
        });
    }
    group.finish();
}

fn ablation_observer_overhead(c: &mut Criterion) {
    // Cost of the observability layer per observer flavor. The "null"
    // arms are the ≤2%-overhead acceptance check: `parse` *is*
    // `parse_observed(&mut NullObserver)`, monomorphized with every hook
    // an empty inline default, so the two must time identically — any
    // spread between them is measurement noise, and any spread between
    // them and the pre-observer parser is the layer's true cost.
    let mut group = c.benchmark_group("ablation_observer_overhead");
    group.sample_size(10);
    for (lang, generate) in all_languages() {
        let src = generate(17, 1_500);
        let word = lang.tokenize(&src).expect("corpus lexes");
        group.throughput(Throughput::Elements(word.len() as u64));

        let mut parser = Parser::new(lang.grammar().clone());
        assert!(parser.parse(&word).is_accept());
        group.bench_function(BenchmarkId::new("plain", lang.name), |b| {
            b.iter(|| parser.parse(black_box(&word)))
        });
        group.bench_function(BenchmarkId::new("null", lang.name), |b| {
            b.iter(|| parser.parse_observed(black_box(&word), &mut NullObserver))
        });
        group.bench_function(BenchmarkId::new("metrics", lang.name), |b| {
            b.iter(|| parser.parse_with_metrics(black_box(&word)))
        });
        group.bench_function(BenchmarkId::new("trace", lang.name), |b| {
            b.iter(|| {
                let mut obs = (MetricsObserver::new(), TraceObserver::new(256));
                parser.parse_observed(black_box(&word), &mut obs)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig8_grammar_stats,
    fig9_costar_scaling,
    fig10_slowdown,
    fig11_cache_warmup,
    ablation_sll_cache,
    ablation_cache_reuse,
    ablation_grammar_size,
    ablation_budget_overhead,
    ablation_static_fast_path,
    ablation_incremental,
    ablation_observer_overhead
);
criterion_main!(benches);
