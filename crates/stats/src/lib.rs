//! # costar-stats — evaluation statistics substrate
//!
//! The paper's Fig. 9 argues CoStar is linear-time by overlaying each
//! scatter plot with a least-squares regression line and a LOWESS curve
//! (Cleveland 1979): when the unconstrained LOWESS smoother coincides
//! with the straight line, the relationship is linear. This crate
//! implements both, plus the summary statistics the other figures need
//! (means, standard deviations for Fig. 10's error bars, per-group
//! slowdown ratios).

#![warn(missing_docs)]

mod lowess;
mod regression;
mod summary;

pub use lowess::{lowess, max_relative_deviation};
pub use regression::{linear_fit, LinearFit};
pub use summary::{mean, ratio_stats, std_dev, RatioStats};
