//! Summary statistics: means, standard deviations, and slowdown ratios.
//!
//! Fig. 10 of the paper reports "average slowdown" bars with standard
//! deviations as error bars; [`ratio_stats`] computes exactly that from
//! paired per-file timings.

/// Arithmetic mean; 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// use costar_stats::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0.0 for fewer than two
/// samples.
///
/// # Examples
///
/// ```
/// use costar_stats::std_dev;
/// assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 0.001);
/// ```
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Per-group slowdown statistics: the mean and standard deviation of the
/// pointwise ratios `numerator[i] / denominator[i]` (Fig. 10's bars and
/// error bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioStats {
    /// Mean of the pointwise ratios.
    pub mean: f64,
    /// Sample standard deviation of the pointwise ratios.
    pub std_dev: f64,
    /// Number of pairs used.
    pub n: usize,
}

/// Computes slowdown statistics from paired measurements, skipping pairs
/// whose denominator is non-positive.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use costar_stats::ratio_stats;
/// let slow = [10.0, 20.0, 30.0];
/// let fast = [2.0, 4.0, 6.0];
/// let r = ratio_stats(&slow, &fast);
/// assert_eq!(r.mean, 5.0);
/// assert_eq!(r.std_dev, 0.0);
/// assert_eq!(r.n, 3);
/// ```
pub fn ratio_stats(numerator: &[f64], denominator: &[f64]) -> RatioStats {
    assert_eq!(
        numerator.len(),
        denominator.len(),
        "mismatched sample lengths"
    );
    let ratios: Vec<f64> = numerator
        .iter()
        .zip(denominator)
        .filter(|&(_, &d)| d > 0.0)
        .map(|(&n, &d)| n / d)
        .collect();
    RatioStats {
        mean: mean(&ratios),
        std_dev: std_dev(&ratios),
        n: ratios.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[7.0]), 7.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[7.0]), 0.0);
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        // Variance of [1,2,3,4] (sample) = 5/3.
        let sd = std_dev(&[1.0, 2.0, 3.0, 4.0]);
        assert!((sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ratio_stats_varied() {
        let r = ratio_stats(&[10.0, 30.0], &[2.0, 3.0]);
        assert_eq!(r.mean, 7.5);
        assert!(r.std_dev > 0.0);
        assert_eq!(r.n, 2);
    }

    #[test]
    fn zero_denominators_skipped() {
        let r = ratio_stats(&[10.0, 30.0], &[0.0, 3.0]);
        assert_eq!(r.n, 1);
        assert_eq!(r.mean, 10.0);
    }
}
