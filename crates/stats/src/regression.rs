//! Ordinary least-squares linear regression.

/// A fitted line `y = intercept + slope·x` with its coefficient of
/// determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² (1.0 = perfect linear fit).
    pub r_squared: f64,
}

impl LinearFit {
    /// The fitted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits a least-squares line through `(x, y)` pairs.
///
/// Returns `None` when fewer than two points are given or all `x` values
/// coincide (the slope would be undefined).
///
/// # Examples
///
/// ```
/// use costar_stats::linear_fit;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.0, 4.0, 6.0, 8.0];
/// let fit = linear_fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // constant y: the flat line fits perfectly
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovered() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x - 7.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.5).abs() < 1e-9);
        assert!((fit.intercept + 7.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(100.0) - 343.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_fits_reasonably() {
        // Deterministic "noise" via alternating offsets.
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn quadratic_data_has_low_r2_against_line_through_origin_symmetry() {
        // Symmetric parabola: slope ~0, poor R².
        let xs: Vec<f64> = (-50..=50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.slope.abs() < 1e-9);
        assert!(fit.r_squared < 0.01);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(linear_fit(&[], &[]).is_none());
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y_is_perfect_flat_fit() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
