//! LOWESS: locally weighted scatterplot smoothing (Cleveland 1979).
//!
//! The paper (Fig. 9) fits a LOWESS curve with hyperparameter `f = 0.1`
//! to each benchmark's scatter plot: "LOWESS is a method for
//! approximating a scatter plot with a smooth curve that is not
//! constrained to be linear. The close correspondence between LOWESS
//! curves and regression lines in our results indicates a linear
//! relationship between input size and parse time."
//!
//! This is the classic single-pass (non-robust) variant: for each point,
//! fit a weighted least-squares line over its `⌈f·n⌉` nearest neighbors
//! with tricube weights, and take the fitted value at that point.

/// Computes the LOWESS smoothed values at each `x`.
///
/// `xs` must be sorted ascending; `f ∈ (0, 1]` is the fraction of points
/// in each local window (the paper uses 0.1). Returns one smoothed `y`
/// per input point.
///
/// # Panics
///
/// Panics if the inputs have different lengths, are empty, or `f` is not
/// in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use costar_stats::lowess;
/// let xs: Vec<f64> = (0..20).map(f64::from).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
/// let smooth = lowess(&xs, &ys, 0.5);
/// // On perfectly linear data the smoother reproduces the line.
/// for (s, y) in smooth.iter().zip(&ys) {
///     assert!((s - y).abs() < 1e-9);
/// }
/// ```
pub fn lowess(xs: &[f64], ys: &[f64], f: f64) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(!xs.is_empty(), "empty sample");
    assert!(f > 0.0 && f <= 1.0, "f must be in (0, 1]");
    let n = xs.len();
    let window = ((f * n as f64).ceil() as usize).clamp(2.min(n), n);

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // Nearest `window` points by |x - xs[i]|, found with a sliding
        // interval since xs is sorted.
        let (mut lo, mut hi) = (i, i);
        while hi - lo + 1 < window {
            let extend_left = lo > 0 && (hi + 1 >= n || xs[i] - xs[lo - 1] <= xs[hi + 1] - xs[i]);
            if extend_left {
                lo -= 1;
            } else {
                hi += 1;
            }
        }
        let d_max = (xs[i] - xs[lo]).abs().max((xs[hi] - xs[i]).abs());

        // Tricube weights over the window.
        let mut sw = 0.0;
        let mut swx = 0.0;
        let mut swy = 0.0;
        let mut swxx = 0.0;
        let mut swxy = 0.0;
        for k in lo..=hi {
            let w = if d_max == 0.0 {
                1.0
            } else {
                let u = ((xs[k] - xs[i]).abs() / d_max).min(1.0);
                let t = 1.0 - u * u * u;
                t * t * t
            };
            sw += w;
            swx += w * xs[k];
            swy += w * ys[k];
            swxx += w * xs[k] * xs[k];
            swxy += w * xs[k] * ys[k];
        }
        let denom = sw * swxx - swx * swx;
        let y_hat = if denom.abs() < 1e-12 {
            // Degenerate window (coincident x): weighted mean.
            swy / sw
        } else {
            let slope = (sw * swxy - swx * swy) / denom;
            let intercept = (swy - slope * swx) / sw;
            intercept + slope * xs[i]
        };
        out.push(y_hat);
    }
    out
}

/// Maximum relative deviation between a LOWESS curve and a fitted line —
/// the quantitative form of the paper's "LOWESS curves coincide with
/// regression lines" linearity argument.
pub fn max_relative_deviation(smooth: &[f64], fitted: &[f64]) -> f64 {
    smooth
        .iter()
        .zip(fitted)
        .map(|(s, l)| {
            let scale = l.abs().max(1e-12);
            (s - l).abs() / scale
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::linear_fit;

    #[test]
    fn linear_data_reproduced_exactly() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x + 3.0).collect();
        let smooth = lowess(&xs, &ys, 0.1);
        for (s, y) in smooth.iter().zip(&ys) {
            assert!((s - y).abs() < 1e-8, "{s} vs {y}");
        }
    }

    #[test]
    fn smoother_tracks_curvature_a_line_cannot() {
        // Quadratic data: LOWESS must deviate from the global line — the
        // very signal Fig. 9 would show if parse time were nonlinear.
        let xs: Vec<f64> = (0..200).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let smooth = lowess(&xs, &ys, 0.1);
        let fit = linear_fit(&xs, &ys).unwrap();
        let fitted: Vec<f64> = xs.iter().map(|&x| fit.predict(x)).collect();
        let dev = max_relative_deviation(&smooth, &fitted);
        assert!(dev > 0.5, "expected large deviation, got {dev}");
        // But LOWESS stays close to the true quadratic locally.
        let mid = 100;
        assert!((smooth[mid] - ys[mid]).abs() / ys[mid] < 0.05);
    }

    #[test]
    fn noisy_linear_data_smooths_to_near_line() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let smooth = lowess(&xs, &ys, 0.2);
        let fit = linear_fit(&xs, &ys).unwrap();
        let fitted: Vec<f64> = xs.iter().map(|&x| fit.predict(x)).collect();
        // Interior points hug the line even though the raw data zigzags.
        for i in 10..90 {
            assert!((smooth[i] - fitted[i]).abs() < 0.5);
        }
    }

    #[test]
    fn single_point_and_duplicates() {
        assert_eq!(lowess(&[1.0], &[5.0], 0.5), vec![5.0]);
        let s = lowess(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0], 1.0);
        for v in s {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "f must be in")]
    fn invalid_f_panics() {
        lowess(&[1.0, 2.0], &[1.0, 2.0], 0.0);
    }
}
