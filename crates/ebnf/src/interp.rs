//! A direct EBNF interpreter, used as a test oracle for desugaring.
//!
//! The paper's conversion tool comes with the caveat: "These
//! transformations produce a grammar that accepts the same language as
//! the original one, but we do not prove this fact" (§6.1). We also do
//! not prove it — but we *test* it: this module recognizes token
//! sequences directly against the EBNF (backtracking with fuel), and the
//! crate's tests compare its verdicts with parses of the desugared BNF
//! grammar.

use crate::ast::{EbnfGrammar, Expr};
use std::collections::HashMap;

/// Result of an interpreted recognition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpResult {
    /// The word is in the EBNF grammar's language.
    Match,
    /// It is not.
    NoMatch,
    /// The fuel budget ran out before a verdict (possible with
    /// pathological nullable recursion); callers should treat this as
    /// "unknown".
    OutOfFuel,
}

/// Recognizes `word` (a sequence of terminal names: token-type names or
/// literal spellings) against the EBNF grammar's start rule.
///
/// `fuel` bounds the total number of interpreter steps.
///
/// # Examples
///
/// ```
/// use costar_ebnf::{interp_recognize, parse_ebnf, InterpResult};
/// let g = parse_ebnf("list : NUM (',' NUM)* ;")?;
/// let word = ["NUM", ",", "NUM"];
/// assert_eq!(interp_recognize(&g, &word, 10_000), InterpResult::Match);
/// assert_eq!(interp_recognize(&g, &["NUM", ","], 10_000), InterpResult::NoMatch);
/// # Ok::<(), costar_ebnf::EbnfError>(())
/// ```
pub fn interp_recognize(g: &EbnfGrammar, word: &[&str], fuel: u64) -> InterpResult {
    let rules: HashMap<&str, &Expr> = g.rules.iter().map(|r| (r.name.as_str(), &r.body)).collect();
    let mut interp = Interp {
        rules,
        word,
        fuel,
        depth: 0,
        exhausted: false,
    };
    let start = &g.rules[0];
    let mut matched_full = false;
    interp.matches(&Expr::Rule(start.name.clone()), 0, &mut |end| {
        if end == word.len() {
            matched_full = true;
        }
        matched_full
    });
    if matched_full {
        InterpResult::Match
    } else if interp.exhausted {
        InterpResult::OutOfFuel
    } else {
        InterpResult::NoMatch
    }
}

struct Interp<'a> {
    rules: HashMap<&'a str, &'a Expr>,
    word: &'a [&'a str],
    fuel: u64,
    depth: u32,
    exhausted: bool,
}

/// Recursion ceiling: beyond this the interpreter reports fuel
/// exhaustion rather than risking a stack overflow on left-recursive
/// EBNF rules.
const MAX_DEPTH: u32 = 1_000;

impl Interp<'_> {
    /// Calls `k` with every end position reachable by matching `expr`
    /// starting at `pos`; `k` returns `true` to stop the search.
    fn matches(&mut self, expr: &Expr, pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        if self.fuel == 0 || self.depth >= MAX_DEPTH {
            self.exhausted = true;
            return false;
        }
        self.fuel -= 1;
        self.depth += 1;
        let result = self.matches_inner(expr, pos, k);
        self.depth -= 1;
        result
    }

    fn matches_inner(&mut self, expr: &Expr, pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        match expr {
            Expr::TokenType(name) | Expr::Literal(name) => {
                if self.word.get(pos) == Some(&name.as_str()) {
                    k(pos + 1)
                } else {
                    false
                }
            }
            Expr::Rule(name) => match self.rules.get(name.as_str()) {
                Some(body) => {
                    let body = *body;
                    self.matches(body, pos, k)
                }
                None => false,
            },
            Expr::Seq(parts) => self.match_seq(parts, pos, k),
            Expr::Alt(alts) => {
                for a in alts {
                    if self.matches(a, pos, k) {
                        return true;
                    }
                }
                false
            }
            Expr::Opt(inner) => {
                if k(pos) {
                    return true;
                }
                self.matches(inner, pos, k)
            }
            Expr::Star(inner) => self.match_star(inner, pos, k, true),
            Expr::Plus(inner) => {
                // One mandatory iteration, then a star.
                let mut mids = Vec::new();
                self.matches(inner, pos, &mut |p| {
                    mids.push(p);
                    false
                });
                for p in mids {
                    if self.match_star(inner, p, k, true) {
                        return true;
                    }
                }
                false
            }
        }
    }

    fn match_seq(&mut self, parts: &[Expr], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        match parts.split_first() {
            None => k(pos),
            Some((first, rest)) => {
                // Continuation style needs re-entrant self access; collect
                // intermediate positions instead (words are short in the
                // oracle's use, so this is fine).
                let mut mids = Vec::new();
                self.matches(first, pos, &mut |p| {
                    mids.push(p);
                    false
                });
                for p in mids {
                    if self.match_seq(rest, p, k) {
                        return true;
                    }
                }
                false
            }
        }
    }

    fn match_star(
        &mut self,
        inner: &Expr,
        pos: usize,
        k: &mut dyn FnMut(usize) -> bool,
        allow_empty: bool,
    ) -> bool {
        if allow_empty && k(pos) {
            return true;
        }
        let mut mids = Vec::new();
        self.matches(inner, pos, &mut |p| {
            mids.push(p);
            false
        });
        for p in mids {
            // Guard against ε-loops: only recurse on progress.
            if p > pos && self.match_star(inner, p, k, true) {
                return true;
            }
            if p == pos && allow_empty {
                // ε iteration adds nothing new; k(pos) already tried.
            }
        }
        false
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::parse_ebnf;

    fn rec(src: &str, word: &[&str]) -> InterpResult {
        let g = parse_ebnf(src).unwrap();
        interp_recognize(&g, word, 100_000)
    }

    #[test]
    fn terminals_and_sequences() {
        assert_eq!(rec("s : A B ;", &["A", "B"]), InterpResult::Match);
        assert_eq!(rec("s : A B ;", &["A"]), InterpResult::NoMatch);
        assert_eq!(rec("s : A B ;", &["A", "B", "B"]), InterpResult::NoMatch);
    }

    #[test]
    fn alternatives() {
        assert_eq!(rec("s : A | B ;", &["B"]), InterpResult::Match);
        assert_eq!(rec("s : A | B ;", &["C"]), InterpResult::NoMatch);
    }

    #[test]
    fn star_plus_opt() {
        assert_eq!(rec("s : A* B ;", &["B"]), InterpResult::Match);
        assert_eq!(rec("s : A* B ;", &["A", "A", "B"]), InterpResult::Match);
        assert_eq!(rec("s : A+ ;", &[]), InterpResult::NoMatch);
        assert_eq!(rec("s : A+ ;", &["A", "A"]), InterpResult::Match);
        assert_eq!(rec("s : A? B ;", &["B"]), InterpResult::Match);
        assert_eq!(rec("s : A? B ;", &["A", "B"]), InterpResult::Match);
        assert_eq!(rec("s : A? B ;", &["A", "A", "B"]), InterpResult::NoMatch);
    }

    #[test]
    fn rule_references_and_recursion() {
        let src = "s : A s | B ;";
        assert_eq!(rec(src, &["B"]), InterpResult::Match);
        assert_eq!(rec(src, &["A", "A", "B"]), InterpResult::Match);
        assert_eq!(rec(src, &["A"]), InterpResult::NoMatch);
    }

    #[test]
    fn literals_match_by_spelling() {
        assert_eq!(
            rec("s : '{' A '}' ;", &["{", "A", "}"]),
            InterpResult::Match
        );
    }

    #[test]
    fn backtracking_across_group_choices() {
        // Needs to try the second alternative of the group after the
        // first one consumes too much.
        let src = "s : (A | A B) C ;";
        assert_eq!(rec(src, &["A", "B", "C"]), InterpResult::Match);
        assert_eq!(rec(src, &["A", "C"]), InterpResult::Match);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        // Nullable self-recursion: s can loop forever without consuming.
        let src = "s : s A | ;";
        assert_eq!(rec(src, &["A"]), InterpResult::Match);
        let g = parse_ebnf(src).unwrap();
        assert_eq!(interp_recognize(&g, &["B"], 50), InterpResult::OutOfFuel);
    }
}
