//! EBNF grammar text format: AST and parser.
//!
//! The paper's evaluation pipeline (§6.1) includes "a tool that converts a
//! grammar in ANTLR's input format to the OCaml data structure that
//! CoStar takes as input", desugaring EBNF operators into BNF. This
//! module is the front half of that tool: a parser for an ANTLR-flavored
//! grammar notation.
//!
//! ```text
//! // a rule per line; the first rule's left-hand side is the start symbol
//! json  : value ;
//! value : obj | arr | STRING | NUMBER | 'true' | 'false' | 'null' ;
//! obj   : '{' (pair (',' pair)*)? '}' ;
//! pair  : STRING ':' value ;
//! arr   : '[' (value (',' value)*)? ']' ;
//! ```
//!
//! Lowercase identifiers are rule references (nonterminals), UPPERCASE
//! identifiers are token types (terminals), and quoted literals are
//! terminals named by their spelling. `*`, `+`, `?`, parenthesized groups,
//! and `|` are the EBNF operators the back half desugars away.

use std::fmt;

/// An EBNF expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Reference to a rule (nonterminal), by name.
    Rule(String),
    /// A token type (terminal), by name.
    TokenType(String),
    /// A literal terminal, e.g. `'{'`; its terminal name is its spelling.
    Literal(String),
    /// Sequence of expressions.
    Seq(Vec<Expr>),
    /// Ordered alternatives.
    Alt(Vec<Expr>),
    /// Zero or more.
    Star(Box<Expr>),
    /// One or more.
    Plus(Box<Expr>),
    /// Zero or one.
    Opt(Box<Expr>),
}

/// One EBNF rule: `name : body ;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The rule (nonterminal) name.
    pub name: String,
    /// The rule body.
    pub body: Expr,
}

/// A parsed EBNF grammar: rules in source order; the first rule's
/// left-hand side is the start symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EbnfGrammar {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

/// A syntax error in the EBNF source, with line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EbnfError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for EbnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for EbnfError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Literal(String),
    Colon,
    Semi,
    Pipe,
    LParen,
    RParen,
    Star,
    Plus,
    Question,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl Scanner<'_> {
    fn error(&self, message: impl Into<String>) -> EbnfError {
        EbnfError {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn scan(&mut self) -> Result<Vec<(Tok, usize, usize)>, EbnfError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(b) if b.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                        while let Some(b) = self.bump() {
                            if b == b'\n' {
                                break;
                            }
                        }
                    }
                    Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                        self.bump();
                        self.bump();
                        loop {
                            match self.bump() {
                                None => return Err(self.error("unterminated block comment")),
                                Some(b'*') if self.peek() == Some(b'/') => {
                                    self.bump();
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else { break };
            let tok = match b {
                b':' => {
                    self.bump();
                    Tok::Colon
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b'|' => {
                    self.bump();
                    Tok::Pipe
                }
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'*' => {
                    self.bump();
                    Tok::Star
                }
                b'+' => {
                    self.bump();
                    Tok::Plus
                }
                b'?' => {
                    self.bump();
                    Tok::Question
                }
                b'\'' => {
                    self.bump();
                    let mut lit = String::new();
                    loop {
                        match self.bump() {
                            None => return Err(self.error("unterminated literal")),
                            Some(b'\'') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'n') => lit.push('\n'),
                                Some(b't') => lit.push('\t'),
                                Some(b'r') => lit.push('\r'),
                                Some(b'\\') => lit.push('\\'),
                                Some(b'\'') => lit.push('\''),
                                _ => return Err(self.error("bad escape in literal")),
                            },
                            Some(c) => lit.push(c as char),
                        }
                    }
                    if lit.is_empty() {
                        return Err(self.error("empty literal"));
                    }
                    Tok::Literal(lit)
                }
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            name.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(name)
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }
}

struct RuleParser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl RuleParser {
    fn error_at(&self, message: impl Into<String>) -> EbnfError {
        let (line, column) = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or((1, 1), |&(_, l, c)| (l, c));
        EbnfError {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), EbnfError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error_at(format!("expected {what}")))
        }
    }

    fn parse_grammar(&mut self) -> Result<EbnfGrammar, EbnfError> {
        let mut rules = Vec::new();
        while self.peek().is_some() {
            rules.push(self.parse_rule()?);
        }
        if rules.is_empty() {
            return Err(self.error_at("grammar has no rules"));
        }
        Ok(EbnfGrammar { rules })
    }

    fn parse_rule(&mut self) -> Result<Rule, EbnfError> {
        let Some(Tok::Ident(name)) = self.bump() else {
            return Err(self.error_at("expected rule name"));
        };
        self.expect(&Tok::Colon, "':'")?;
        let body = self.parse_alt()?;
        self.expect(&Tok::Semi, "';'")?;
        Ok(Rule { name, body })
    }

    fn parse_alt(&mut self) -> Result<Expr, EbnfError> {
        let mut alts = vec![self.parse_seq()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            alts.push(self.parse_seq()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().unwrap_or(Expr::Seq(Vec::new()))
        } else {
            Expr::Alt(alts)
        })
    }

    fn parse_seq(&mut self) -> Result<Expr, EbnfError> {
        let mut parts = Vec::new();
        while let Some(Tok::Ident(_) | Tok::Literal(_) | Tok::LParen) = self.peek() {
            parts.push(self.parse_postfix()?);
        }
        Ok(match parts.len() {
            0 => Expr::Seq(Vec::new()), // ε
            1 => parts.pop().unwrap_or(Expr::Seq(Vec::new())),
            _ => Expr::Seq(parts),
        })
    }

    fn parse_postfix(&mut self) -> Result<Expr, EbnfError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    e = Expr::Star(Box::new(e));
                }
                Some(Tok::Plus) => {
                    self.pos += 1;
                    e = Expr::Plus(Box::new(e));
                }
                Some(Tok::Question) => {
                    self.pos += 1;
                    e = Expr::Opt(Box::new(e));
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, EbnfError> {
        match self.bump() {
            Some(Tok::Ident(name)) => {
                // ANTLR convention: token types are UPPERCASE, rules are
                // lowercase (first character decides).
                if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    Ok(Expr::TokenType(name))
                } else {
                    Ok(Expr::Rule(name))
                }
            }
            Some(Tok::Literal(lit)) => Ok(Expr::Literal(lit)),
            Some(Tok::LParen) => {
                let inner = self.parse_alt()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            _ => Err(self.error_at("expected an element")),
        }
    }
}

/// Parses EBNF grammar text.
///
/// # Errors
///
/// Returns [`EbnfError`] with a source position on malformed input.
///
/// # Examples
///
/// ```
/// use costar_ebnf::parse_ebnf;
/// let g = parse_ebnf("list : NUM (',' NUM)* ;")?;
/// assert_eq!(g.rules.len(), 1);
/// assert_eq!(g.rules[0].name, "list");
/// # Ok::<(), costar_ebnf::EbnfError>(())
/// ```
pub fn parse_ebnf(src: &str) -> Result<EbnfGrammar, EbnfError> {
    let mut scanner = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let toks = scanner.scan()?;
    let mut parser = RuleParser { toks, pos: 0 };
    parser.parse_grammar()
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rule() {
        let g = parse_ebnf("s : A b 'x' ;").unwrap();
        assert_eq!(g.rules.len(), 1);
        let Expr::Seq(parts) = &g.rules[0].body else {
            panic!("expected seq")
        };
        assert_eq!(parts[0], Expr::TokenType("A".into()));
        assert_eq!(parts[1], Expr::Rule("b".into()));
        assert_eq!(parts[2], Expr::Literal("x".into()));
    }

    #[test]
    fn parses_alternatives_and_groups() {
        let g = parse_ebnf("s : a | (b c)+ | ;").unwrap();
        let Expr::Alt(alts) = &g.rules[0].body else {
            panic!("expected alt")
        };
        assert_eq!(alts.len(), 3);
        assert!(matches!(alts[1], Expr::Plus(_)));
        assert_eq!(alts[2], Expr::Seq(vec![])); // explicit ε alternative
    }

    #[test]
    fn parses_postfix_operators() {
        let g = parse_ebnf("s : a* b+ c? ;").unwrap();
        let Expr::Seq(parts) = &g.rules[0].body else {
            panic!()
        };
        assert!(matches!(parts[0], Expr::Star(_)));
        assert!(matches!(parts[1], Expr::Plus(_)));
        assert!(matches!(parts[2], Expr::Opt(_)));
    }

    #[test]
    fn comments_are_skipped() {
        let g = parse_ebnf("// header\n s : a ; /* mid\n comment */ t : b ; // trailing").unwrap();
        assert_eq!(g.rules.len(), 2);
    }

    #[test]
    fn literal_escapes() {
        let g = parse_ebnf(r"s : '\n' '\'' '\\' ;").unwrap();
        let Expr::Seq(parts) = &g.rules[0].body else {
            panic!()
        };
        assert_eq!(parts[0], Expr::Literal("\n".into()));
        assert_eq!(parts[1], Expr::Literal("'".into()));
        assert_eq!(parts[2], Expr::Literal("\\".into()));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_ebnf("s : a").unwrap_err();
        assert!(err.message.contains("';'"));
        let err = parse_ebnf("s a ;").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("':'"));
        let err = parse_ebnf("\n\ns : 'x ;").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn empty_grammar_rejected() {
        assert!(parse_ebnf("  // nothing\n").is_err());
    }

    #[test]
    fn case_decides_symbol_kind() {
        let g = parse_ebnf("s : Upper lower _under ;").unwrap();
        let Expr::Seq(parts) = &g.rules[0].body else {
            panic!()
        };
        assert!(matches!(parts[0], Expr::TokenType(_)));
        assert!(matches!(parts[1], Expr::Rule(_)));
        assert!(matches!(parts[2], Expr::Rule(_))); // '_' is not uppercase
    }

    #[test]
    fn nested_groups() {
        let g = parse_ebnf("s : ((a | b) c)* ;").unwrap();
        let Expr::Star(inner) = &g.rules[0].body else {
            panic!()
        };
        let Expr::Seq(parts) = inner.as_ref() else {
            panic!()
        };
        assert!(matches!(parts[0], Expr::Alt(_)));
    }
}
