//! EBNF-to-BNF desugaring (paper §6.1).
//!
//! "The grammar conversion tool desugars EBNF elements into equivalent BNF
//! structures, generating fresh nonterminals and adding new productions to
//! the grammar as necessary." This module is that tool's back half:
//!
//! * `e*` becomes a fresh `R` with `R → ε | e R` (right recursion, never
//!   left, so the result stays ALL(*)-friendly);
//! * `e+` becomes `e R` where `R` is `e*`'s fresh nonterminal;
//! * `e?` becomes a fresh `R` with `R → ε | e`;
//! * a group with several alternatives becomes a fresh nonterminal with
//!   one production per alternative;
//! * literals become terminals named by their spelling.
//!
//! Like the paper's tool, we *do not prove* that desugaring preserves the
//! language — instead the test suite checks it empirically by comparing
//! words sampled from the desugared grammar against the original EBNF via
//! an interpreter ([`crate::interp`]).

use crate::ast::{EbnfGrammar, Expr};
use costar_grammar::{Grammar, GrammarBuilder, GrammarError, NonTerminal, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Desugaring statistics: how much the grammar grew (reported in the
/// Fig. 8 reproduction, whose `|N|`/`|P|` counts are "taken from the
/// desugared BNF grammars").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesugarStats {
    /// Nonterminals introduced by desugaring.
    pub fresh_nonterminals: usize,
    /// Productions in the resulting BNF grammar.
    pub productions: usize,
}

/// Errors arising during desugaring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesugarError {
    /// A rule reference has no defining rule.
    UndefinedRule(String),
    /// The same rule is defined twice.
    DuplicateRule(String),
    /// The resulting BNF grammar failed validation.
    Grammar(GrammarError),
}

impl fmt::Display for DesugarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesugarError::UndefinedRule(r) => write!(f, "rule {r} is referenced but not defined"),
            DesugarError::DuplicateRule(r) => write!(f, "rule {r} is defined more than once"),
            DesugarError::Grammar(e) => write!(f, "invalid desugared grammar: {e}"),
        }
    }
}

impl std::error::Error for DesugarError {}

impl From<GrammarError> for DesugarError {
    fn from(e: GrammarError) -> Self {
        DesugarError::Grammar(e)
    }
}

struct Desugarer {
    gb: GrammarBuilder,
    rule_nts: HashMap<String, NonTerminal>,
    fresh_count: usize,
}

impl Desugarer {
    /// Lowers `expr` to a single grammar symbol, appending helper
    /// productions as needed. `hint` seeds fresh nonterminal names.
    fn lower_to_symbol(&mut self, expr: &Expr, hint: &str) -> Result<Symbol, DesugarError> {
        match expr {
            Expr::Rule(name) => self
                .rule_nts
                .get(name)
                .map(|&x| Symbol::Nt(x))
                .ok_or_else(|| DesugarError::UndefinedRule(name.clone())),
            Expr::TokenType(name) => Ok(Symbol::T(self.gb.terminal(name))),
            Expr::Literal(lit) => Ok(Symbol::T(self.gb.terminal(lit))),
            Expr::Star(inner) => {
                let item = self.lower_to_symbol(inner, hint)?;
                let r = self.fresh(hint, "star");
                self.gb.rule_syms(r, vec![]);
                self.gb.rule_syms(r, vec![item, Symbol::Nt(r)]);
                Ok(Symbol::Nt(r))
            }
            Expr::Plus(inner) => {
                // e+ = e e* ; wrap in a fresh symbol so e+ is one symbol.
                let item = self.lower_to_symbol(inner, hint)?;
                let star = self.fresh(hint, "star");
                self.gb.rule_syms(star, vec![]);
                self.gb.rule_syms(star, vec![item, Symbol::Nt(star)]);
                let plus = self.fresh(hint, "plus");
                self.gb.rule_syms(plus, vec![item, Symbol::Nt(star)]);
                Ok(Symbol::Nt(plus))
            }
            Expr::Opt(inner) => {
                let r = self.fresh(hint, "opt");
                self.gb.rule_syms(r, vec![]);
                let seq = self.lower_to_form(inner, hint)?;
                // Avoid a duplicate ε production when the body is itself ε.
                if !seq.is_empty() {
                    self.gb.rule_syms(r, seq);
                }
                Ok(Symbol::Nt(r))
            }
            Expr::Alt(_) => {
                let r = self.fresh(hint, "group");
                self.lower_alternatives(expr, r, hint)?;
                Ok(Symbol::Nt(r))
            }
            Expr::Seq(parts) => match parts.len() {
                1 => self.lower_to_symbol(&parts[0], hint),
                _ => {
                    let r = self.fresh(hint, "group");
                    let form = self.lower_to_form(expr, hint)?;
                    self.gb.rule_syms(r, form);
                    Ok(Symbol::Nt(r))
                }
            },
        }
    }

    /// Lowers `expr` to a sentential form (splicing sequences instead of
    /// wrapping them).
    fn lower_to_form(&mut self, expr: &Expr, hint: &str) -> Result<Vec<Symbol>, DesugarError> {
        match expr {
            Expr::Seq(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    out.extend(self.lower_to_form(p, hint)?);
                }
                Ok(out)
            }
            other => Ok(vec![self.lower_to_symbol(other, hint)?]),
        }
    }

    /// Adds one production per alternative of `expr` to nonterminal `lhs`.
    fn lower_alternatives(
        &mut self,
        expr: &Expr,
        lhs: NonTerminal,
        hint: &str,
    ) -> Result<(), DesugarError> {
        match expr {
            Expr::Alt(alts) => {
                for a in alts {
                    let form = self.lower_to_form(a, hint)?;
                    self.gb.rule_syms(lhs, form);
                }
            }
            other => {
                let form = self.lower_to_form(other, hint)?;
                self.gb.rule_syms(lhs, form);
            }
        }
        Ok(())
    }

    fn fresh(&mut self, hint: &str, op: &str) -> NonTerminal {
        self.fresh_count += 1;
        self.gb
            .symbols_mut()
            .fresh_nonterminal(&format!("{hint}__{op}"))
    }
}

/// Desugars a parsed EBNF grammar into a BNF [`Grammar`], with the first
/// rule's left-hand side as the start symbol.
///
/// # Errors
///
/// Returns [`DesugarError`] for undefined or duplicate rules, or if the
/// produced grammar fails validation.
///
/// # Examples
///
/// ```
/// use costar_ebnf::{parse_ebnf, to_bnf};
/// let ebnf = parse_ebnf("list : NUM (',' NUM)* ;")?;
/// let (grammar, stats) = to_bnf(&ebnf)?;
/// // One fresh nonterminal for the (',' NUM)* loop, plus the group.
/// assert!(stats.fresh_nonterminals >= 1);
/// assert!(grammar.num_productions() >= 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_bnf(ebnf: &EbnfGrammar) -> Result<(Grammar, DesugarStats), DesugarError> {
    let mut d = Desugarer {
        gb: GrammarBuilder::new(),
        rule_nts: HashMap::new(),
        fresh_count: 0,
    };
    // Pass 1: declare all rule nonterminals (so references resolve).
    for rule in &ebnf.rules {
        let x = d.gb.nonterminal(&rule.name);
        if d.rule_nts.insert(rule.name.clone(), x).is_some() {
            return Err(DesugarError::DuplicateRule(rule.name.clone()));
        }
    }
    // Pass 2: lower bodies.
    for rule in &ebnf.rules {
        let lhs = d.rule_nts[&rule.name];
        let body = rule.body.clone();
        d.lower_alternatives(&body, lhs, &rule.name)?;
    }
    let start = d.rule_nts[&ebnf.rules[0].name];
    d.gb.start_sym(start);
    let fresh = d.fresh_count;
    let g = d.gb.build()?;
    let stats = DesugarStats {
        fresh_nonterminals: fresh,
        productions: g.num_productions(),
    };
    Ok((g, stats))
}

/// Parses and desugars in one step.
///
/// # Errors
///
/// Propagates syntax errors as `Err(String)` renderings of
/// [`crate::EbnfError`] / [`DesugarError`] for convenience at call sites
/// that just need a grammar or a message.
pub fn compile(src: &str) -> Result<(Grammar, DesugarStats), String> {
    let ebnf = crate::parse_ebnf(src).map_err(|e| e.to_string())?;
    to_bnf(&ebnf).map_err(|e| e.to_string())
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::parse_ebnf;
    use costar_grammar::analysis::GrammarAnalysis;

    fn bnf(src: &str) -> (Grammar, DesugarStats) {
        to_bnf(&parse_ebnf(src).unwrap()).unwrap()
    }

    #[test]
    fn plain_bnf_passes_through() {
        let (g, stats) = bnf("s : A b | ; b : B ;");
        assert_eq!(stats.fresh_nonterminals, 0);
        assert_eq!(g.num_productions(), 3);
        assert_eq!(g.num_nonterminals(), 2);
        assert_eq!(g.num_terminals(), 2);
    }

    #[test]
    fn star_desugars_to_right_recursion() {
        let (g, stats) = bnf("s : A* ;");
        assert_eq!(stats.fresh_nonterminals, 1);
        // s -> R ; R -> ε ; R -> A R.
        assert_eq!(g.num_productions(), 3);
        let an = GrammarAnalysis::compute(&g);
        assert!(
            an.left_recursion.is_grammar_safe(),
            "no left recursion introduced"
        );
    }

    #[test]
    fn plus_and_opt_desugar() {
        let (g, _) = bnf("s : A+ B? ;");
        let an = GrammarAnalysis::compute(&g);
        assert!(an.left_recursion.is_grammar_safe());
        // A+ : star(2) + plus(1); B? : opt(2); s itself: 1 → 6 productions.
        assert_eq!(g.num_productions(), 6);
    }

    #[test]
    fn groups_with_alternatives_get_fresh_nonterminals() {
        let (g, stats) = bnf("s : (A | B C)+ ;");
        assert!(stats.fresh_nonterminals >= 2);
        let an = GrammarAnalysis::compute(&g);
        assert!(an.left_recursion.is_grammar_safe());
        let _ = g;
    }

    #[test]
    fn literals_become_named_terminals() {
        let (g, _) = bnf("s : '{' A '}' ;");
        assert!(g.symbols().lookup_terminal("{").is_some());
        assert!(g.symbols().lookup_terminal("}").is_some());
    }

    #[test]
    fn undefined_rule_reported() {
        let err = to_bnf(&parse_ebnf("s : t ;").unwrap()).unwrap_err();
        assert_eq!(err, DesugarError::UndefinedRule("t".into()));
    }

    #[test]
    fn duplicate_rule_reported() {
        let err = to_bnf(&parse_ebnf("s : A ; s : B ;").unwrap()).unwrap_err();
        assert_eq!(err, DesugarError::DuplicateRule("s".into()));
    }

    #[test]
    fn first_rule_is_start() {
        let (g, _) = bnf("top : sub ; sub : A ;");
        assert_eq!(g.start(), g.symbols().lookup_nonterminal("top").unwrap());
    }

    #[test]
    fn fresh_names_do_not_collide_with_user_rules() {
        // A user rule that looks like a generated name must not clash.
        let (g, _) = bnf("s : A* ; s__star : B ;");
        assert!(g.symbols().lookup_nonterminal("s__star").is_some());
        assert!(g.symbols().lookup_nonterminal("s__star_1").is_some());
    }

    #[test]
    fn compile_wrapper_reports_errors() {
        assert!(compile("s : A ;").is_ok());
        assert!(compile("s : ").unwrap_err().contains("expected"));
        assert!(compile("s : t ;").unwrap_err().contains("not defined"));
    }
}
