//! # costar-ebnf — EBNF front-end and EBNF→BNF desugaring
//!
//! CoStar is parameterized by a plain BNF grammar, but real grammars are
//! written in EBNF. The paper's evaluation (§6.1) used a conversion tool
//! that "desugars EBNF elements into equivalent BNF structures, generating
//! fresh nonterminals and adding new productions as necessary"; this crate
//! is that tool:
//!
//! * [`parse_ebnf`] — parses an ANTLR-flavored grammar notation
//!   (rules, `|`, groups, `*` `+` `?`, token types, quoted literals);
//! * [`to_bnf`] — desugars to a [`costar_grammar::Grammar`], reporting
//!   how many fresh nonterminals were introduced;
//! * [`interp_recognize`] — a direct EBNF interpreter used as a test
//!   oracle for the (unproven, but tested) claim that desugaring
//!   preserves the language.
//!
//! # Example
//!
//! ```
//! use costar_ebnf::compile;
//! let (grammar, stats) = compile("list : NUM (',' NUM)* ;")?;
//! assert!(grammar.num_productions() >= 3);
//! assert!(stats.fresh_nonterminals >= 1);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
// Panic-freedom discipline (clippy.toml `disallowed_*` config): the
// whole crate is production tooling fed arbitrary user input, so every
// module opts in; test modules carry a targeted `#[allow]`.
#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]

mod ast;
mod desugar;
mod interp;

pub use ast::{parse_ebnf, EbnfError, EbnfGrammar, Expr, Rule};
pub use desugar::{compile, to_bnf, DesugarError, DesugarStats};
pub use interp::{interp_recognize, InterpResult};
