//! Property-based tests of the paper's theorems (§4, §5) over random
//! grammars and inputs.
//!
//! Each property is the executable counterpart of a Coq theorem:
//!
//! * Lemma 4.2 / Theorem "multistep terminates": every machine step
//!   strictly decreases the lexicographic measure — checked by
//!   `run_instrumented`, which also re-checks the `StacksWf_I` and
//!   visited-set invariants after every step (Lemmas 5.2, 5.10).
//! * Theorem 5.8 (error-free termination): on a *non-left-recursive*
//!   grammar the parser never returns `Error`, valid input or not.
//! * Theorems 5.1/5.6 (soundness): accepted trees satisfy the derivation
//!   relation.
//! * Theorems 5.11/5.12 (completeness): words sampled *from* the grammar
//!   are accepted.
//! * Lemma 5.10 (left-recursion diagnosis soundness): a
//!   `LeftRecursive(X)` error implies the static analysis agrees that `X`
//!   is left-recursive.

// Tests are exempt from the core's panic-freedom lints (clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use costar::{instrument::run_instrumented, ParseError, ParseOutcome, Parser};
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::sampler::{DerivationSampler, SplitMix64};
use costar_grammar::{check_tree, Grammar, GrammarBuilder, Symbol, Token};
use proptest::prelude::*;

/// A symbol in a generated right-hand side: terminal index or nonterminal
/// index (later taken modulo the respective universe size).
#[derive(Debug, Clone)]
enum SymSpec {
    T(usize),
    Nt(usize),
}

/// A random grammar description: every nonterminal `0..rules.len()` gets
/// at least one production, so the built grammar is always well-formed.
#[derive(Debug, Clone)]
struct GrammarSpec {
    num_terminals: usize,
    rules: Vec<Vec<Vec<SymSpec>>>,
}

impl GrammarSpec {
    fn build(&self) -> Grammar {
        let mut gb = GrammarBuilder::new();
        let nts: Vec<_> = (0..self.rules.len())
            .map(|i| gb.nonterminal(&format!("N{i}")))
            .collect();
        let ts: Vec<_> = (0..self.num_terminals)
            .map(|i| gb.terminal(&format!("t{i}")))
            .collect();
        for (i, alts) in self.rules.iter().enumerate() {
            for alt in alts {
                let rhs: Vec<Symbol> = alt
                    .iter()
                    .map(|s| match s {
                        SymSpec::T(k) => Symbol::T(ts[k % ts.len()]),
                        SymSpec::Nt(k) => Symbol::Nt(nts[k % nts.len()]),
                    })
                    .collect();
                gb.rule_syms(nts[i], rhs);
            }
        }
        gb.start_sym(nts[0]);
        gb.build().expect("spec grammars are well-formed")
    }
}

fn sym_spec() -> impl Strategy<Value = SymSpec> {
    prop_oneof![
        3 => (0usize..8).prop_map(SymSpec::T),
        2 => (0usize..8).prop_map(SymSpec::Nt),
    ]
}

fn grammar_spec() -> impl Strategy<Value = GrammarSpec> {
    (
        1usize..5,
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(sym_spec(), 0..3), 1..4),
            1..5,
        ),
    )
        .prop_map(|(num_terminals, rules)| GrammarSpec {
            num_terminals,
            rules,
        })
}

/// A random word over the grammar's terminal alphabet (mostly invalid —
/// exercising rejection paths).
fn random_word(g: &Grammar, picks: &[usize]) -> Vec<Token> {
    let terms: Vec<_> = g.symbols().terminals().collect();
    picks
        .iter()
        .map(|&k| {
            let t = terms[k % terms.len()];
            Token::new(t, g.symbols().terminal_name(t))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 4.2 + Lemma 5.2: instrumented runs never observe a
    /// non-decreasing measure or an invariant violation, on any grammar
    /// (left-recursive or not) and any input.
    #[test]
    fn measure_and_invariants_hold_on_arbitrary_input(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..8, 0..12),
    ) {
        let g = spec.build();
        let an = GrammarAnalysis::compute(&g);
        let word = random_word(&g, &picks);
        prop_assert!(run_instrumented(&g, &an, &word).is_ok());
    }

    /// Theorem 5.8: a non-left-recursive grammar never produces an Error
    /// outcome. Lemma 5.10 (contrapositive direction): when the dynamic
    /// check *does* fire, the static analysis confirms the nonterminal is
    /// left-recursive.
    #[test]
    fn error_free_termination_and_sound_lr_diagnosis(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..8, 0..12),
    ) {
        let g = spec.build();
        let an = GrammarAnalysis::compute(&g);
        let word = random_word(&g, &picks);
        let (outcome, _) = run_instrumented(&g, &an, &word).unwrap();
        match outcome {
            ParseOutcome::Error(ParseError::LeftRecursive(x)) => {
                prop_assert!(
                    an.left_recursion.is_left_recursive(x),
                    "dynamic LR diagnosis must be confirmed statically"
                );
            }
            ParseOutcome::Error(e) => {
                return Err(TestCaseError::fail(format!(
                    "InvalidState on a well-formed grammar: {e}"
                )));
            }
            _ => {
                if an.left_recursion.is_grammar_safe() {
                    // Fine: accept or reject, both allowed.
                }
            }
        }
    }

    /// Theorems 5.1/5.6 (soundness): every accepted tree satisfies the
    /// derivation relation for the input word.
    #[test]
    fn accepted_trees_are_correct_derivations(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..8, 0..12),
    ) {
        let g = spec.build();
        let mut parser = Parser::new(g);
        let word = random_word(parser.grammar(), &picks);
        if let Some(tree) = parser.parse(&word).tree() {
            prop_assert!(check_tree(parser.grammar(), parser.grammar().start(), &word, tree).is_ok());
        }
    }

    /// Theorems 5.11/5.12 (completeness): a word sampled from the grammar
    /// (i.e. one with a known parse tree) is always accepted — unless the
    /// grammar is left-recursive, in which case the theorems don't apply.
    #[test]
    fn derivable_words_are_accepted(
        spec in grammar_spec(),
        seed in any::<u64>(),
        budget in 2usize..9,
    ) {
        let g = spec.build();
        let an = GrammarAnalysis::compute(&g);
        if !an.left_recursion.is_grammar_safe() {
            return Ok(()); // theorem precondition not met
        }
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(seed);
        let Some((word, witness)) = sampler.sample_word(&mut rng, budget) else {
            return Ok(()); // start symbol unproductive: no derivable words
        };
        prop_assert!(check_tree(&g, g.start(), &word, &witness).is_ok());
        let mut parser = Parser::new(g);
        let outcome = parser.parse(&word);
        prop_assert!(
            outcome.is_accept(),
            "derivable word rejected: {outcome:?} (word length {})",
            word.len()
        );
    }

    /// Parsing is deterministic, and the cross-input cache-reuse extension
    /// does not change outcomes.
    #[test]
    fn cache_reuse_preserves_outcomes(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..8, 0..16),
        seed in any::<u64>(),
    ) {
        let g = spec.build();
        let mut fresh = Parser::new(g.clone());
        let mut warm = Parser::with_cache_reuse(g.clone());
        let sampler = DerivationSampler::new(&g);
        let mut rng = SplitMix64::new(seed);
        let mut words = vec![random_word(&g, &picks)];
        if let Some((w, _)) = sampler.sample_word(&mut rng, 8) {
            words.push(w);
        }
        // Interleave valid and invalid words so the warm cache carries
        // state across heterogeneous inputs.
        for _ in 0..2 {
            for w in &words {
                prop_assert_eq!(fresh.parse(w), warm.parse(w));
            }
        }
    }
}
