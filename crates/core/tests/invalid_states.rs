//! Exercising the machine's `InvalidState` arms.
//!
//! Theorem 5.8 guarantees these errors never occur for well-formed,
//! non-left-recursive grammars — which means ordinary parsing can never
//! reach them. To test the arms at all we do what the paper's proofs do
//! in reverse: start from states that *violate* the `StacksWf_I`
//! invariant (built by hand, since no machine run produces them) and
//! confirm the machine detects the corruption instead of misbehaving.

// Tests are exempt from the core's panic-freedom lints (clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use costar::state::{MachineState, PrefixFrame, SuffixFrame};
use costar::{Machine, ParseError, SllCache, StepResult};
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{Grammar, GrammarBuilder, Symbol, Token};
use std::sync::Arc;

fn fig2() -> (Grammar, GrammarAnalysis) {
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["A", "c"]);
    gb.rule("S", &["A", "d"]);
    gb.rule("A", &["a", "A"]);
    gb.rule("A", &["b"]);
    let g = gb.start("S").build().unwrap();
    let an = GrammarAnalysis::compute(&g);
    (g, an)
}

/// Steps a machine whose state has been corrupted by `corrupt`.
fn step_corrupted(
    g: &Grammar,
    an: &GrammarAnalysis,
    word: &[Token],
    corrupt: impl FnOnce(&mut MachineState),
) -> StepResult {
    let mut machine = Machine::new(g, an, word);
    // SAFETY of the experiment: state fields are public precisely so
    // instrumentation and tests can inspect/perturb them.
    corrupt(machine.state_mut());
    let mut cache = SllCache::new();
    machine.step(&mut cache)
}

#[test]
fn mismatched_stack_heights_detected() {
    let (g, an) = fig2();
    let result = step_corrupted(&g, &an, &[], |st| {
        st.prefix.push(PrefixFrame::default());
    });
    let StepResult::Error(ParseError::InvalidState { reason }) = result else {
        panic!("expected InvalidState, got {result:?}")
    };
    assert!(reason.contains("heights"));
}

#[test]
fn return_without_caller_detected() {
    let (g, an) = fig2();
    let result = step_corrupted(&g, &an, &[], |st| {
        // An exhausted upper frame with no caller label.
        st.suffix[0].dot = 1;
        st.suffix.push(SuffixFrame {
            caller: None,
            rhs: Arc::from([] as [Symbol; 0]),
            dot: 0,
        });
        st.prefix.push(PrefixFrame::default());
    });
    let StepResult::Error(ParseError::InvalidState { reason }) = result else {
        panic!("expected InvalidState, got {result:?}")
    };
    assert!(reason.contains("open nonterminal"));
}

#[test]
fn final_frame_with_wrong_tree_count_detected() {
    let (g, an) = fig2();
    // Bottom frame exhausted with zero trees: final-configuration check
    // must flag the inconsistency rather than accept.
    let result = step_corrupted(&g, &an, &[], |st| {
        st.suffix[0].dot = 1;
        st.prefix[0].trees.clear();
    });
    let StepResult::Error(ParseError::InvalidState { reason }) = result else {
        panic!("expected InvalidState, got {result:?}")
    };
    assert!(reason.contains("exactly one tree"));
}

#[test]
fn visited_nonterminal_triggers_left_recursion_error() {
    let (g, an) = fig2();
    let s = g.start();
    let result = step_corrupted(&g, &an, &[], |st| {
        st.visited.insert(s);
    });
    assert_eq!(result, StepResult::Error(ParseError::LeftRecursive(s)));
}

#[test]
fn corrupted_states_fail_invariant_checkers_too() {
    // The invariant checkers and the machine agree on what corruption is.
    let (g, an) = fig2();
    let mut machine = Machine::new(&g, &an, &[]);
    machine.state_mut().prefix.push(PrefixFrame::default());
    assert!(costar::invariants::check_stacks_wf(&g, machine.state()).is_err());
}
