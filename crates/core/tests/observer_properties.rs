//! Property tests for the observability layer: over random grammars,
//! random words, and randomly tight budgets, the metrics an observer
//! collects must reconcile *exactly* with the budget meter and the
//! prediction cache's own counters.
//!
//! These are the cross-layer accounting invariants the `--stats=json`
//! surface relies on:
//!
//! * `machine_steps + prediction_steps == Meter::steps_taken()` — every
//!   fuel unit the meter admitted is attributed to exactly one observer
//!   hook, and nothing is double-counted (this is what the
//!   `Meter::charge` ordering fix pins down on the abort paths);
//! * `cache_hits + cache_misses == cache_lookups`, and both mirror the
//!   [`SllCache`]'s own counters;
//! * the decision counters (`decisions`, `single_alternative`,
//!   `sll_resolved`, `failovers`) mirror [`PredictionStats`].

// Tests are exempt from the core's panic-freedom lints (clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use costar::{Budget, MetricsObserver, ParseOutcome, Parser};
use costar_grammar::{Grammar, GrammarBuilder, Symbol, Token};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum SymSpec {
    T(usize),
    Nt(usize),
}

#[derive(Debug, Clone)]
struct GrammarSpec {
    num_terminals: usize,
    rules: Vec<Vec<Vec<SymSpec>>>,
}

impl GrammarSpec {
    fn build(&self) -> Grammar {
        let mut gb = GrammarBuilder::new();
        let nts: Vec<_> = (0..self.rules.len())
            .map(|i| gb.nonterminal(&format!("N{i}")))
            .collect();
        let ts: Vec<_> = (0..self.num_terminals)
            .map(|i| gb.terminal(&format!("t{i}")))
            .collect();
        for (i, alts) in self.rules.iter().enumerate() {
            for alt in alts {
                let rhs: Vec<Symbol> = alt
                    .iter()
                    .map(|s| match s {
                        SymSpec::T(k) => Symbol::T(ts[k % ts.len()]),
                        SymSpec::Nt(k) => Symbol::Nt(nts[k % nts.len()]),
                    })
                    .collect();
                gb.rule_syms(nts[i], rhs);
            }
        }
        gb.start_sym(nts[0]);
        gb.build().expect("spec grammars are well-formed")
    }
}

fn sym_spec() -> impl Strategy<Value = SymSpec> {
    prop_oneof![
        3 => (0usize..8).prop_map(SymSpec::T),
        2 => (0usize..8).prop_map(SymSpec::Nt),
    ]
}

fn grammar_spec() -> impl Strategy<Value = GrammarSpec> {
    (
        1usize..5,
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(sym_spec(), 0..3), 1..4),
            1..5,
        ),
    )
        .prop_map(|(num_terminals, rules)| GrammarSpec {
            num_terminals,
            rules,
        })
}

fn random_word(g: &Grammar, picks: &[usize]) -> Vec<Token> {
    let terms: Vec<_> = g.symbols().terminals().collect();
    picks
        .iter()
        .map(|&k| {
            let t = terms[k % terms.len()];
            Token::new(t, g.symbols().terminal_name(t))
        })
        .collect()
}

/// One measured parse, with the invariants asserted.
fn check_reconciliation(parser: &mut Parser, word: &[Token]) -> Result<(), TestCaseError> {
    let (outcome, m) = parser.parse_with_metrics(word);
    // Panics are converted to Error by the panic-safe boundary and would
    // leave the metrics torn; they also indicate a real bug, so fail loud.
    if let ParseOutcome::Error(e) = &outcome {
        prop_assert!(
            !e.to_string().contains("panic during parse"),
            "parser panicked: {e}"
        );
    }
    prop_assert!(
        m.reconciles(),
        "metrics must reconcile with the meter: {m:?} (outcome {outcome:?})"
    );
    let cs = parser.cache_stats();
    prop_assert_eq!(m.cache_hits, cs.hits, "cache hits diverge");
    prop_assert_eq!(m.cache_misses, cs.misses, "cache misses diverge");
    prop_assert_eq!(m.cache_evictions, cs.evictions, "evictions diverge");
    let ps = parser.prediction_stats();
    prop_assert_eq!(m.decisions, ps.predictions, "decision counts diverge");
    prop_assert_eq!(m.single_alternative, ps.single_alternative);
    prop_assert_eq!(m.sll_resolved, ps.sll_resolved);
    prop_assert_eq!(m.failovers, ps.failovers);
    // An abort is recorded iff the outcome is Aborted, with the same reason.
    match &outcome {
        ParseOutcome::Aborted(r) => prop_assert_eq!(m.abort, Some(*r)),
        _ => prop_assert_eq!(m.abort, None),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unlimited budget: metrics reconcile on accept, reject, and error
    /// outcomes alike.
    #[test]
    fn metrics_reconcile_on_arbitrary_input(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..8, 0..12),
    ) {
        let g = spec.build();
        let word = random_word(&g, &picks);
        let mut parser = Parser::new(g);
        check_reconciliation(&mut parser, &word)?;
    }

    /// Tight step budgets: the abort paths (machine charge, prediction
    /// charge, depth check) must not lose or double-count a step. This is
    /// the property the `Meter::charge` reordering fix protects.
    #[test]
    fn metrics_reconcile_under_tight_budgets(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..8, 0..12),
        fuel in 0u64..24,
    ) {
        let g = spec.build();
        let word = random_word(&g, &picks);
        let mut parser = Parser::with_budget(g, Budget::unlimited().with_max_steps(fuel));
        check_reconciliation(&mut parser, &word)?;
        // The meter never over-spends its fuel.
        let (_, m) = parser.parse_with_metrics(&word);
        prop_assert!(m.meter_steps <= fuel, "meter overspent: {} > {fuel}", m.meter_steps);
    }

    /// Cache caps (including the cap-0 "cache off" mode) change
    /// performance, never accounting consistency.
    #[test]
    fn metrics_reconcile_under_cache_pressure(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..8, 0..12),
        cap in 0usize..4,
    ) {
        let g = spec.build();
        let word = random_word(&g, &picks);
        let mut parser =
            Parser::with_budget(g, Budget::unlimited().with_max_cache_entries(cap));
        check_reconciliation(&mut parser, &word)?;
        if cap == 0 {
            let (_, m) = parser.parse_with_metrics(&word);
            prop_assert_eq!(m.cache_hits, 0, "a disabled cache can never hit");
            prop_assert_eq!(m.cache_evictions, 0, "cache-off must not evict");
        }
    }

    /// The observed parse is the same parse: running with a
    /// [`MetricsObserver`] yields the identical outcome to the unobserved
    /// run (observers have no semantic effect).
    #[test]
    fn observation_does_not_change_outcomes(
        spec in grammar_spec(),
        picks in proptest::collection::vec(0usize..8, 0..12),
    ) {
        let g = spec.build();
        let word = random_word(&g, &picks);
        let mut plain = Parser::new(g.clone());
        let mut observed = Parser::new(g);
        let baseline = plain.parse(&word);
        let mut obs = MetricsObserver::new();
        let outcome = observed.parse_observed(&word, &mut obs);
        prop_assert_eq!(baseline, outcome);
    }
}
