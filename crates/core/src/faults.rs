//! Deterministic fault injection (feature `faults`; test-only).
//!
//! The robustness claims of this crate — bounded-cache eviction never
//! changes outcomes, poisoned cache entries are dropped rather than
//! served, budget exhaustion aborts cleanly, and no panic escapes
//! [`crate::Parser::parse`] — are only credible if something actively
//! tries to break them. A [`FaultPlan`] is that something: installed on
//! an [`SllCache`](crate::SllCache) (or via
//! `Parser::install_fault_plan`), it deterministically injects faults at
//! chosen points, with no randomness, so every failure replays exactly.
//!
//! Compiled only with `--features faults`; release builds carry none of
//! these hooks.

/// A deterministic schedule of injected faults. All counters are
/// 1-based: `evict_every = Some(1)` evicts on every intern (an eviction
/// storm), `poison_every = Some(3)` poisons every third interned state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Every `n`th interned DFA state triggers a forced eviction of the
    /// least-recently-used unprotected cache entry — an eviction storm
    /// when set to 1. Exercises the invariant that eviction only ever
    /// costs re-prediction, never correctness.
    pub evict_every: Option<u64>,
    /// Every `n`th interned DFA state is marked poisoned. A poisoned
    /// entry is detected at its next cache lookup, dropped (counted in
    /// [`CacheStats::poison_drops`](crate::CacheStats::poison_drops)),
    /// and treated as a miss — corrupted cache state must never be
    /// served.
    pub poison_every: Option<u64>,
    /// Panic when the machine reaches this (0-based) fuel index or the
    /// first machine step after it (fuel is shared with prediction
    /// lookahead, so the exact index may fall between steps) — exercises
    /// the `catch_unwind` boundary in [`crate::Parser::parse`], which
    /// must map the panic to a typed
    /// [`ParseError::InvalidState`](crate::ParseError::InvalidState).
    pub panic_at_step: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Forces an eviction on every `n`th intern.
    pub fn evict_every(mut self, n: u64) -> Self {
        self.evict_every = Some(n);
        self
    }

    /// Poisons every `n`th interned state.
    pub fn poison_every(mut self, n: u64) -> Self {
        self.poison_every = Some(n);
        self
    }

    /// Panics at the given machine step.
    pub fn panic_at_step(mut self, step: u64) -> Self {
        self.panic_at_step = Some(step);
        self
    }
}
