//! # costar — a purely functional ALL(*) parser
//!
//! A Rust reproduction of **CoStar** (Lasser, Casinghino, Fisher, Roux:
//! *CoStar: A Verified ALL(\*) Parser*, PLDI 2021): an interpreter-style
//! parser, parametric over an arbitrary non-left-recursive BNF grammar,
//! based on the ALL(*) algorithm at the core of ANTLR 4.
//!
//! The paper's headline guarantees, and how this crate reproduces each:
//!
//! | Paper (proved in Coq) | Here (executable) |
//! |---|---|
//! | Soundness: accepted trees are correct derivations | [`costar_grammar::check_tree`] validates every accepted tree in the test suites |
//! | Completeness: every derivable word is accepted | property tests generate words *from* grammars and cross-check an Earley oracle |
//! | Error-free termination | [`instrument::run_instrumented`] asserts the §4 measure strictly decreases at every step |
//! | Correct ambiguity labels | `Unique`/`Ambig` labels checked against oracle derivation counts |
//!
//! ## Quick start
//!
//! ```
//! use costar::{ParseOutcome, Parser};
//! use costar_grammar::{GrammarBuilder, Token};
//!
//! // The grammar of Fig. 2 in the paper.
//! let mut gb = GrammarBuilder::new();
//! gb.rule("S", &["A", "c"]);
//! gb.rule("S", &["A", "d"]);
//! gb.rule("A", &["a", "A"]);
//! gb.rule("A", &["b"]);
//! let grammar = gb.start("S").build()?;
//!
//! let mut parser = Parser::new(grammar);
//! let tok = |n: &str| Token::new(parser.grammar().symbols().lookup_terminal(n).unwrap(), n);
//! match parser.parse(&[tok("a"), tok("b"), tok("d")]) {
//!     ParseOutcome::Unique(tree) => assert_eq!(tree.leaf_count(), 3),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Architecture (paper §3)
//!
//! * [`machine`] — the stack machine: machine states, `step`, `multistep`.
//! * `prediction` (private) — `adaptivePredict`: SLL simulation with the
//!   DFA cache ([`SllCache`]), LL failover, ambiguity detection.
//! * [`measure`] — the `(tokens, stackScore, height)` termination measure
//!   of §4, over arbitrary-precision naturals ([`bignat`]).
//! * [`invariants`] — executable forms of the machine-state invariants
//!   used by the paper's proofs (e.g. `StacksWf_I`, Fig. 4).
//! * [`instrument`] — a step-by-step runner that checks the measure and
//!   the invariants after every machine operation.
//! * [`semantics`] — semantic actions over parse trees (the paper's §8
//!   future work).
//! * [`budget`] — resource governance (not in the paper): step fuel
//!   derived from the §4 termination measure, wall-clock deadlines, stack
//!   depth and cache capacity limits, surfacing as
//!   [`ParseOutcome::Aborted`] instead of unbounded work.
//! * [`observe`] — zero-cost-when-disabled observability: the
//!   [`ParseObserver`] hook trait, [`MetricsObserver`]/[`ParseMetrics`]
//!   for counters and latency histograms, and [`TraceObserver`] for
//!   bounded post-mortem event traces.
//! * [`batch`] — parallel batch parsing: [`BatchParser`] shares one
//!   immutable grammar + analysis across a worker pool (per-worker
//!   prediction caches, per-input budgets) with results deterministic in
//!   input order regardless of worker count.
//! * `session` (private module, types re-exported) — incremental editing:
//!   [`ParseSession`] keeps source, token vector, and cached outcome
//!   alive across [`Parser::reparse_after_edit`] calls, re-lexing only
//!   the edited region and skipping the parse entirely when the spliced
//!   token vector is byte-identical to the previous one.

#![warn(missing_docs)]
// The panic-freedom discipline (clippy.toml `disallowed_*` config) is
// opted into per module: hot-path modules re-enable these lints with a
// module-level `#![warn(..)]`; everything else (support modules, tests)
// is exempt by this crate-level allow.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

pub mod batch;
pub mod bignat;
pub mod budget;
mod error;
#[cfg(feature = "faults")]
pub mod faults;
pub mod instrument;
pub mod invariants;
pub mod machine;
pub mod measure;
pub mod observe;
mod parser;
mod prediction;
pub mod recover;
pub mod semantics;
mod session;
pub mod state;
#[cfg(kani)]
pub mod verify_hooks;

pub use batch::{BatchItem, BatchItemResult, BatchParser, BatchResult};
pub use budget::{AbortReason, Budget};
pub use error::{ParseError, RejectReason};
#[cfg(feature = "faults")]
pub use faults::FaultPlan;
pub use machine::{Machine, ParseOutcome, PredictionMode, StepResult};
pub use observe::{
    MetricsObserver, NullObserver, ParseMetrics, ParseObserver, TraceEvent, TraceObserver,
};
pub use parser::{parse, Parser};
pub use prediction::cache::{CacheStats, PredictionStats, SllCache};
pub use recover::{Diagnostic, RecoveredParse};
pub use session::{ParseSession, SessionReparse};
// The lexer-side session vocabulary, re-exported so edit-session callers
// (the CLI, the verify harnesses) need only this crate.
pub use costar_lexer::{Edit, EditError, EditSession, SpliceReport};
