//! The top-level parsing API (paper §3.1).
//!
//! The entry point mirrors the paper's `parse` function: it takes a
//! grammar, a start symbol (carried by the [`Grammar`] itself), and an
//! input word, and returns a [`ParseOutcome`] — a tree labeled `Unique` or
//! `Ambig`, a `Reject`, or an `Error` (the latter provably unreachable for
//! well-formed, non-left-recursive grammars).
//!
//! [`Parser`] is the reusable form: it computes the grammar analyses once
//! and owns the SLL prediction cache. The published CoStar rebuilds its
//! cache for every input (paper §6.2); `Parser` reproduces that policy by
//! default and additionally offers cross-input cache persistence — the
//! optimization ANTLR uses and the paper measures in Fig. 11 — via
//! [`Parser::with_cache_reuse`].
//!
//! [`Parser::parse`] is additionally a *panic-safe* boundary: any panic
//! raised below it (a bug in the parser, not in the caller's input) is
//! caught, the prediction cache is discarded, and the panic surfaces as a
//! typed [`ParseOutcome::Error`] with
//! [`ParseError::InvalidState`](crate::ParseError::InvalidState).

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
use crate::budget::Budget;
use crate::error::ParseError;
use crate::machine::{Machine, ParseOutcome, PredictionMode};
use crate::observe::{MetricsObserver, NullObserver, ParseMetrics, ParseObserver};
use crate::prediction::cache::{CacheStats, PredictionStats, SllCache};
use crate::recover::{self, RecoveredParse};
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{Grammar, NonTerminal, Token};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Cache policy across inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CachePolicy {
    /// Fresh cache per input — the published CoStar behavior (§6.2).
    PerInput,
    /// Persistent cache across inputs — ANTLR's behavior, our extension.
    Persistent,
}

/// A reusable ALL(*) parser for one grammar.
///
/// # Examples
///
/// ```
/// use costar::{ParseOutcome, Parser};
/// use costar_grammar::{GrammarBuilder, Token};
///
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["A", "d"]);
/// gb.rule("S", &["A", "c"]);
/// gb.rule("A", &["a", "A"]);
/// gb.rule("A", &["b"]);
/// let g = gb.start("S").build()?;
///
/// let mut parser = Parser::new(g);
/// let tok = |n: &str| Token::new(parser.grammar().symbols().lookup_terminal(n).unwrap(), n);
/// let word = vec![tok("a"), tok("b"), tok("d")];
/// let ParseOutcome::Unique(tree) = parser.parse(&word) else {
///     panic!("expected a unique parse");
/// };
/// assert_eq!(tree.leaf_count(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Parser {
    grammar: Grammar,
    analysis: GrammarAnalysis,
    cache: SllCache,
    policy: CachePolicy,
    mode: PredictionMode,
    budget: Budget,
}

impl Parser {
    /// Creates a parser that, like published CoStar, starts every parse
    /// with an empty prediction cache.
    pub fn new(grammar: Grammar) -> Self {
        let analysis = GrammarAnalysis::compute(&grammar);
        Parser {
            grammar,
            analysis,
            cache: SllCache::new(),
            policy: CachePolicy::PerInput,
            mode: PredictionMode::Adaptive,
            budget: Budget::unlimited(),
        }
    }

    /// Creates a parser from a grammar and a **precomputed**
    /// [`GrammarAnalysis`] — e.g. one restored from the on-disk grammar
    /// cache (`costar_grammar::analysis::from_cache_json`), skipping the
    /// FIRST/FOLLOW/decision-table computation entirely.
    ///
    /// The analysis must have been computed (or validated, as the cache
    /// decoder does) against this exact grammar; pairing it with a
    /// different grammar produces undefined parse results (though never
    /// memory unsafety).
    pub fn with_analysis(grammar: Grammar, analysis: GrammarAnalysis) -> Self {
        // The audit certificate bounds the SLL closure-graph size per
        // decision; pre-size the prediction cache to that estimate so the
        // warm-up phase of certificate-backed parsers avoids rehashing.
        let mut cache = SllCache::new();
        cache.reserve_states(analysis.audit.total_graph_states());
        Parser {
            grammar,
            analysis,
            cache,
            policy: CachePolicy::PerInput,
            mode: PredictionMode::Adaptive,
            budget: Budget::unlimited(),
        }
    }

    /// Creates a parser governed by a resource [`Budget`]: every parse
    /// draws machine steps and prediction lookahead from the budget's
    /// fuel, honors its deadline and stack-depth limits (surfacing
    /// exhaustion as [`ParseOutcome::Aborted`]), and caps the SLL cache at
    /// its entry/byte limits (degrading by LRU eviction, never by abort).
    pub fn with_budget(grammar: Grammar, budget: Budget) -> Self {
        let mut p = Parser::new(grammar);
        p.budget = budget;
        p
    }

    /// Creates a parser that runs precise LL prediction at every decision
    /// point, bypassing SLL and its cache — the "memoization off" arm of
    /// the cache ablation. Outcomes are identical to [`Parser::new`];
    /// only performance differs.
    pub fn with_ll_only(grammar: Grammar) -> Self {
        let mut p = Parser::new(grammar);
        p.mode = PredictionMode::LlOnly;
        p
    }

    /// Creates a parser that disables the static LL(1) fast path and runs
    /// full adaptive (SLL with LL failover) prediction at every decision
    /// point — the "static table off" arm of the fast-path ablation.
    /// Outcomes are identical to [`Parser::new`]; only performance (and
    /// the `static_fast_path` counters) differ.
    pub fn with_no_static_fast_path(grammar: Grammar) -> Self {
        let mut p = Parser::new(grammar);
        p.mode = PredictionMode::AdaptiveNoStatic;
        p
    }

    /// Creates a parser that keeps its SLL prediction cache warm across
    /// inputs (the paper's §8 "reuse a cache across multiple inputs"
    /// extension; ANTLR's default behavior).
    pub fn with_cache_reuse(grammar: Grammar) -> Self {
        let mut p = Parser::new(grammar);
        p.policy = CachePolicy::Persistent;
        p
    }

    /// The grammar this parser interprets.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The precomputed grammar analyses.
    pub fn analysis(&self) -> &GrammarAnalysis {
        &self.analysis
    }

    /// Is the grammar free of left recursion? When `true`, the paper's
    /// correctness theorems apply: this parser is a decision procedure for
    /// language membership, never returns [`ParseOutcome::Error`], and
    /// labels every returned tree correctly as unique or ambiguous.
    pub fn grammar_is_safe(&self) -> bool {
        self.analysis.left_recursion.is_grammar_safe()
    }

    /// The budget governing this parser's parses.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Replaces the budget for subsequent parses. Cache capacity limits
    /// take effect at the start of the next [`Parser::parse`] call.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Installs a deterministic [`FaultPlan`](crate::FaultPlan) on this
    /// parser's prediction cache (test-only; feature `faults`). The plan
    /// survives per-input cache clearing, so every parse replays the same
    /// fault schedule.
    #[cfg(feature = "faults")]
    pub fn install_fault_plan(&mut self, plan: crate::FaultPlan) {
        self.cache.install_fault_plan(plan);
    }

    /// Parses `word`, starting from the grammar's start symbol.
    ///
    /// This is the crate's panic-safe boundary: a panic anywhere below
    /// (which for a well-formed grammar indicates a parser bug, never a
    /// property of the input) is caught, the possibly-inconsistent
    /// prediction cache is discarded, and the result is
    /// [`ParseOutcome::Error`] rather than an unwinding panic.
    pub fn parse(&mut self, word: &[Token]) -> ParseOutcome {
        self.parse_observed(word, &mut NullObserver)
    }

    /// [`Parser::parse`] with a [`ParseObserver`] receiving every parse
    /// event. The observer is monomorphized in: with [`NullObserver`]
    /// (what [`Parser::parse`] passes) every hook compiles away.
    pub fn parse_observed<O: ParseObserver>(
        &mut self,
        word: &[Token],
        obs: &mut O,
    ) -> ParseOutcome {
        if self.policy == CachePolicy::PerInput {
            self.cache.clear();
        }
        self.cache.set_capacity(
            self.budget.max_cache_entries(),
            self.budget.max_cache_bytes(),
        );
        let result = catch_unwind(AssertUnwindSafe(|| {
            Machine::with_budget(&self.grammar, &self.analysis, word, self.mode, &self.budget)
                .run_observed(&mut self.cache, obs)
        }));
        match result {
            Ok(outcome) => outcome,
            Err(payload) => {
                // The panic may have interrupted a cache mutation; drop
                // everything cached so the parser stays usable (this is
                // what makes the AssertUnwindSafe above sound).
                self.cache.clear();
                let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.as_str()
                } else {
                    "non-string panic payload"
                };
                ParseOutcome::Error(ParseError::invalid_state(format!(
                    "panic during parse: {msg}"
                )))
            }
        }
    }

    /// Parses `word` with syntax-error recovery: instead of stopping at
    /// the first rejection, the parser panic-mode resynchronizes (skipping
    /// tokens and/or abandoning open productions, guided by the grammar's
    /// precomputed sync sets), splices [`costar_grammar::Tree::Error`]
    /// nodes into the tree, and keeps going — collecting one
    /// [`Diagnostic`](crate::Diagnostic) per error.
    ///
    /// On a word the grammar accepts, this takes the byte-identical step
    /// sequence as [`Parser::parse`] and returns the identical tree with
    /// zero diagnostics (the `H-RECOVER-SOUND` property). The number of
    /// recoveries is capped by
    /// [`Budget::with_max_recoveries`](crate::Budget::with_max_recoveries);
    /// exceeding the cap aborts with
    /// [`AbortReason::RecoveryLimit`](crate::AbortReason::RecoveryLimit).
    ///
    /// Like [`Parser::parse`], this is a panic-safe boundary.
    pub fn parse_recovering(&mut self, word: &[Token]) -> RecoveredParse {
        self.parse_recovering_observed(word, &mut NullObserver)
    }

    /// [`Parser::parse_recovering`] with a [`ParseObserver`]. Recovery
    /// fires the [`ParseObserver::on_recovery`] and
    /// [`ParseObserver::on_resync_skip`] hooks in addition to the plain
    /// parse events.
    pub fn parse_recovering_observed<O: ParseObserver>(
        &mut self,
        word: &[Token],
        obs: &mut O,
    ) -> RecoveredParse {
        if self.policy == CachePolicy::PerInput {
            self.cache.clear();
        }
        self.cache.set_capacity(
            self.budget.max_cache_entries(),
            self.budget.max_cache_bytes(),
        );
        let result = catch_unwind(AssertUnwindSafe(|| {
            let machine =
                Machine::with_budget(&self.grammar, &self.analysis, word, self.mode, &self.budget);
            recover::run_recovering(
                &self.analysis,
                machine,
                &mut self.cache,
                obs,
                self.budget.max_recoveries(),
            )
        }));
        match result {
            Ok(recovered) => recovered,
            Err(payload) => {
                self.cache.clear();
                let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.as_str()
                } else {
                    "non-string panic payload"
                };
                RecoveredParse {
                    error_tree: None,
                    diagnostics: Vec::new(),
                    outcome: ParseOutcome::Error(ParseError::invalid_state(format!(
                        "panic during parse: {msg}"
                    ))),
                }
            }
        }
    }

    /// [`Parser::parse_recovering`] with a [`MetricsObserver`] attached:
    /// returns the recovered parse together with the full [`ParseMetrics`]
    /// (including the `recoveries` / `tokens_skipped` counters).
    pub fn parse_recovering_with_metrics(
        &mut self,
        word: &[Token],
    ) -> (RecoveredParse, ParseMetrics) {
        let mut obs = MetricsObserver::new();
        let start = Instant::now();
        let recovered = self.parse_recovering_observed(word, &mut obs);
        let mut metrics = obs.into_metrics();
        metrics.total_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        metrics.tokens = word.len();
        (recovered, metrics)
    }

    /// Parses `word` while measuring it: runs [`Parser::parse_observed`]
    /// with a [`MetricsObserver`] and returns the outcome together with
    /// the full [`ParseMetrics`] — counters, latency histograms, input
    /// size, and wall-clock time.
    pub fn parse_with_metrics(&mut self, word: &[Token]) -> (ParseOutcome, ParseMetrics) {
        let mut obs = MetricsObserver::new();
        let start = Instant::now();
        let outcome = self.parse_observed(word, &mut obs);
        let mut metrics = obs.into_metrics();
        metrics.total_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        metrics.tokens = word.len();
        (outcome, metrics)
    }

    /// SLL cache effectiveness counters (non-zero across calls only with
    /// [`Parser::with_cache_reuse`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Prediction-behavior counters for the most recent parse (or, with
    /// [`Parser::with_cache_reuse`], accumulated across parses): how many
    /// decisions SLL resolved, how often LL failover ran, and how much
    /// lookahead decisions needed.
    pub fn prediction_stats(&self) -> PredictionStats {
        self.cache.prediction_stats()
    }

    /// Nonterminal lookup convenience.
    pub fn nonterminal(&self, name: &str) -> Option<NonTerminal> {
        self.grammar.symbols().lookup_nonterminal(name)
    }
}

/// One-shot convenience: parses `word` with grammar `g` from its start
/// symbol, with a fresh prediction cache (the paper's top-level `parse`).
///
/// For repeated parsing, build a [`Parser`] instead so the grammar
/// analyses are computed once.
///
/// # Examples
///
/// ```
/// use costar::{parse, ParseOutcome};
/// use costar_grammar::{GrammarBuilder, Token};
///
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a"]);
/// let g = gb.start("S").build()?;
/// let a = g.symbols().lookup_terminal("a").unwrap();
/// assert!(matches!(parse(&g, &[Token::new(a, "a")]), ParseOutcome::Unique(_)));
/// assert!(matches!(parse(&g, &[]), ParseOutcome::Reject(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse(g: &Grammar, word: &[Token]) -> ParseOutcome {
    let analysis = GrammarAnalysis::compute(g);
    let mut cache = SllCache::new();
    Machine::new(g, &analysis, word).run(&mut cache)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use costar_grammar::{tokens, GrammarBuilder};

    fn fig2_parser() -> Parser {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        Parser::new(gb.start("S").build().unwrap())
    }

    #[test]
    fn parser_is_reusable() {
        let mut p = fig2_parser();
        let mut tab = p.grammar().symbols().clone();
        let w1 = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let w2 = tokens(&mut tab, &[("b", "b"), ("c", "c")]);
        assert!(p.parse(&w1).is_accept());
        assert!(p.parse(&w2).is_accept());
        assert!(!p.parse(&w1[..1]).is_accept());
        // Per-input policy: cache is cleared before each parse, so stats
        // reflect only the last word.
        assert!(p.grammar_is_safe());
    }

    #[test]
    fn cache_reuse_accumulates_hits() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        let g = gb.start("S").build().unwrap();
        let mut p = Parser::with_cache_reuse(g);
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        assert!(p.parse(&w).is_accept());
        let first = p.cache_stats();
        assert!(p.parse(&w).is_accept());
        let second = p.cache_stats();
        assert_eq!(
            first.misses, second.misses,
            "a warmed cache answers repeat predictions without new computation"
        );
        assert!(second.hits > first.hits);
        assert_eq!(first.states, second.states);
    }

    #[test]
    fn per_input_policy_resets_cache() {
        let mut p = fig2_parser();
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        assert!(p.parse(&w).is_accept());
        let s1 = p.cache_stats();
        assert!(p.parse(&w).is_accept());
        let s2 = p.cache_stats();
        assert_eq!(s1.misses, s2.misses, "identical runs from cold caches");
        assert_eq!(s1.hits, s2.hits);
    }

    #[test]
    fn one_shot_parse_matches_parser() {
        let mut p = fig2_parser();
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("b", "b"), ("d", "d")]);
        let one_shot = parse(p.grammar(), &w);
        let reusable = p.parse(&w);
        assert!(one_shot.is_accept() && reusable.is_accept());
        assert_eq!(one_shot.tree(), reusable.tree());
    }

    #[test]
    fn unsafe_grammar_reported() {
        let mut gb = GrammarBuilder::new();
        gb.rule("E", &["E", "x"]);
        gb.rule("E", &["y"]);
        let p = Parser::new(gb.start("E").build().unwrap());
        assert!(!p.grammar_is_safe());
    }

    #[test]
    fn nonterminal_lookup() {
        let p = fig2_parser();
        assert!(p.nonterminal("S").is_some());
        assert!(p.nonterminal("Z").is_none());
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod budget_tests {
    use super::*;
    use crate::budget::AbortReason;
    use costar_grammar::{tokens, GrammarBuilder};

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    #[test]
    fn tight_step_budget_aborts_and_recovers() {
        let mut p = Parser::with_budget(fig2(), Budget::unlimited().with_max_steps(2));
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let ParseOutcome::Aborted(AbortReason::StepLimit { limit: 2 }) = p.parse(&w) else {
            panic!("expected a step-limit abort");
        };
        // An abort is not sticky: a bigger budget resolves the same input.
        p.set_budget(Budget::unlimited());
        assert!(p.parse(&w).is_accept());
    }

    #[test]
    fn derived_budget_admits_every_valid_parse() {
        let g = fig2();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("a", "a"), ("b", "b"), ("c", "c")]);
        let budget = Budget::derived(&g, w.len());
        let mut p = Parser::with_budget(g, budget);
        assert!(
            p.parse(&w).is_accept(),
            "the derived fuel bound must admit any terminating parse"
        );
    }

    #[test]
    fn stack_depth_limit_aborts_deep_nesting() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "S"]);
        gb.rule("S", &["b"]);
        let g = gb.start("S").build().unwrap();
        let mut p = Parser::with_budget(g, Budget::unlimited().with_max_stack_depth(8));
        let mut tab = p.grammar().symbols().clone();
        let mut word: Vec<(&str, &str)> = vec![("a", "a"); 32];
        word.push(("b", "b"));
        let w = tokens(&mut tab, &word);
        let ParseOutcome::Aborted(AbortReason::StackDepth { limit: 8, .. }) = p.parse(&w) else {
            panic!("expected a stack-depth abort");
        };
        // Shallow input fits under the same limit.
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b")]);
        assert!(p.parse(&w).is_accept());
    }

    #[test]
    fn cache_caps_degrade_without_changing_outcomes() {
        let mut p = Parser::with_budget(fig2(), Budget::unlimited().with_max_cache_entries(2));
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("a", "a"), ("b", "b"), ("d", "d")]);
        assert!(p.parse(&w).is_accept());
        let stats = p.cache_stats();
        assert!(
            stats.states <= 2,
            "cap not enforced: {} states",
            stats.states
        );
    }

    #[test]
    fn zero_cache_cap_disables_cache_without_changing_outcomes() {
        // Deeply nested input under `--cache-cap 0`: prediction must
        // degrade to cache-off (every lookup a miss, no eviction churn,
        // nothing pinned) and produce the same tree as an unbounded run.
        let mut gb = GrammarBuilder::new();
        gb.rule("V", &["[", "V", "]"]);
        gb.rule("V", &["a"]);
        let g = gb.start("V").build().unwrap();
        let mut tab = g.symbols().clone();
        let mut word: Vec<(&str, &str)> = vec![("[", "["); 40];
        word.push(("a", "a"));
        word.extend(std::iter::repeat_n(("]", "]"), 40));
        let w = tokens(&mut tab, &word);

        let mut unbounded = Parser::new(g.clone());
        let expected = unbounded.parse(&w);
        assert!(expected.is_accept());

        // This grammar is LL(1), so the static fast path would bypass the
        // cache entirely; disable it so the test exercises cache-off
        // degradation of real SLL simulation.
        let mut capped = Parser::with_no_static_fast_path(g);
        capped.set_budget(Budget::unlimited().with_max_cache_entries(0));
        let got = capped.parse(&w);
        assert_eq!(expected.tree(), got.tree());
        let stats = capped.cache_stats();
        assert_eq!(stats.hits, 0, "a disabled cache can never hit");
        assert!(stats.misses > 0);
        assert_eq!(stats.evictions, 0, "cache-off must not churn evictions");
        assert_eq!(stats.transitions, 0);
        assert!(
            stats.states <= 2,
            "only in-flight scratch states may be resident, got {}",
            stats.states
        );
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod metrics_tests {
    use super::*;
    use crate::budget::AbortReason;
    use crate::observe::TraceObserver;
    use costar_grammar::{tokens, GrammarBuilder};

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    #[test]
    fn parse_with_metrics_reconciles_with_the_meter() {
        let mut p = Parser::new(fig2());
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let (outcome, m) = p.parse_with_metrics(&w);
        assert!(outcome.is_accept());
        assert!(m.reconciles(), "metrics must reconcile: {m:?}");
        assert_eq!(m.machine_steps, 10);
        assert_eq!(m.consumes, 3);
        assert_eq!(m.pushes, 3);
        assert_eq!(m.returns, 3);
        assert_eq!(m.decisions, 3);
        // Both A decisions dispatch through the static LL(1) fast path;
        // only the S decision (SLL-safe but not LL(1)) runs SLL simulation.
        assert_eq!(m.sll_resolved, 1);
        assert_eq!(m.static_fast_path_hits, 2);
        assert_eq!(m.failovers, 0);
        assert_eq!(m.tokens, 3);
        assert!(m.total_nanos > 0);
        assert_eq!(m.abort, None);
        // The observer's cache and decision counts mirror the cache's own
        // counters exactly (per-input policy: both cover this parse only).
        let cs = p.cache_stats();
        assert_eq!(m.cache_hits, cs.hits);
        assert_eq!(m.cache_misses, cs.misses);
        assert_eq!(m.cache_evictions, cs.evictions);
        let ps = p.prediction_stats();
        assert_eq!(m.decisions, ps.predictions);
        assert_eq!(m.sll_resolved, ps.sll_resolved);
        assert_eq!(m.single_alternative, ps.single_alternative);
    }

    #[test]
    fn aborted_parse_metrics_still_reconcile() {
        let mut p = Parser::with_budget(fig2(), Budget::unlimited().with_max_steps(2));
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let (outcome, m) = p.parse_with_metrics(&w);
        assert!(matches!(outcome, ParseOutcome::Aborted(_)));
        assert_eq!(m.abort, Some(AbortReason::StepLimit { limit: 2 }));
        assert!(m.reconciles(), "aborted metrics must reconcile: {m:?}");
        assert_eq!(m.meter_steps, 2);
    }

    #[test]
    fn paired_observers_both_see_the_parse() {
        let mut p = Parser::new(fig2());
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let mut pair = (MetricsObserver::new(), TraceObserver::new(16));
        assert!(p.parse_observed(&w, &mut pair).is_accept());
        assert_eq!(pair.0.metrics().machine_steps, 10);
        assert!(pair.1.total_events() > 0);
        let dump = pair.1.dump(Some(p.grammar().symbols()));
        assert!(dump.contains("predict Sll start S"));
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod prediction_stats_tests {
    use super::*;
    use costar_grammar::{tokens, GrammarBuilder};

    #[test]
    fn fig2_stats_counted() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        let mut p = Parser::new(gb.start("S").build().unwrap());
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        assert!(p.parse(&w).is_accept());
        let stats = p.prediction_stats();
        // Three pushes: S, A, A — all multi-alternative. The two A
        // decisions are LL(1) and resolve via the static fast path; S is
        // SLL-safe but not LL(1), so it alone runs SLL simulation.
        assert_eq!(stats.predictions, 3);
        assert_eq!(stats.sll_resolved, 1);
        assert_eq!(stats.static_fast_path, 2);
        assert_eq!(stats.failovers, 0);
        assert_eq!(stats.single_alternative, 0);
        // Deciding S scans to the very end of "abd".
        assert_eq!(stats.max_lookahead, 3);
        assert!(stats.mean_lookahead() >= 1.0);
    }

    #[test]
    fn failover_counted() {
        // The SLL-conflict grammar from the prediction tests.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["p", "C1"]);
        gb.rule("S", &["q", "C2"]);
        gb.rule("C1", &["X", "b"]);
        gb.rule("C2", &["X", "a", "b"]);
        gb.rule("X", &["a", "a"]);
        gb.rule("X", &["a"]);
        let mut p = Parser::new(gb.start("S").build().unwrap());
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("q", "q"), ("a", "a"), ("a", "a"), ("b", "b")]);
        assert!(p.parse(&w).is_accept());
        let stats = p.prediction_stats();
        assert_eq!(stats.failovers, 1, "the X decision must fail over to LL");
        assert_eq!(stats.single_alternative, 1, "C2's push short-circuits");
        assert!(stats.predictions >= 2);
        // S is LL(1) on its leading terminal (p vs q), so it dispatches
        // statically; only X runs simulation (and fails over).
        assert_eq!(stats.static_fast_path, 1);
        assert_eq!(stats.sll_resolved, 0);
    }

    #[test]
    fn no_static_fast_path_mode_matches_outcome_without_fast_path_hits() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        let g = gb.start("S").build().unwrap();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);

        let mut fast = Parser::new(g.clone());
        let fast_outcome = fast.parse(&w);
        let mut full = Parser::with_no_static_fast_path(g);
        let full_outcome = full.parse(&w);

        assert_eq!(fast_outcome.tree(), full_outcome.tree());
        assert_eq!(fast.prediction_stats().static_fast_path, 2);
        let full_stats = full.prediction_stats();
        assert_eq!(full_stats.static_fast_path, 0);
        assert_eq!(full_stats.sll_resolved, 3, "all decisions simulate");
    }

    #[test]
    fn single_alternative_short_circuits_counted() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "A"]);
        gb.rule("A", &["a"]);
        let mut p = Parser::new(gb.start("S").build().unwrap());
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("a", "a")]);
        assert!(p.parse(&w).is_accept());
        let stats = p.prediction_stats();
        assert_eq!(stats.predictions, 0);
        assert_eq!(stats.single_alternative, 3); // S, A, A
        assert_eq!(stats.mean_lookahead(), 0.0);
    }
}
