//! Instrumented execution: the dynamic counterpart of the paper's proofs.
//!
//! [`run_instrumented`] drives the machine one step at a time and, after
//! every step, checks that:
//!
//! 1. `meas(σ′) <₃ meas(σ)` — every step strictly decreases the
//!    termination measure (paper Lemma 4.2), which is what guarantees
//!    `multistep` terminates;
//! 2. the machine state still satisfies the structural invariants
//!    (`StacksWf_I` and the visited-set invariant — paper Lemmas 5.2 and
//!    5.10's supporting invariant).
//!
//! Production code calls [`crate::Parser::parse`], which skips all of
//! this; the instrumented runner exists for the test suites, the property
//! tests, and anyone studying the algorithm.

use crate::budget::Budget;
use crate::invariants::{check_all_with_input, InvariantViolation};
use crate::machine::{Machine, ParseOutcome, StepResult};
use crate::measure::{meas, Measure};
use crate::observe::{MetricsObserver, ParseMetrics, ParseObserver};
use crate::prediction::cache::SllCache;
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{Grammar, Token};
use std::fmt;

/// Why an instrumented run aborted.
#[derive(Debug, Clone)]
pub enum InstrumentError {
    /// A step failed to decrease the termination measure — a
    /// counterexample to paper Lemma 4.2.
    MeasureNotDecreased {
        /// The measure before the offending step.
        before: Measure,
        /// The measure after it.
        after: Measure,
        /// Which step (0-based) failed.
        step: usize,
    },
    /// A machine-state invariant failed — a counterexample to the
    /// corresponding preservation lemma.
    Invariant {
        /// The violation.
        violation: InvariantViolation,
        /// Which step produced the bad state.
        step: usize,
    },
}

impl fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrumentError::MeasureNotDecreased {
                before,
                after,
                step,
            } => write!(
                f,
                "step {step} did not decrease the measure: {before} -> {after}"
            ),
            InstrumentError::Invariant { violation, step } => {
                write!(f, "after step {step}: {violation}")
            }
        }
    }
}

impl std::error::Error for InstrumentError {}

/// Runs a full parse, checking the termination measure and the machine
/// invariants after every step.
///
/// # Errors
///
/// Returns [`InstrumentError`] if any step increases (or fails to
/// decrease) the measure, or leaves the machine in a state violating an
/// invariant. For a correct parser this never happens; the error type
/// exists so property tests can surface counterexamples.
pub fn run_instrumented(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    word: &[Token],
) -> Result<(ParseOutcome, ParseMetrics), InstrumentError> {
    run_instrumented_with(g, analysis, word, &Budget::unlimited())
}

/// [`run_instrumented`] under a resource [`Budget`]: cache capacity limits
/// are applied to the run's [`SllCache`], and a spent budget surfaces as
/// `Ok((ParseOutcome::Aborted(..), report))` — the instrumentation checks
/// still hold on every step taken before the abort, which is exactly the
/// property the fault-injection and adversarial-input suites rely on.
pub fn run_instrumented_with(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    word: &[Token],
    budget: &Budget,
) -> Result<(ParseOutcome, ParseMetrics), InstrumentError> {
    let mut cache = SllCache::new();
    cache.set_capacity(budget.max_cache_entries(), budget.max_cache_bytes());
    let mut machine =
        Machine::with_budget(g, analysis, word, crate::PredictionMode::Adaptive, budget);
    let mut obs = MetricsObserver::new();
    let mut before = meas(g, machine.state(), word.len());
    let mut cont_steps = 0usize;

    let outcome = loop {
        match machine.step_observed(&mut cache, &mut obs) {
            StepResult::Cont => {
                cont_steps += 1;
                let after = meas(g, machine.state(), word.len());
                if after >= before {
                    return Err(InstrumentError::MeasureNotDecreased {
                        before,
                        after,
                        step: cont_steps - 1,
                    });
                }
                if let Err(violation) = check_all_with_input(g, machine.state(), word) {
                    return Err(InstrumentError::Invariant {
                        violation,
                        step: cont_steps - 1,
                    });
                }
                before = after;
            }
            StepResult::Accept(tree) => {
                break if machine.state().unique {
                    ParseOutcome::Unique(tree)
                } else {
                    ParseOutcome::Ambig(tree)
                };
            }
            StepResult::Reject(r) => break ParseOutcome::Reject(r),
            StepResult::Error(e) => break ParseOutcome::Error(e),
            StepResult::Abort(r) => break ParseOutcome::Aborted(r),
        }
    };
    obs.on_finish(machine.steps_taken());
    let mut metrics = obs.into_metrics();
    metrics.tokens = word.len();
    Ok((outcome, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::{tokens, GrammarBuilder};

    fn instrumented(
        build: impl FnOnce(&mut GrammarBuilder),
        word: &[(&str, &str)],
    ) -> (ParseOutcome, ParseMetrics) {
        let mut gb = GrammarBuilder::new();
        build(&mut gb);
        let g = gb.build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, word);
        run_instrumented(&g, &an, &w).expect("instrumentation checks must pass")
    }

    #[test]
    fn fig2_run_reports_operation_counts() {
        let (outcome, report) = instrumented(
            |gb| {
                gb.rule("S", &["A", "c"]);
                gb.rule("S", &["A", "d"]);
                gb.rule("A", &["a", "A"]);
                gb.rule("A", &["b"]);
                gb.start("S");
            },
            &[("a", "a"), ("b", "b"), ("d", "d")],
        );
        assert!(outcome.is_accept());
        assert_eq!(report.consumes, 3);
        assert_eq!(report.pushes, 3); // S, A, A
        assert_eq!(report.returns, 3);
        // 9 continuing steps plus the final accepting step, each one
        // admitted by the meter.
        assert_eq!(report.machine_steps, 10);
        assert_eq!(report.max_stack_height, 4);
        assert!(report.reconciles());
    }

    #[test]
    fn measure_decreases_on_nullable_heavy_grammar() {
        // Deep nullable chains stress the stackScore argument: pushes
        // without consumes must still decrease the measure.
        let (outcome, report) = instrumented(
            |gb| {
                gb.rule("S", &["A", "B", "C", "x"]);
                gb.rule("A", &[]);
                gb.rule("B", &["A", "A"]);
                gb.rule("C", &["B", "B", "B"]);
                gb.start("S");
            },
            &[("x", "x")],
        );
        assert!(outcome.is_accept());
        assert!(report.pushes > report.consumes);
    }

    #[test]
    fn rejecting_runs_also_check_cleanly() {
        let (outcome, _) = instrumented(
            |gb| {
                gb.rule("S", &["a", "S"]);
                gb.rule("S", &["b"]);
                gb.start("S");
            },
            &[("a", "a"), ("a", "a"), ("c", "c")],
        );
        assert!(matches!(outcome, ParseOutcome::Reject(_)));
    }

    #[test]
    fn error_outcome_surfaces_left_recursion() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["E"]);
        gb.rule("E", &["E", "x"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("x", "x")]);
        let (outcome, _) = run_instrumented(&g, &an, &w).unwrap();
        assert!(matches!(
            outcome,
            ParseOutcome::Error(crate::ParseError::LeftRecursive(_))
        ));
    }

    #[test]
    fn deep_recursion_keeps_measure_strict() {
        // A long right-recursive chain: many consume/push/return cycles.
        let word: Vec<(&str, &str)> = std::iter::repeat_n(("a", "a"), 64)
            .chain(std::iter::once(("b", "b")))
            .collect();
        let (outcome, report) = instrumented(
            |gb| {
                gb.rule("S", &["a", "S"]);
                gb.rule("S", &["b"]);
                gb.start("S");
            },
            &word,
        );
        assert!(outcome.is_accept());
        assert_eq!(report.consumes, 65);
        assert!(report.max_stack_height > 60);
    }
}
