//! Resource budgets for parsing (robustness layer).
//!
//! The paper proves the machine terminates by exhibiting a strictly
//! decreasing lexicographic measure `(tokens, stackScore, height)` (§4).
//! That proof yields more than termination: it yields a *computable upper
//! bound* on how many operations a well-formed parse can take. A
//! [`Budget`] turns that bound into an enforced contract — step fuel,
//! a wall-clock deadline, a stack-depth ceiling, and caps on the SLL
//! cache — so that no input/grammar pair, however adversarial, can make
//! [`crate::Parser::parse`] run without bound or exhaust memory. A
//! violated budget surfaces as the typed
//! [`ParseOutcome::Aborted`](crate::ParseOutcome::Aborted) outcome, never
//! a panic.
//!
//! ## Where the derived fuel bound comes from
//!
//! For an input of `n` tokens over a grammar with `|N|` nonterminals:
//!
//! * **consume** steps: at most `n` (each consumes one token);
//! * **push** steps: between two consumes the machine's visited set
//!   (paper §4.1) admits each nonterminal at most once, so at most `|N|`
//!   pushes happen per consume epoch, and there are `n + 1` epochs —
//!   at most `(n + 1)·|N|` pushes total;
//! * **return** steps: each return pops a frame some push created, plus
//!   one final return for the bottom frame — at most pushes `+ 1`.
//!
//! Machine steps are therefore bounded by `n + 2(n+1)|N| + 1`. Prediction
//! work is metered in the same fuel: each push triggers at most one
//! `adaptivePredict`, which scans at most `n + 1` lookahead tokens in its
//! SLL phase and at most as many again after an LL failover. The derived
//! bound ([`Budget::derived`]) is the saturating sum of all three terms —
//! a budget a correct parse can never exceed, making any `StepLimit`
//! abort under it evidence of a bug rather than of a large input.
//!
//! ## Degradation ordering
//!
//! Resource pressure degrades service in a fixed order, each stage
//! preserving correctness (see `DESIGN.md`):
//!
//! 1. **evict** — the bounded SLL cache drops least-recently-used DFA
//!    states; the only cost is re-predicting (re-deriving the dropped
//!    states) later;
//! 2. **failover** — SLL conflicts fall back to precise LL prediction,
//!    exactly as in the unbudgeted algorithm (paper §3.4);
//! 3. **abort** — only when fuel, deadline, or stack depth is exhausted
//!    does the parse stop, with a typed [`AbortReason`].

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
use costar_grammar::Grammar;
use std::fmt;
use std::time::{Duration, Instant};

/// Why a budgeted parse was aborted (the payload of
/// [`ParseOutcome::Aborted`](crate::ParseOutcome::Aborted)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The step fuel ([`Budget::with_max_steps`]) ran out.
    StepLimit {
        /// The configured fuel.
        limit: u64,
    },
    /// The wall-clock deadline ([`Budget::with_deadline`]) expired.
    DeadlineExpired {
        /// The configured deadline, in milliseconds.
        budget_ms: u64,
    },
    /// A push would exceed the suffix-stack depth ceiling
    /// ([`Budget::with_max_stack_depth`]).
    StackDepth {
        /// The depth the push would have reached.
        depth: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// A recovering parse ([`crate::Parser::parse_recovering`]) needed
    /// more error recoveries than [`Budget::with_max_recoveries`] allows.
    /// The plain (non-recovering) parse path never produces this.
    RecoveryLimit {
        /// The configured recovery cap.
        limit: u64,
    },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::StepLimit { limit } => {
                write!(f, "step budget exhausted (limit {limit})")
            }
            AbortReason::DeadlineExpired { budget_ms } => {
                write!(f, "deadline expired (budget {budget_ms} ms)")
            }
            AbortReason::StackDepth { depth, limit } => {
                write!(f, "stack depth {depth} exceeds limit {limit}")
            }
            AbortReason::RecoveryLimit { limit } => {
                write!(f, "error-recovery budget exhausted (limit {limit})")
            }
        }
    }
}

/// A resource budget for one parse. All limits are optional; the default
/// ([`Budget::unlimited`]) enforces nothing and adds no per-step cost
/// beyond a counter increment.
///
/// ```
/// use costar::{Budget, ParseOutcome, Parser};
/// use costar_grammar::{GrammarBuilder, Token};
///
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a", "S"]);
/// gb.rule("S", &["b"]);
/// let g = gb.start("S").build()?;
/// let a = g.symbols().lookup_terminal("a").unwrap();
/// let b = g.symbols().lookup_terminal("b").unwrap();
/// let mut word: Vec<Token> = std::iter::repeat_with(|| Token::new(a, "a")).take(100).collect();
/// word.push(Token::new(b, "b"));
///
/// // Two steps of fuel cannot finish a 101-token parse: typed abort.
/// let mut parser = Parser::with_budget(g, Budget::unlimited().with_max_steps(2));
/// assert!(matches!(parser.parse(&word), ParseOutcome::Aborted(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    max_steps: Option<u64>,
    deadline: Option<Duration>,
    max_stack_depth: Option<usize>,
    max_cache_entries: Option<usize>,
    max_cache_bytes: Option<usize>,
    max_recoveries: Option<u64>,
}

impl Budget {
    /// A budget that enforces nothing.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget whose step fuel is the termination-measure-derived bound
    /// for parsing `input_len` tokens with `g` (see the module docs). A
    /// correct parse can never exceed it, so an abort under this budget
    /// indicates a parser bug — the executable form of "the measure
    /// argument really does bound the work".
    pub fn derived(g: &Grammar, input_len: usize) -> Self {
        Budget::unlimited().with_max_steps(Self::derived_steps(g, input_len))
    }

    /// The derived fuel bound itself (see the module docs for the
    /// derivation).
    pub fn derived_steps(g: &Grammar, input_len: usize) -> u64 {
        let n = input_len as u64;
        let nts = g.num_nonterminals() as u64;
        let epochs = n.saturating_add(1);
        let pushes = epochs.saturating_mul(nts);
        let machine_steps = n.saturating_add(pushes.saturating_mul(2)).saturating_add(1);
        // Each push may trigger one prediction scanning <= n + 1 tokens in
        // its SLL phase and as many again after LL failover.
        let prediction = pushes.saturating_mul(epochs.saturating_mul(2));
        machine_steps.saturating_add(prediction)
    }

    /// Caps the total fuel: machine steps plus prediction lookahead
    /// tokens examined.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Sets a wall-clock deadline, measured from the start of the parse.
    ///
    /// **Batch semantics:** the deadline is *per parse*, not per batch.
    /// The clock starts when a parse begins (each `Machine` construction
    /// creates a fresh `Meter`, which captures `Instant::now()` then), so
    /// every input in a [`BatchParser`](crate::BatchParser) run gets its
    /// own full allowance — a slow or aborting first input can never
    /// starve later inputs of deadline. This is also what makes deadline
    /// behavior independent of batch order and worker scheduling: input
    /// `k` sees the same allowance whether it is parsed first, last, or
    /// concurrently with others.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the suffix-stack depth (bounds memory for deeply nested
    /// input and guards against runaway recursion in one number).
    pub fn with_max_stack_depth(mut self, depth: usize) -> Self {
        self.max_stack_depth = Some(depth);
        self
    }

    /// Caps the number of interned SLL DFA states; beyond it the cache
    /// evicts least-recently-used states (correctness is unaffected —
    /// evicted analysis is simply re-derived on demand).
    pub fn with_max_cache_entries(mut self, entries: usize) -> Self {
        self.max_cache_entries = Some(entries);
        self
    }

    /// Caps the (approximate) bytes retained by the SLL cache.
    pub fn with_max_cache_bytes(mut self, bytes: usize) -> Self {
        self.max_cache_bytes = Some(bytes);
        self
    }

    /// Caps how many syntax-error recoveries one
    /// [`crate::Parser::parse_recovering`] call may perform before giving
    /// up with [`AbortReason::RecoveryLimit`]. Has no effect on the plain
    /// parse path, which stops at the first error.
    pub fn with_max_recoveries(mut self, recoveries: u64) -> Self {
        self.max_recoveries = Some(recoveries);
        self
    }

    /// The configured step fuel, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured stack-depth ceiling, if any.
    pub fn max_stack_depth(&self) -> Option<usize> {
        self.max_stack_depth
    }

    /// The configured cache entry cap, if any.
    pub fn max_cache_entries(&self) -> Option<usize> {
        self.max_cache_entries
    }

    /// The configured cache byte cap, if any.
    pub fn max_cache_bytes(&self) -> Option<usize> {
        self.max_cache_bytes
    }

    /// The configured recovery cap, if any.
    pub fn max_recoveries(&self) -> Option<u64> {
        self.max_recoveries
    }

    /// `true` if no limit is configured.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }
}

/// How many fuel charges pass between wall-clock reads (amortizes
/// `Instant::now`, which would otherwise dominate small steps). The first
/// charge always checks, so a tiny deadline aborts promptly.
const DEADLINE_CHECK_INTERVAL: u32 = 256;

/// The per-run mutable counterpart of a [`Budget`]: fuel remaining, the
/// deadline clock, and the step counter. One meter lives inside each
/// [`Machine`](crate::Machine) run.
#[derive(Debug, Clone)]
pub(crate) struct Meter {
    fuel: Option<u64>,
    step_limit: u64,
    deadline: Option<(Instant, Duration)>,
    max_depth: Option<usize>,
    until_clock_check: u32,
    steps: u64,
}

impl Meter {
    pub(crate) fn new(budget: &Budget) -> Self {
        Meter {
            fuel: budget.max_steps,
            step_limit: budget.max_steps.unwrap_or(u64::MAX),
            deadline: budget.deadline.map(|d| (Instant::now(), d)),
            max_depth: budget.max_stack_depth,
            until_clock_check: 1,
            steps: 0,
        }
    }

    /// A meter with no limits — for unbudgeted internal callers and tests.
    #[cfg(test)]
    pub(crate) fn unlimited() -> Self {
        Meter::new(&Budget::unlimited())
    }

    /// Total fuel charged so far (machine steps + prediction lookahead).
    pub(crate) fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Charges `n` units of fuel and (periodically) checks the deadline.
    ///
    /// `steps_taken()` counts only *admitted* work: a charge that fails —
    /// on fuel or on deadline — leaves the counter untouched, so the
    /// counter reconciles exactly with the observer-layer step counts.
    /// Deadline bookkeeping runs before the fuel check so that an
    /// exhausted fuel pool cannot starve the clock.
    pub(crate) fn charge(&mut self, n: u64) -> Result<(), AbortReason> {
        if let Some((start, limit)) = self.deadline {
            let spent = u32::try_from(n).unwrap_or(u32::MAX);
            self.until_clock_check = self.until_clock_check.saturating_sub(spent.max(1));
            if self.until_clock_check == 0 {
                self.until_clock_check = DEADLINE_CHECK_INTERVAL;
                if start.elapsed() > limit {
                    return Err(AbortReason::DeadlineExpired {
                        budget_ms: limit.as_millis() as u64,
                    });
                }
            }
        }
        if let Some(fuel) = &mut self.fuel {
            if *fuel < n {
                return Err(AbortReason::StepLimit {
                    limit: self.step_limit,
                });
            }
            *fuel -= n;
        }
        self.steps = self.steps.saturating_add(n);
        Ok(())
    }

    /// Checks a prospective suffix-stack depth against the ceiling.
    pub(crate) fn check_depth(&self, depth: usize) -> Result<(), AbortReason> {
        match self.max_depth {
            Some(limit) if depth > limit => Err(AbortReason::StackDepth { depth, limit }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use costar_grammar::GrammarBuilder;

    #[test]
    fn unlimited_meter_never_aborts() {
        let mut m = Meter::unlimited();
        for _ in 0..10_000 {
            m.charge(1).unwrap();
        }
        m.check_depth(usize::MAX).unwrap();
        assert_eq!(m.steps_taken(), 10_000);
    }

    #[test]
    fn fuel_runs_out_exactly() {
        let mut m = Meter::new(&Budget::unlimited().with_max_steps(3));
        m.charge(1).unwrap();
        m.charge(2).unwrap();
        assert_eq!(
            m.charge(1),
            Err(AbortReason::StepLimit { limit: 3 }),
            "fourth unit of fuel must abort"
        );
    }

    #[test]
    fn failed_charge_does_not_inflate_steps_taken() {
        let mut m = Meter::new(&Budget::unlimited().with_max_steps(3));
        m.charge(3).unwrap();
        assert_eq!(m.steps_taken(), 3);
        assert_eq!(m.charge(5), Err(AbortReason::StepLimit { limit: 3 }));
        assert_eq!(
            m.steps_taken(),
            3,
            "a rejected charge must not count toward steps_taken"
        );
        assert!(m.charge(1).is_err());
        assert_eq!(m.steps_taken(), 3);
    }

    #[test]
    fn deadline_bookkeeping_runs_even_when_fuel_is_exhausted() {
        // Fuel 0 plus an already-expired deadline: the deadline must win,
        // proving the StepLimit early-return no longer skips the clock.
        let mut m = Meter::new(
            &Budget::unlimited()
                .with_max_steps(0)
                .with_deadline(Duration::ZERO),
        );
        assert!(matches!(
            m.charge(1),
            Err(AbortReason::DeadlineExpired { .. })
        ));
    }

    #[test]
    fn zero_deadline_aborts_on_first_charge() {
        let mut m = Meter::new(&Budget::unlimited().with_deadline(Duration::ZERO));
        assert!(matches!(
            m.charge(1),
            Err(AbortReason::DeadlineExpired { .. })
        ));
    }

    #[test]
    fn deadline_is_per_parse_not_per_batch() {
        // Regression test for the batch deadline contract: each parse's
        // clock starts at its own Meter construction. A slow first input
        // (simulated by sleeping past the whole deadline before the
        // second meter exists) must not starve a later input — if the
        // deadline were measured from batch start, the second charge
        // below would abort.
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(40));
        let mut first = Meter::new(&budget);
        first.charge(1).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        // Charge a full clock-check interval at once to defeat the
        // amortized `Instant::now` bookkeeping and force a clock read.
        assert!(
            matches!(
                first.charge(u64::from(DEADLINE_CHECK_INTERVAL)),
                Err(AbortReason::DeadlineExpired { .. })
            ),
            "the slow first input itself does hit its deadline"
        );
        let mut second = Meter::new(&budget);
        assert!(
            second.charge(u64::from(DEADLINE_CHECK_INTERVAL)).is_ok(),
            "a later input must start with its full deadline allowance"
        );
    }

    #[test]
    fn generous_deadline_does_not_abort() {
        let mut m = Meter::new(&Budget::unlimited().with_deadline(Duration::from_secs(3600)));
        for _ in 0..2048 {
            m.charge(1).unwrap();
        }
    }

    #[test]
    fn depth_ceiling() {
        let m = Meter::new(&Budget::unlimited().with_max_stack_depth(4));
        m.check_depth(4).unwrap();
        assert_eq!(
            m.check_depth(5),
            Err(AbortReason::StackDepth { depth: 5, limit: 4 })
        );
    }

    #[test]
    fn derived_bound_is_generous_and_saturates() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "S"]);
        gb.rule("S", &["b"]);
        let g = gb.start("S").build().unwrap();
        // n=10, |N|=1: machine steps <= 10 + 2*11 + 1 = 33.
        assert!(Budget::derived_steps(&g, 10) >= 33);
        // Saturating arithmetic: enormous inputs must not overflow.
        assert_eq!(Budget::derived_steps(&g, usize::MAX), u64::MAX);
    }

    #[test]
    fn builder_accessors_round_trip() {
        let b = Budget::unlimited()
            .with_max_steps(7)
            .with_deadline(Duration::from_millis(5))
            .with_max_stack_depth(9)
            .with_max_cache_entries(64)
            .with_max_cache_bytes(1 << 20)
            .with_max_recoveries(3);
        assert_eq!(b.max_steps(), Some(7));
        assert_eq!(b.deadline(), Some(Duration::from_millis(5)));
        assert_eq!(b.max_stack_depth(), Some(9));
        assert_eq!(b.max_cache_entries(), Some(64));
        assert_eq!(b.max_cache_bytes(), Some(1 << 20));
        assert_eq!(b.max_recoveries(), Some(3));
        assert!(!b.is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
        assert!(!Budget::unlimited().with_max_recoveries(0).is_unlimited());
    }

    #[test]
    fn abort_reason_display() {
        assert!(AbortReason::StepLimit { limit: 5 }
            .to_string()
            .contains("5"));
        assert!(AbortReason::DeadlineExpired { budget_ms: 10 }
            .to_string()
            .contains("10 ms"));
        assert!(AbortReason::StackDepth { depth: 3, limit: 2 }
            .to_string()
            .contains("exceeds"));
    }
}
