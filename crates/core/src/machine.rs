//! The CoStar stack machine: `step` and `multistep` (paper §3.1–3.3).
//!
//! The machine examines its state and performs one of three operations —
//! **consume**, **push**, or **return** — or recognizes a final
//! configuration. `multistep` simply iterates `step`. In Coq, `multistep`
//! carries an accessibility proof of the termination measure as its
//! structurally decreasing argument (§4.2); in Rust the loop needs no such
//! ceremony, and the measure instead powers the instrumented runner in
//! [`crate::instrument`], which asserts that every step strictly decreases
//! it.

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
use crate::budget::{AbortReason, Budget, Meter};
use crate::error::{ParseError, RejectReason};
use crate::observe::{MachineOp, NullObserver, ParseObserver};
use crate::prediction::cache::SllCache;
use crate::prediction::{adaptive_predict, ll_only_predict, Prediction};
use crate::state::{MachineState, PrefixFrame, SuffixFrame};
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{Grammar, Symbol, Token, Tree};

/// The outcome of a single machine step (`r` in paper Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// `AcceptS(v)`: the machine reached a final configuration; the tree's
    /// uniqueness is reported separately by the machine's `unique` flag.
    Accept(Tree),
    /// `RejectS`: the input word is not in the language.
    Reject(RejectReason),
    /// `ErrorS(e)`: the machine state is inconsistent or the grammar is
    /// left-recursive (never happens for well-formed, non-left-recursive
    /// grammars — paper Theorem 5.8).
    Error(ParseError),
    /// `ContS(σ)`: one operation was performed; parsing continues.
    Cont,
    /// The configured [`Budget`] ran out (fuel, deadline, or stack depth).
    /// Not a paper result: the machine state is still consistent, the
    /// input is neither accepted nor rejected, and rerunning with a larger
    /// budget may resolve it either way.
    Abort(AbortReason),
}

/// The final result of a parse (`R` in paper Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The word has exactly this parse tree.
    Unique(Tree),
    /// The word is ambiguous; this is one of its parse trees.
    Ambig(Tree),
    /// The word is not in the grammar's language.
    Reject(RejectReason),
    /// The parser reached an inconsistent state (impossible for
    /// non-left-recursive grammars).
    Error(ParseError),
    /// The configured [`Budget`] was exhausted before the parse resolved.
    /// Unlike `Reject` this says nothing about language membership, and
    /// unlike `Error` it is not a bug: the caller asked for bounded
    /// resources and the bound was reached. Degradation is ordered —
    /// cache pressure first evicts, SLL conflicts fail over to LL, and
    /// only a spent budget aborts.
    Aborted(AbortReason),
}

impl ParseOutcome {
    /// The parse tree, if the word was accepted (unique or ambiguous).
    pub fn tree(&self) -> Option<&Tree> {
        match self {
            ParseOutcome::Unique(t) | ParseOutcome::Ambig(t) => Some(t),
            _ => None,
        }
    }

    /// Consumes the outcome, returning the tree if the word was accepted.
    pub fn into_tree(self) -> Option<Tree> {
        match self {
            ParseOutcome::Unique(t) | ParseOutcome::Ambig(t) => Some(t),
            _ => None,
        }
    }

    /// `true` for `Unique` and `Ambig` outcomes.
    pub fn is_accept(&self) -> bool {
        matches!(self, ParseOutcome::Unique(_) | ParseOutcome::Ambig(_))
    }
}

/// Which prediction strategy the machine uses at decision points.
///
/// `Adaptive` is the paper's `adaptivePredict` (§3.4): cached SLL with LL
/// failover, plus the static LL(1) fast path from the grammar's decision
/// table. `AdaptiveNoStatic` disables only the fast path (the ablation
/// baseline). `LlOnly` disables SLL and its DFA cache entirely, running
/// the precise LL simulation at every decision — the "no memoization"
/// arm of the `ablation_sll_cache` benchmark, quantifying §2's claim that
/// the cache is what makes ALL(*) fast in practice. For non-left-recursive
/// grammars all modes produce identical outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictionMode {
    /// SLL with DFA cache, failing over to LL (the paper's algorithm),
    /// with decisions the static analysis classified LL(1) dispatched
    /// through the precompiled lookahead map (no simulation, no cache
    /// traffic).
    #[default]
    Adaptive,
    /// As `Adaptive`, but with the static LL(1) fast path disabled: every
    /// decision runs the full SLL simulation. The baseline arm of the
    /// `ablation_static_fast_path` benchmark and the `H-DECIDE-SOUND`
    /// agreement harness.
    AdaptiveNoStatic,
    /// Precise LL simulation at every decision, no caching.
    LlOnly,
}

/// The stack machine, borrowing the grammar, its analyses, and the input
/// word. Step it manually (for traces and instrumentation) or drive it to
/// completion with [`Machine::run`].
#[derive(Debug)]
pub struct Machine<'a> {
    grammar: &'a Grammar,
    analysis: &'a GrammarAnalysis,
    tokens: &'a [Token],
    state: MachineState,
    mode: PredictionMode,
    meter: Meter,
}

impl<'a> Machine<'a> {
    /// Creates a machine in the initial configuration for the grammar's
    /// start symbol.
    pub fn new(grammar: &'a Grammar, analysis: &'a GrammarAnalysis, tokens: &'a [Token]) -> Self {
        Machine::with_mode(grammar, analysis, tokens, PredictionMode::Adaptive)
    }

    /// Creates a machine with an explicit [`PredictionMode`].
    pub fn with_mode(
        grammar: &'a Grammar,
        analysis: &'a GrammarAnalysis,
        tokens: &'a [Token],
        mode: PredictionMode,
    ) -> Self {
        Machine::with_budget(grammar, analysis, tokens, mode, &Budget::unlimited())
    }

    /// Creates a machine governed by a [`Budget`]. Machine steps and
    /// prediction lookahead draw from one shared fuel pool; the deadline
    /// and stack-depth limits are checked as the machine runs. Cache
    /// capacity limits are applied by the caller to the [`SllCache`] it
    /// supplies (see [`SllCache::set_capacity`]).
    pub fn with_budget(
        grammar: &'a Grammar,
        analysis: &'a GrammarAnalysis,
        tokens: &'a [Token],
        mode: PredictionMode,
        budget: &Budget,
    ) -> Self {
        Machine {
            grammar,
            analysis,
            tokens,
            state: MachineState::initial(grammar.start(), grammar.num_nonterminals()),
            mode,
            meter: Meter::new(budget),
        }
    }

    /// Read access to the current machine state.
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Mutable access to the machine state — for instrumentation and for
    /// tests that need to construct the invariant-violating states
    /// ordinary execution can never reach (see Theorem 5.8).
    pub fn state_mut(&mut self) -> &mut MachineState {
        &mut self.state
    }

    /// The input word being parsed.
    pub fn tokens(&self) -> &'a [Token] {
        self.tokens
    }

    /// The grammar being interpreted.
    pub fn grammar(&self) -> &'a Grammar {
        self.grammar
    }

    /// Units of fuel spent so far: machine operations plus prediction
    /// lookahead tokens, the quantity [`Budget::with_max_steps`] bounds.
    pub fn steps_taken(&self) -> u64 {
        self.meter.steps_taken()
    }

    /// Performs one machine operation (paper §3.3), mutating the state.
    ///
    /// Charges one unit of budget fuel per call; prediction charges more
    /// for its lookahead. Returns [`StepResult::Abort`] the moment the
    /// budget is exhausted — the machine state is left consistent but the
    /// parse is unresolved.
    pub fn step(&mut self, cache: &mut SllCache) -> StepResult {
        self.step_observed(cache, &mut NullObserver)
    }

    /// [`step`](Machine::step) with a [`ParseObserver`] receiving the
    /// step's events. Monomorphized per observer type; with
    /// [`NullObserver`] this compiles to the unobserved step.
    ///
    /// [`ParseObserver::on_machine_step`] fires immediately after the
    /// successful fuel charge, so observer step counts reconcile exactly
    /// with [`Machine::steps_taken`].
    pub fn step_observed<O: ParseObserver>(
        &mut self,
        cache: &mut SllCache,
        obs: &mut O,
    ) -> StepResult {
        if let Err(r) = self.meter.charge(1) {
            obs.on_abort(&r);
            return StepResult::Abort(r);
        }
        obs.on_machine_step(self.state.cursor, self.state.suffix.len());
        // Audited: the fault-injection harness exists precisely to throw
        // panics at the panic-safety wrapper; it is compiled out of
        // default builds.
        #[cfg(feature = "faults")]
        #[allow(clippy::disallowed_macros)]
        {
            let step_index = self.meter.steps_taken() - 1;
            if cache.fault_panic_due(step_index) {
                panic!("injected fault: panic at machine step {step_index}");
            }
        }
        let st = &mut self.state;
        if st.prefix.len() != st.suffix.len() {
            return StepResult::Error(ParseError::invalid_state(
                "prefix and suffix stacks have different heights",
            ));
        }
        let Some(top) = st.suffix.len().checked_sub(1) else {
            return StepResult::Error(ParseError::invalid_state("machine has no suffix frames"));
        };

        if st.suffix[top].is_exhausted() {
            if top == 0 {
                // Bottom frame exhausted: final configuration, or trailing
                // input.
                if st.cursor < self.tokens.len() {
                    return StepResult::Reject(RejectReason::TrailingInput {
                        at: st.cursor,
                        span: self
                            .tokens
                            .get(st.cursor)
                            .map(|t| t.span())
                            .unwrap_or_default(),
                    });
                }
                let frame = &mut st.prefix[0];
                if frame.trees.len() != 1 {
                    return StepResult::Error(ParseError::invalid_state(
                        "final prefix frame does not hold exactly one tree",
                    ));
                }
                let Some(tree) = frame.trees.pop() else {
                    return StepResult::Error(ParseError::invalid_state(
                        "final prefix frame emptied between check and pop",
                    ));
                };
                return StepResult::Accept(tree);
            }
            // Return operation.
            let Some(done) = st.suffix.pop() else {
                return StepResult::Error(ParseError::invalid_state(
                    "suffix stack emptied during a return operation",
                ));
            };
            let Some(x) = done.caller else {
                return StepResult::Error(ParseError::invalid_state(
                    "return with no open nonterminal in the caller frame",
                ));
            };
            let Some(popped) = st.prefix.pop() else {
                return StepResult::Error(ParseError::invalid_state(
                    "prefix stack emptied during a return operation",
                ));
            };
            let Some(caller_frame) = st.prefix.last_mut() else {
                return StepResult::Error(ParseError::invalid_state(
                    "return left the machine with no caller frame",
                ));
            };
            caller_frame.trees.push(Tree::Node(x, popped.trees));
            st.visited.remove(x);
            obs.on_op(MachineOp::Return, st.cursor, st.suffix.len());
            return StepResult::Cont;
        }

        let Some(head) = st.suffix[top].head() else {
            return StepResult::Error(ParseError::invalid_state(
                "exhausted frame reached symbol dispatch",
            ));
        };
        match head {
            Symbol::T(a) => {
                // Consume operation.
                match self.tokens.get(st.cursor) {
                    None => StepResult::Reject(RejectReason::UnexpectedEnd {
                        at: self.tokens.len(),
                        // Point at the last token: "the input stopped here".
                        span: self.tokens.last().map(|t| t.span()).unwrap_or_default(),
                        expected: a,
                    }),
                    Some(t) if t.terminal() == a => {
                        st.suffix[top].dot += 1;
                        // Token lexemes are `Arc<str>`, so this clone is a
                        // refcount bump — no allocation in the hot consume
                        // path.
                        st.prefix[top].trees.push(Tree::Leaf(t.clone()));
                        obs.on_op(MachineOp::Consume, st.cursor, st.suffix.len());
                        st.cursor += 1;
                        st.visited.clear();
                        StepResult::Cont
                    }
                    Some(t) => StepResult::Reject(RejectReason::TokenMismatch {
                        at: st.cursor,
                        span: t.span(),
                        expected: a,
                        found: t.terminal(),
                    }),
                }
            }
            Symbol::Nt(x) => {
                // Push operation, guarded by dynamic left-recursion
                // detection (paper §4.1).
                if st.visited.contains(x) {
                    return StepResult::Error(ParseError::LeftRecursive(x));
                }
                if let Err(r) = self.meter.check_depth(st.suffix.len() + 1) {
                    obs.on_abort(&r);
                    return StepResult::Abort(r);
                }
                let prediction = match self.mode {
                    PredictionMode::Adaptive | PredictionMode::AdaptiveNoStatic => {
                        adaptive_predict(
                            self.grammar,
                            self.analysis,
                            x,
                            &st.suffix,
                            &self.tokens[st.cursor..],
                            cache,
                            &mut self.meter,
                            obs,
                            self.mode == PredictionMode::Adaptive,
                        )
                    }
                    PredictionMode::LlOnly => ll_only_predict(
                        self.grammar,
                        self.analysis,
                        x,
                        &st.suffix,
                        &self.tokens[st.cursor..],
                        &mut self.meter,
                        obs,
                    ),
                };
                let (alt, ambig) = match prediction {
                    Prediction::Unique(alt) => (alt, false),
                    Prediction::Ambig(alt) => (alt, true),
                    Prediction::Reject => {
                        return StepResult::Reject(RejectReason::NoViableAlternative {
                            at: st.cursor,
                            span: self
                                .tokens
                                .get(st.cursor)
                                .map(|t| t.span())
                                .unwrap_or_default(),
                            nonterminal: x,
                        })
                    }
                    Prediction::Error(e) => return StepResult::Error(e),
                    Prediction::Abort(r) => return StepResult::Abort(r),
                };
                if ambig {
                    st.unique = false;
                }
                st.suffix[top].dot += 1; // the caller's dot passes X now
                st.suffix.push(SuffixFrame {
                    caller: Some(x),
                    rhs: self.grammar.rhs_arc(alt),
                    dot: 0,
                });
                st.prefix.push(PrefixFrame::default());
                st.visited.insert(x);
                obs.on_op(MachineOp::Push, st.cursor, st.suffix.len());
                StepResult::Cont
            }
        }
    }

    /// `multistep`: iterates [`step`](Machine::step) to a final result.
    ///
    /// Termination is guaranteed for well-formed grammars by the measure
    /// argument of paper §4 (every `Cont` step strictly decreases
    /// `meas(σ)` in the lexicographic order) — see
    /// [`crate::instrument::run_instrumented`], which checks exactly that.
    pub fn run(self, cache: &mut SllCache) -> ParseOutcome {
        self.run_observed(cache, &mut NullObserver)
    }

    /// [`run`](Machine::run) with a [`ParseObserver`] receiving every
    /// event, including a final [`ParseObserver::on_finish`] carrying the
    /// meter's total fuel count.
    pub fn run_observed<O: ParseObserver>(
        mut self,
        cache: &mut SllCache,
        obs: &mut O,
    ) -> ParseOutcome {
        let outcome = loop {
            match self.step_observed(cache, obs) {
                StepResult::Cont => continue,
                StepResult::Accept(tree) => {
                    break if self.state.unique {
                        ParseOutcome::Unique(tree)
                    } else {
                        ParseOutcome::Ambig(tree)
                    }
                }
                StepResult::Reject(r) => break ParseOutcome::Reject(r),
                StepResult::Error(e) => break ParseOutcome::Error(e),
                StepResult::Abort(r) => break ParseOutcome::Aborted(r),
            }
        };
        // The cost certificate's claim covers accepting and rejecting
        // parses: check those against the certified bound, so a deflated
        // certificate surfaces dynamically (mirroring the lookahead
        // certificate check in prediction). Errors and aborts are outside
        // the claim — an abort in particular stops *because* fuel ran
        // out, which says nothing about the bound.
        if matches!(
            outcome,
            ParseOutcome::Unique(_) | ParseOutcome::Ambig(_) | ParseOutcome::Reject(_)
        ) {
            let bound = self.analysis.cost.bound_for(self.tokens.len() as u64);
            obs.on_cost_check(bound, self.meter.steps_taken() <= bound);
        }
        obs.on_finish(self.meter.steps_taken());
        outcome
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use costar_grammar::{check_tree, tokens, GrammarBuilder};

    fn fig2() -> (Grammar, GrammarAnalysis) {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        (g, an)
    }

    fn run(g: &Grammar, an: &GrammarAnalysis, word: &[(&str, &str)]) -> ParseOutcome {
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, word);
        let mut cache = SllCache::new();
        Machine::new(g, an, &w).run(&mut cache)
    }

    #[test]
    fn fig2_trace_accepts_abd() {
        let (g, an) = fig2();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let mut cache = SllCache::new();
        let mut machine = Machine::new(&g, &an, &w);
        // Count steps: per Fig. 2, the machine takes 7 operations
        // (push, push, consume, push, consume, return, consume) and then
        // two more returns before the final configuration.
        let mut steps = 0;
        let tree = loop {
            match machine.step(&mut cache) {
                StepResult::Cont => steps += 1,
                StepResult::Accept(t) => break t,
                other => panic!("unexpected result {other:?}"),
            }
        };
        assert_eq!(steps, 9);
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        assert!(check_tree(&g, s, &w, &tree).is_ok());
        assert!(machine.state().unique);
    }

    #[test]
    fn rejects_with_positions() {
        let (g, an) = fig2();
        // Wrong final terminal.
        let ParseOutcome::Reject(r) = run(&g, &an, &[("a", "a"), ("b", "b"), ("b", "b")]) else {
            panic!("expected reject")
        };
        assert!(matches!(
            r,
            RejectReason::TokenMismatch { at: 2, .. }
                | RejectReason::NoViableAlternative { at: 0, .. }
        ));
        // Early end of input.
        let ParseOutcome::Reject(_) = run(&g, &an, &[("a", "a")]) else {
            panic!("expected reject")
        };
        // Trailing input.
        let ParseOutcome::Reject(_) = run(&g, &an, &[("b", "b"), ("c", "c"), ("c", "c")]) else {
            panic!("expected reject")
        };
    }

    #[test]
    fn ambiguous_input_flagged() {
        // Paper Fig. 6: S -> X | Y ; X -> a ; Y -> a.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["X"]);
        gb.rule("S", &["Y"]);
        gb.rule("X", &["a"]);
        gb.rule("Y", &["a"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let ParseOutcome::Ambig(tree) = run(&g, &an, &[("a", "a")]) else {
            panic!("expected ambiguous accept")
        };
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("a", "a")]);
        assert!(check_tree(&g, s, &w, &tree).is_ok());
    }

    #[test]
    fn left_recursive_grammar_detected_at_push() {
        // Single-alternative chains bypass prediction, exercising the
        // machine-level visited check: E has one alternative E -> E x.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["E"]);
        gb.rule("E", &["E", "x"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let ParseOutcome::Error(ParseError::LeftRecursive(x)) = run(&g, &an, &[("x", "x")]) else {
            panic!("expected left-recursion error")
        };
        assert_eq!(g.symbols().nonterminal_name(x), "E");
    }

    #[test]
    fn sll_conflict_failover_parses_correctly() {
        // See `prediction::tests::sll_conflict_fails_over_to_ll` for the
        // full analysis of this grammar; end-to-end, the word belongs to
        // the language and must parse uniquely despite the SLL conflict.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["p", "C1"]);
        gb.rule("S", &["q", "C2"]);
        gb.rule("C1", &["X", "b"]);
        gb.rule("C2", &["X", "a", "b"]);
        gb.rule("X", &["a", "a"]);
        gb.rule("X", &["a"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let outcome = run(&g, &an, &[("q", "q"), ("a", "a"), ("a", "a"), ("b", "b")]);
        let ParseOutcome::Unique(tree) = outcome else {
            panic!("expected unique accept, got {outcome:?}")
        };
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("q", "q"), ("a", "a"), ("a", "a"), ("b", "b")]);
        assert!(check_tree(&g, g.start(), &w, &tree).is_ok());
    }

    #[test]
    fn empty_word_parses_nullable_grammar() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "B"]);
        gb.rule("A", &[]);
        gb.rule("B", &[]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let ParseOutcome::Unique(tree) = run(&g, &an, &[]) else {
            panic!("expected unique accept of the empty word")
        };
        assert_eq!(tree.leaf_count(), 0);
        assert!(check_tree(&g, g.start(), &[], &tree).is_ok());
    }

    #[test]
    fn outcome_accessors() {
        let (g, an) = fig2();
        let o = run(&g, &an, &[("b", "b"), ("c", "c")]);
        assert!(o.is_accept());
        assert!(o.tree().is_some());
        assert!(o.into_tree().is_some());
        let o = run(&g, &an, &[("c", "c")]);
        assert!(!o.is_accept());
        assert!(o.tree().is_none());
        assert!(o.into_tree().is_none());
    }
}
