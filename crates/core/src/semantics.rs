//! Semantic actions over parse trees.
//!
//! The paper's §8 lists "support for user-defined semantic actions and
//! predicates" as future work, noting that actions complicate the notion
//! of ambiguity (two distinct trees can map to the same semantic value).
//! This module implements the actions half: a [`Semantics`] visitor maps a
//! parse tree bottom-up to a user-defined value type, and
//! [`evaluate_outcome`] reports whether an `Ambig` parse is *semantically*
//! ambiguous-by-construction or merely syntactically so — callers that
//! only care about the value can accept `Ambig(v)` when their semantics is
//! confluent.

use crate::machine::ParseOutcome;
use costar_grammar::{ErrorNode, NonTerminal, Token, Tree};

/// A bottom-up semantic analysis: how to value leaves and how to combine
/// children at interior nodes.
///
/// # Examples
///
/// Counting tokens by classifying every leaf as `1`:
///
/// ```
/// use costar::semantics::{evaluate, Semantics};
/// use costar_grammar::{NonTerminal, SymbolTable, Token, Tree};
///
/// struct Count;
/// impl Semantics for Count {
///     type Value = usize;
///     fn leaf(&mut self, _: &Token) -> usize { 1 }
///     fn node(&mut self, _: NonTerminal, children: Vec<usize>) -> usize {
///         children.into_iter().sum()
///     }
/// }
///
/// let mut tab = SymbolTable::new();
/// let t = Token::new(tab.terminal("a"), "a");
/// let tree = Tree::Node(tab.nonterminal("S"), vec![Tree::Leaf(t)]);
/// assert_eq!(evaluate(&tree, &mut Count), 1);
/// ```
pub trait Semantics {
    /// The semantic value type.
    type Value;

    /// Value of a consumed token.
    fn leaf(&mut self, token: &Token) -> Self::Value;

    /// Value of an interior node, given the nonterminal and its
    /// children's values (one per symbol of the production's right-hand
    /// side, in order).
    fn node(&mut self, nonterminal: NonTerminal, children: Vec<Self::Value>) -> Self::Value;

    /// Value of a syntax-error node spliced in by the recovering parser
    /// (`Parser::parse_recovering`).
    ///
    /// Trees returned by the plain `Parser::parse` never contain error
    /// nodes, so the default implementation panics; override it when
    /// evaluating recovered trees.
    fn error(&mut self, node: &ErrorNode) -> Self::Value {
        panic!(
            "semantic evaluation reached a syntax-error node: {}",
            node.reason
        )
    }
}

/// Evaluates a tree bottom-up under the given semantics.
pub fn evaluate<S: Semantics>(tree: &Tree, sem: &mut S) -> S::Value {
    match tree {
        Tree::Leaf(t) => sem.leaf(t),
        Tree::Node(x, children) => {
            let vals = children.iter().map(|c| evaluate(c, sem)).collect();
            sem.node(*x, vals)
        }
        Tree::Error(e) => sem.error(e),
    }
}

/// A semantic value labeled with the syntactic ambiguity evidence of the
/// parse that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemanticOutcome<V> {
    /// The word had a unique parse tree; the value is canonical.
    Unique(V),
    /// The word was syntactically ambiguous: the value was computed from
    /// one of several trees, and a different tree might (or might not)
    /// yield a different value — the caveat of paper §8.
    Ambig(V),
    /// The parse did not produce a tree.
    NoParse(ParseOutcome),
}

impl<V> SemanticOutcome<V> {
    /// The value, if one was computed.
    pub fn value(&self) -> Option<&V> {
        match self {
            SemanticOutcome::Unique(v) | SemanticOutcome::Ambig(v) => Some(v),
            SemanticOutcome::NoParse(_) => None,
        }
    }
}

/// Applies a semantics to the tree inside a parse outcome, preserving the
/// ambiguity label.
pub fn evaluate_outcome<S: Semantics>(
    outcome: ParseOutcome,
    sem: &mut S,
) -> SemanticOutcome<S::Value> {
    match outcome {
        ParseOutcome::Unique(tree) => SemanticOutcome::Unique(evaluate(&tree, sem)),
        ParseOutcome::Ambig(tree) => SemanticOutcome::Ambig(evaluate(&tree, sem)),
        other => SemanticOutcome::NoParse(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Parser;
    use costar_grammar::{tokens, GrammarBuilder};

    /// Integer sum semantics for a toy list grammar:
    /// list -> Int Comma list | Int.
    struct Sum;
    impl Semantics for Sum {
        type Value = i64;
        fn leaf(&mut self, t: &Token) -> i64 {
            t.lexeme().parse().unwrap_or(0)
        }
        fn node(&mut self, _x: NonTerminal, children: Vec<i64>) -> i64 {
            children.into_iter().sum()
        }
    }

    fn list_parser() -> Parser {
        let mut gb = GrammarBuilder::new();
        gb.rule("list", &["Int", "Comma", "list"]);
        gb.rule("list", &["Int"]);
        Parser::new(gb.start("list").build().unwrap())
    }

    #[test]
    fn evaluates_over_parse_trees() {
        let mut p = list_parser();
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(
            &mut tab,
            &[
                ("Int", "1"),
                ("Comma", ","),
                ("Int", "2"),
                ("Comma", ","),
                ("Int", "39"),
            ],
        );
        let out = evaluate_outcome(p.parse(&w), &mut Sum);
        assert_eq!(out, SemanticOutcome::Unique(42));
        assert_eq!(out.value(), Some(&42));
    }

    #[test]
    fn no_parse_is_preserved() {
        let mut p = list_parser();
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("Comma", ",")]);
        let out = evaluate_outcome(p.parse(&w), &mut Sum);
        assert!(matches!(out, SemanticOutcome::NoParse(_)));
        assert!(out.value().is_none());
    }

    #[test]
    fn ambiguous_parse_keeps_label() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["X"]);
        gb.rule("S", &["Y"]);
        gb.rule("X", &["Int"]);
        gb.rule("Y", &["Int"]);
        let mut p = Parser::new(gb.start("S").build().unwrap());
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("Int", "5")]);
        // Both trees value to 5: semantically confluent, syntactically
        // ambiguous — the distinction §8 of the paper is about.
        let out = evaluate_outcome(p.parse(&w), &mut Sum);
        assert_eq!(out, SemanticOutcome::Ambig(5));
    }

    #[test]
    fn stateful_semantics_allowed() {
        struct LeafLog(Vec<String>);
        impl Semantics for LeafLog {
            type Value = ();
            fn leaf(&mut self, t: &Token) {
                self.0.push(t.lexeme().to_owned());
            }
            fn node(&mut self, _: NonTerminal, _: Vec<()>) {}
        }
        let mut p = list_parser();
        let mut tab = p.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("Int", "1"), ("Comma", ","), ("Int", "2")]);
        let mut log = LeafLog(Vec::new());
        evaluate_outcome(p.parse(&w), &mut log);
        assert_eq!(log.0, vec!["1", ",", "2"]);
    }
}
